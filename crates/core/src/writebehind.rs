//! Write-behind serving: an immutable base engine plus a bounded delta
//! buffer, merged in the background — with tombstoned deletes and an
//! optional LSM-style leveled run stack.
//!
//! The paper's updatable-index experiments show learned structures losing
//! to B-trees under writes because every insert disturbs the model;
//! LSM-style systems sidestep this by keeping learned indexes over
//! **immutable** sorted runs and absorbing writes in a small mutable tier.
//! [`WriteBehindEngine`] is that architecture as a [`QueryEngine`]:
//!
//! * **Writes** go to a mutable *delta* — any [`DynamicOrderedIndex`] —
//!   so the base index is never retrained on the write path. The delta
//!   stores *shadow entries* with `Option<u64>` payloads: an insert lands
//!   as `Some(payload)`, a [`WriteBehindEngine::remove`] lands as a
//!   **tombstone** (`None`) that hides every older record of its key.
//! * **Reads** merge delta-over-stack-over-base: point lookups stop at the
//!   newest shadow entry (a tombstone hit answers `None`), ordered queries
//!   stitch merges that drop tombstoned keys, and batched lookups partition
//!   keys so the base's interleaved-prefetch path still fires for the
//!   (usually large) non-shadowed majority.
//! * **Merges** follow the configured [`MergePolicy`]:
//!   * [`MergePolicy::Flat`] rebuilds the base from its [`SortedData`]
//!     plus the drained delta when the delta crosses a size threshold
//!     (tombstones delete their base records and are then dropped) —
//!     `O(n)` merged volume per cycle.
//!   * [`MergePolicy::Leveled`] freezes the threshold-crossing delta into
//!     an immutable sorted *run* — each run carries **its own engine**,
//!     built by the same base factory, so every frozen run is itself a
//!     learned index — stacked newest-first in levels. A level holding
//!     `fanout` runs is compacted into a single run one level down
//!     (bounded work: only that level's volume moves), and only when the
//!     *bottom* level overflows do its runs fold into the base — the one
//!     point where tombstones may be dropped, because nothing older can
//!     still hold their keys. Reads probe newest-to-oldest with per-run
//!     key-range pruning.
//!
//!   Either way the merge runs synchronously ([`MergeMode::Sync`]) or on a
//!   background thread ([`MergeMode::Background`]).
//!
//! # The epoch pointer
//!
//! Each merge step produces a new immutable *generation* — the base
//! (rebuilt data + engine) plus, under the leveled policy, the whole run
//! stack — held in an `Arc`. Readers snapshot the current generation with
//! one `Arc` clone and run against it lock-free; the merge builds the next
//! generation entirely outside any lock and publishes it with an O(1)
//! pointer swap. The pointer lives behind an `RwLock` (std has no atomic
//! `Arc` swap), but the write lock is held only for the O(1) pointer moves
//! of the cycle — the freeze handoff and each stack/base swap — never for
//! the drain, run build, or compaction, so readers can only ever block for
//! a pointer store, and a generation's memory is reclaimed when its last
//! in-flight reader drops its `Arc` (epoch-style reclamation by refcount).
//!
//! # Persistence (the snapshot spool)
//!
//! [`WriteBehindEngine::with_spool`] attaches a **snapshot spool**: a
//! directory into which every immutable tier is serialized as it is
//! created, in the checksummed page format of [`crate::store`]. The initial
//! base is written at construction; each frozen delta's run is written **at
//! freeze time** (tombstones ride in the snapshot's dead-key section);
//! every rebuilt base — flat merges and bottom-level folds — is written
//! before its swap, and because those folds drop tombstones first, a base
//! snapshot never carries a dead-key section. After each swap a versioned
//! manifest is committed (tmp-write + rename) pointing at exactly the
//! files of the live generation, and unreferenced snapshots are swept.
//! [`WriteBehindEngine::open_spool`] re-opens the whole stack cold:
//! checksum-verified loads, engines rebuilt by the base factory (models
//! are derived state), active delta empty — the durability boundary is
//! the freeze, so unmerged delta writes do not survive a restart.
//!
//! # Consistency
//!
//! A merge cycle touches the state lock O(1) times, O(1) each: the
//! *freeze* moves the whole active delta behind the frozen pointer (no
//! entry is copied under the lock; the drain into a sorted snapshot reads
//! the now-immutable frozen tier outside it) and installs a fresh active
//! delta; each *swap* installs a new generation — and the first one clears
//! the frozen pointer — in one critical section. A reader therefore always
//! observes one coherent tier assignment: old stack + frozen entries, or
//! new stack + empty frozen — never a window where drained entries are in
//! neither tier. Writes arriving mid-merge land in the fresh active delta
//! and survive every swap untouched. Compaction swaps never change the
//! *visible* mapping at all (they only fold already-shadowed records
//! away), so in-flight readers cannot observe a compaction.
//!
//! # Pinned snapshots and content hashes
//!
//! [`WriteBehindEngine::snapshot`] turns the epoch pointer into a
//! first-class handle: a [`PinnedView`] clones the current generation
//! `Arc` and copies the delta (active merged over frozen) once, so every
//! read through the handle — point, batch, ordered — sees exactly the
//! mapping that was visible at pin time. Concurrent inserts, removes,
//! merges, compactions, and density rewrites only ever publish *newer*
//! generations, which the pin never observes; the pinned generation's
//! memory is reclaimed by the same refcount rule as any in-flight
//! reader's, when its last holder drops ([`WriteBehindEngine::active_pins`]
//! counts outstanding pins).
//!
//! Every immutable tier also carries a deterministic **content hash** of
//! its logical entry stream ([`crate::store::content_hash_stream`]):
//! computed at freeze/rebuild time, stamped into the snapshot header and
//! the spool manifest (`hash <file> <hex>` lines), and re-derivable from
//! the persisted sections. Identical logical state hashes identically, so
//! [`WriteBehindEngine::verify_spool`] can audit a spool cold — catching
//! flipped bits, substituted files, and lying manifests — and
//! [`PinnedView::fingerprint`] folds the whole visible mapping into one
//! root hash for replica comparison and run dedupe.

use crate::advisor::{AccessMix, ObservabilityHub};
use crate::data::SortedData;
use crate::dynamic::DynamicOrderedIndex;
use crate::engine::QueryEngine;
use crate::error::BuildError;
use crate::filter::{FilterKind, FilterProbe, RunFilter};
use crate::key::Key;
use crate::store::{
    content_hash_fold, content_hash_stream, snapshot_content_hash, write_snapshot_with_filter,
    FileStore, PagedData, StorageProfile, StoreError, CONTENT_HASH_SEED,
};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Builds an immutable engine over a (rebuilt) data array — called once at
/// construction, once per base rebuild, and (under [`MergePolicy::Leveled`])
/// once per frozen run. Any [`QueryEngine`] works: a plain `StaticEngine`,
/// a `ShardedEngine`, or another compositor.
pub type BaseFactory<K> =
    Arc<dyn Fn(Arc<SortedData<K>>) -> Result<Box<dyn QueryEngine<K>>, BuildError> + Send + Sync>;

/// Creates an empty delta buffer — called at construction and every time
/// the active delta is frozen for a merge (twice each: the delta tier keeps
/// its live values and its tombstone set in two buffers of this family).
pub type DeltaFactory<K> = Arc<dyn Fn() -> Box<dyn DynamicOrderedIndex<K>> + Send + Sync>;

/// When the merge rebuild runs relative to the write that triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// The triggering write blocks until the new generation is installed —
    /// simple, deterministic, and the right choice for single-threaded
    /// harnesses and tests.
    Sync,
    /// The rebuild runs on a spawned thread; the triggering write returns
    /// immediately and readers keep serving from the old generation plus
    /// the frozen delta until the O(1) swap.
    Background,
}

/// How threshold-crossing deltas are folded into the immutable tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// Every merge rebuilds the single flat base from scratch: one engine
    /// to probe on reads, `O(n)` merged volume per cycle.
    Flat,
    /// LSM-style leveled run stack: each merge freezes the delta into an
    /// immutable sorted run (with its own engine) at level 0; a level
    /// reaching `fanout` runs is compacted into one run at the next level;
    /// the bottom level (`max_levels - 1`) folds into the base instead.
    /// Bounded merge work per cycle, at the cost of read fan-out (up to
    /// `fanout * max_levels` run probes before the base answers — per-run
    /// filters claw most of that back on negative and cold keys).
    Leveled {
        /// Runs a level holds before compaction (>= 2).
        fanout: usize,
        /// Number of run levels above the base (>= 1).
        max_levels: usize,
        /// Filter and compaction-trigger knobs (defaults are back-compat:
        /// Bloom filters on, both triggers off).
        tuning: LeveledTuning,
    },
}

/// Tuning knobs for [`MergePolicy::Leveled`] beyond its shape: which
/// per-run filter is built at freeze time, and the two adaptive compaction
/// triggers (tombstone-density rewrites, read-amp early compaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeveledTuning {
    /// Per-run membership filter built at freeze/compaction time and
    /// consulted before any run probe on point reads.
    pub filter: FilterKind,
    /// Tombstone-density rewrite trigger: a run whose live fraction (the
    /// percentage of non-tombstone entries) drops below this is rewritten
    /// in place at the end of a merge cycle, dropping shadowed entries and
    /// dead tombstones early. `0` disables the trigger.
    pub rewrite_live_pct: u8,
    /// Read-amp trigger: when the windowed average of run probes per stack
    /// lookup exceeds this watermark, the fullest level is compacted early
    /// (before it reaches `fanout`). `0` disables the trigger.
    pub read_amp_watermark: u8,
}

impl LeveledTuning {
    /// Back-compat defaults: Bloom filters on (filters never change
    /// results, only skip provably fruitless probes), both triggers off.
    pub const DEFAULT: LeveledTuning =
        LeveledTuning { filter: FilterKind::Bloom, rewrite_live_pct: 0, read_amp_watermark: 0 };
}

impl Default for LeveledTuning {
    fn default() -> Self {
        LeveledTuning::DEFAULT
    }
}

impl MergePolicy {
    /// Leveled policy with default tuning — the common construction.
    pub const fn leveled(fanout: usize, max_levels: usize) -> MergePolicy {
        MergePolicy::Leveled { fanout, max_levels, tuning: LeveledTuning::DEFAULT }
    }

    /// The tuning knobs when leveled; defaults otherwise (a flat stack has
    /// no runs to filter or rewrite).
    pub fn tuning(self) -> LeveledTuning {
        match self {
            MergePolicy::Leveled { tuning, .. } => tuning,
            MergePolicy::Flat => LeveledTuning::DEFAULT,
        }
    }

    /// Validate the policy's parameters — the single definition of what a
    /// well-formed policy is, shared by [`WriteBehindEngine::with_policy`]
    /// and the bench registry's spec deserializer.
    pub fn validate(self) -> Result<(), BuildError> {
        if let MergePolicy::Leveled { fanout, max_levels, tuning } = self {
            if fanout < 2 {
                return Err(BuildError::InvalidConfig("leveled fanout must be >= 2".into()));
            }
            if max_levels == 0 {
                return Err(BuildError::InvalidConfig("leveled max_levels must be >= 1".into()));
            }
            if tuning.rewrite_live_pct > 100 {
                return Err(BuildError::InvalidConfig(
                    "leveled rewrite_live_pct must be <= 100".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Point lookups between read-amp trigger evaluations: the trigger fires
/// on a windowed probes-per-lookup average, not a single unlucky batch.
const READ_AMP_WINDOW: u64 = 256;

/// One shadow entry: `Some(payload)` overwrites the key's older records,
/// `None` (a tombstone) hides them.
type Shadow<K> = (K, Option<u64>);

/// The mutable delta tier: live values and tombstones, kept in two buffers
/// of the configured delta family. Invariant: a key is present in at most
/// one of the two (writes move it between them under the state lock), so
/// ordered merges of the two buffers never see a key tie.
struct DeltaTier<K: Key> {
    values: Box<dyn DynamicOrderedIndex<K>>,
    /// Tombstoned keys; the stored payload is unused (always 0).
    tombs: Box<dyn DynamicOrderedIndex<K>>,
}

impl<K: Key> DeltaTier<K> {
    fn new(factory: &DeltaFactory<K>) -> Self {
        DeltaTier { values: factory(), tombs: factory() }
    }

    /// Shadow state of `key` in this tier, or `None` when the tier says
    /// nothing about it.
    fn state(&self, key: K) -> Option<Option<u64>> {
        if let Some(v) = self.values.get(key) {
            return Some(Some(v));
        }
        self.tombs.get(key).map(|_| None)
    }

    fn len(&self) -> usize {
        self.values.len() + self.tombs.len()
    }

    fn is_empty(&self) -> bool {
        self.values.is_empty() && self.tombs.is_empty()
    }

    fn size_bytes(&self) -> usize {
        self.values.size_bytes() + self.tombs.size_bytes()
    }

    /// Shadow entries in `[lo, hi)`, sorted by key (values and tombstones
    /// are key-disjoint, so this is a tie-free two-way merge).
    fn entries_in(&self, lo: K, hi: K) -> Vec<Shadow<K>> {
        let mut values = Vec::new();
        self.values.for_each_in(lo, hi, &mut |k, v| values.push((k, Some(v))));
        if self.tombs.is_empty() {
            return values;
        }
        let mut tombs = Vec::new();
        self.tombs.for_each_in(lo, hi, &mut |k, _| tombs.push((k, None)));
        merge_newer_over_older(&values, &tombs)
    }

    /// Every shadow entry, sorted — the merge drain. `for_each_in` is
    /// half-open, so the extreme key needs one explicit probe.
    fn drain_sorted(&self) -> Vec<Shadow<K>> {
        let mut out = self.entries_in(K::MIN_KEY, K::MAX_KEY);
        if let Some(v) = self.values.get(K::MAX_KEY) {
            out.push((K::MAX_KEY, Some(v)));
        } else if self.tombs.get(K::MAX_KEY).is_some() {
            out.push((K::MAX_KEY, None));
        }
        out
    }

    /// Smallest shadow entry with key `>= key`.
    fn lower_bound_entry(&self, key: K) -> Option<Shadow<K>> {
        let value = self.values.lower_bound_entry(key).map(|(k, v)| (k, Some(v)));
        let tomb = self.tombs.lower_bound_entry(key).map(|(k, _)| (k, None));
        match (value, tomb) {
            (Some(a), Some(b)) => Some(if b.0 < a.0 { b } else { a }),
            (a, b) => a.or(b),
        }
    }
}

/// One immutable sorted run of shadow entries with its own engine (built by
/// the shared base factory — a learned index over the run's keys).
/// Tombstoned keys stay in the run's data (payload 0, ignored) so the
/// engine can route to them; `dead_keys` marks which they are.
struct Run<K: Key> {
    engine: Box<dyn QueryEngine<K>>,
    data: Arc<SortedData<K>>,
    /// Sorted keys of this run that are tombstones.
    dead_keys: Vec<K>,
    /// Membership filter over every key of the run, tombstones included
    /// (a probe must still find the tombstone so it can shadow older
    /// tiers). Consulted before any engine probe on point reads; may
    /// admit an absent key (one wasted probe) but never rejects a
    /// present one.
    filter: RunFilter,
    /// Cached key bounds (`data.min_key()`, `data.max_key()`): `prunes`
    /// runs once per run on every stack lookup, and reading the bounds
    /// off the run struct itself avoids two pointer chases into the key
    /// column.
    min_key: K,
    max_key: K,
    /// Snapshot file name inside the spool directory (`Some` exactly when
    /// the engine runs with a [`WriteBehindEngine::with_spool`] spool).
    file: Option<String>,
    /// Deterministic content hash of the run's logical shadow stream
    /// ([`content_hash_stream`] over its sorted entries, tombstones
    /// included) — computed once at build time, stamped into the run's
    /// snapshot header and spool manifest, and compared on cold re-open.
    /// Two runs frozen from identical logical state hash identically.
    content_hash: u64,
}

impl<K: Key> Run<K> {
    /// Build a run from sorted shadow entries (non-empty, unique keys);
    /// the filter and content hash are built in the same pass over the
    /// entry stream.
    fn build(
        entries: &[Shadow<K>],
        factory: &BaseFactory<K>,
        filter_kind: FilterKind,
    ) -> Result<Run<K>, BuildError> {
        let keys: Vec<K> = entries.iter().map(|e| e.0).collect();
        let payloads: Vec<u64> = entries.iter().map(|e| e.1.unwrap_or(0)).collect();
        let dead_keys: Vec<K> = entries.iter().filter(|e| e.1.is_none()).map(|e| e.0).collect();
        let filter = RunFilter::build(filter_kind, keys.iter().map(|k| k.to_u64()), keys.len());
        let content_hash = content_hash_stream(entries.iter().copied());
        let data = Arc::new(SortedData::with_payloads(keys, payloads).map_err(BuildError::Data)?);
        let engine = factory(Arc::clone(&data))?;
        let (min_key, max_key) = (data.min_key(), data.max_key());
        Ok(Run { engine, data, dead_keys, filter, min_key, max_key, file: None, content_hash })
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    /// Live (non-tombstone) entries in this run.
    fn live_len(&self) -> usize {
        self.data.len() - self.dead_keys.len()
    }

    /// Filter check: `false` proves the key is not in this run.
    #[inline]
    fn filter_admits(&self, key: K) -> bool {
        self.filter.may_contain(key.to_u64())
    }

    /// [`Run::filter_admits`] with the lookup key's hash work already
    /// done — stack read loops hash each key once, not once per run.
    #[inline]
    fn filter_admits_probe(&self, probe: &FilterProbe) -> bool {
        self.filter.may_contain_probe(probe)
    }

    #[inline]
    fn is_dead(&self, key: K) -> bool {
        self.dead_keys.binary_search(&key).is_ok()
    }

    /// Key-range prune: true when `key` cannot be in this run.
    #[inline]
    fn prunes(&self, key: K) -> bool {
        key < self.min_key || key > self.max_key
    }

    /// Shadow state of `key`, probed through the run's engine (the learned
    /// read path), or `None` when the run says nothing about it. The
    /// caller has already range-pruned and filter-checked the probe — the
    /// read loops do both explicitly so skipped probes can be counted.
    fn probe_unpruned(&self, key: K) -> Option<Option<u64>> {
        let v = self.engine.get(key)?;
        Some((!self.is_dead(key)).then_some(v))
    }

    /// Shadow state of `key`, probed directly against the run's data array
    /// (one binary search; the write path stays off every engine).
    fn probe_in_data(&self, key: K) -> Option<Option<u64>> {
        if self.prunes(key) {
            return None;
        }
        let pos = self.data.lower_bound(key);
        if pos >= self.data.len() || self.data.key(pos) != key {
            return None;
        }
        Some((!self.is_dead(key)).then(|| self.data.payload(pos)))
    }

    /// Smallest shadow entry with key `>= key` (tombstones included).
    fn lower_bound(&self, key: K) -> Option<Shadow<K>> {
        if key > self.data.max_key() {
            return None;
        }
        let (k, v) = self.engine.lower_bound(key)?;
        Some((k, (!self.is_dead(k)).then_some(v)))
    }

    /// Shadow entries in `[lo, hi)`, through the run's engine.
    fn entries_in(&self, lo: K, hi: K) -> Vec<Shadow<K>> {
        if hi <= self.data.min_key() || lo > self.data.max_key() {
            return Vec::new(); // whole window outside the run's key range
        }
        self.engine
            .range(lo, hi)
            .into_iter()
            .map(|(k, v)| (k, (!self.is_dead(k)).then_some(v)))
            .collect()
    }

    /// Every shadow entry, straight from the data array (merge input).
    fn all_entries(&self) -> Vec<Shadow<K>> {
        let keys = self.data.keys();
        let payloads = self.data.payloads();
        (0..keys.len())
            .map(|i| (keys[i], (!self.is_dead(keys[i])).then_some(payloads[i])))
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.engine.size_bytes()
            + self.data.data_size_bytes()
            + self.dead_keys.capacity() * std::mem::size_of::<K>()
    }
}

/// The base engine handle, shared across generations by `Arc`: a leveled
/// stack swap reuses the same base engine (only base folds rebuild it), so
/// the handle must be cloneable even though `Box<dyn QueryEngine>` is not.
type SharedBase<K> = Arc<Box<dyn QueryEngine<K>>>;

/// One immutable generation: the run stack (newest level first, newest run
/// first within a level; always empty under [`MergePolicy::Flat`]) over the
/// base engine and the data it was built from.
struct Generation<K: Key> {
    /// `levels[0]` holds the newest runs; within a level, index 0 is the
    /// newest run.
    levels: Vec<Vec<Arc<Run<K>>>>,
    /// Dense point-read index over the stack, newest first: each run's
    /// fence bounds and a clone of its filter, laid out contiguously so
    /// the hot read loop scans one flat array and touches a run's own
    /// allocation only after fence and filter both admit the probe.
    /// Derived from `levels` at construction; generations are immutable.
    probe_runs: Vec<ProbeEntry<K>>,
    base: SharedBase<K>,
    data: Arc<SortedData<K>>,
    /// Monotone generation counter (0 = the initial build).
    epoch: u64,
    /// Snapshot file name of the base inside the spool directory (`Some`
    /// exactly when a spool is attached). Shared by `Arc` because stack
    /// swaps reuse the base without rewriting its snapshot.
    base_file: Option<Arc<str>>,
    /// Content hash of the base's logical entry stream (every base entry
    /// is live — tombstones are folded away before a base rebuild).
    /// Computed once per base build and carried through stack swaps, like
    /// `base_file`.
    base_hash: u64,
}

/// One run's entry in [`Generation::probe_runs`].
struct ProbeEntry<K: Key> {
    min_key: K,
    max_key: K,
    filter: RunFilter,
    run: Arc<Run<K>>,
}

impl<K: Key> Generation<K> {
    /// Assemble a generation, deriving the dense probe index from the
    /// run stack.
    fn new(
        levels: Vec<Vec<Arc<Run<K>>>>,
        base: SharedBase<K>,
        data: Arc<SortedData<K>>,
        epoch: u64,
        base_file: Option<Arc<str>>,
        base_hash: u64,
    ) -> Generation<K> {
        let probe_runs = levels
            .iter()
            .flatten()
            .map(|run| ProbeEntry {
                min_key: run.min_key,
                max_key: run.max_key,
                filter: run.filter.clone(),
                run: Arc::clone(run),
            })
            .collect();
        Generation { levels, probe_runs, base, data, epoch, base_file, base_hash }
    }

    /// Runs in shadowing order: newest first.
    fn runs_newest_first(&self) -> impl Iterator<Item = &Arc<Run<K>>> {
        self.levels.iter().flatten()
    }

    /// Total runs across all levels.
    fn run_count(&self) -> usize {
        self.probe_runs.len()
    }
}

/// Everything a reader needs one coherent view of: the current generation
/// pointer, the mutable active delta, and the frozen (mid-merge) delta.
struct State<K: Key> {
    generation: Arc<Generation<K>>,
    active: DeltaTier<K>,
    /// A previous active delta, moved here wholesale (an O(1) pointer
    /// handoff) when its merge began and not yet folded into the stack.
    /// `None` except while a merge is in flight. Shared with the merge
    /// thread, which drains it outside the state lock.
    frozen: Option<Arc<DeltaTier<K>>>,
}

impl<K: Key> State<K> {
    /// Shadow state visible for `key` in the delta tiers (active wins over
    /// frozen), or `None` when only the immutable tiers can answer.
    fn delta_state(&self, key: K) -> Option<Option<u64>> {
        self.active.state(key).or_else(|| self.frozen.as_ref().and_then(|f| f.state(key)))
    }

    /// Delta shadow entries in `[lo, hi)`, active merged over frozen,
    /// sorted and unique.
    fn delta_entries(&self, lo: K, hi: K) -> Vec<Shadow<K>> {
        let active = self.active.entries_in(lo, hi);
        let Some(frozen) = &self.frozen else {
            return active;
        };
        merge_newer_over_older(&active, &frozen.entries_in(lo, hi))
    }
}

/// Merge two sorted unique runs; on equal keys the `newer` entry wins.
fn merge_newer_over_older<K: Key, V: Copy>(newer: &[(K, V)], older: &[(K, V)]) -> Vec<(K, V)> {
    if newer.is_empty() {
        return older.to_vec();
    }
    let mut out = Vec::with_capacity(newer.len() + older.len());
    let mut i = 0;
    for &(k, v) in newer {
        while i < older.len() && older[i].0 < k {
            out.push(older[i]);
            i += 1;
        }
        if i < older.len() && older[i].0 == k {
            i += 1;
        }
        out.push((k, v));
    }
    out.extend_from_slice(&older[i..]);
    out
}

/// Merge sorted unique shadow entries over `base` records: a value entry
/// replaces the *whole duplicate group* of its key (matching the engine's
/// overwrite semantics, where a shadowed key's payload replaces the base's
/// duplicate sum) and a tombstone deletes the group — this is the one
/// place tombstones are dropped, so it must only run when nothing older
/// than `base` can still hold their keys. Returns `None` when tombstones
/// deleted every record — an empty `SortedData` is not representable, so
/// callers must keep the tombstones shadowing instead.
/// One binary search: does the base data array hold `key` at all? Used by
/// the density-rewrite trigger to decide whether a tombstone still shadows
/// anything (the write path's group-sum probe is overkill there).
fn base_has_key<K: Key>(data: &SortedData<K>, key: K) -> bool {
    let pos = data.lower_bound(key);
    pos < data.len() && data.key(pos) == key
}

fn merge_shadows_over_base<K: Key>(
    base: &SortedData<K>,
    shadows: &[Shadow<K>],
) -> Option<SortedData<K>> {
    let bk = base.keys();
    let bp = base.payloads();
    let mut keys = Vec::with_capacity(bk.len() + shadows.len());
    let mut payloads = Vec::with_capacity(bk.len() + shadows.len());
    let mut i = 0;
    for &(dk, dv) in shadows {
        while i < bk.len() && bk[i] < dk {
            keys.push(bk[i]);
            payloads.push(bp[i]);
            i += 1;
        }
        while i < bk.len() && bk[i] == dk {
            i += 1; // shadowed duplicate group
        }
        if let Some(v) = dv {
            keys.push(dk);
            payloads.push(v);
        }
        // A tombstone emits nothing: the key and its group are gone.
    }
    keys.extend_from_slice(&bk[i..]);
    payloads.extend_from_slice(&bp[i..]);
    if keys.is_empty() {
        return None;
    }
    Some(SortedData::with_payloads(keys, payloads).expect("shadow merge preserves order"))
}

/// Overlay sorted unique shadow entries on a sorted base range result: a
/// value replaces the whole duplicate group of its key and a tombstone
/// drops it — the in-memory mirror of [`merge_shadows_over_base`], shared
/// by the live engine's and a pinned view's `range`.
fn overlay_shadows<K: Key>(shadows: Vec<Shadow<K>>, base: Vec<(K, u64)>) -> Vec<(K, u64)> {
    if shadows.is_empty() {
        return base;
    }
    let mut out = Vec::with_capacity(base.len() + shadows.len());
    let mut i = 0;
    for (dk, dv) in shadows {
        while i < base.len() && base[i].0 < dk {
            out.push(base[i]);
            i += 1;
        }
        while i < base.len() && base[i].0 == dk {
            i += 1; // shadowed duplicate group
        }
        if let Some(v) = dv {
            out.push((dk, v));
        }
    }
    out.extend_from_slice(&base[i..]);
    out
}

/// The snapshot spool: a directory the engine persists its immutable tiers
/// into as they are created, so the whole stack can be re-opened cold (see
/// the module docs for the durability boundary).
struct Spool {
    dir: PathBuf,
    page_size: usize,
    /// Monotone id for snapshot file names (`base-<id>.snap`,
    /// `run-<id>.snap`); never reused, so a crashed merge can leave only
    /// unreferenced garbage, which the next manifest commit sweeps.
    next_id: AtomicU64,
}

/// First line of a spool manifest — the version gate for cold re-open.
const MANIFEST_HEADER: &str = "sosd-writebehind v1";
/// Manifest file name inside the spool directory.
const MANIFEST_FILE: &str = "manifest";

impl Spool {
    fn next_name(&self, prefix: &str) -> String {
        format!("{prefix}-{}.snap", self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Serialize `data` (+ tombstoned keys + optional run filter) into a
    /// fresh snapshot file.
    fn write_data<K: Key>(
        &self,
        name: &str,
        data: &SortedData<K>,
        dead: &[K],
        filter: Option<&RunFilter>,
    ) -> Result<(), StoreError> {
        let mut store = FileStore::create(&self.dir.join(name), self.page_size)?;
        let filter_bytes = filter.map(|f| (f.kind().code(), f.to_bytes()));
        let filter_section =
            filter_bytes.as_ref().filter(|(_, b)| !b.is_empty()).map(|(c, b)| (*c, b.as_slice()));
        write_snapshot_with_filter(&mut store, data, dead, filter_section)?;
        crate::store::BlockStore::flush(&mut store)
    }

    /// Persist on the merge path. A failed persist panics: the caller asked
    /// for durability, and silently continuing would hand a later cold
    /// re-open a manifest that lies about what survived.
    fn persist<K: Key>(
        &self,
        prefix: &str,
        data: &SortedData<K>,
        dead: &[K],
        filter: Option<&RunFilter>,
    ) -> String {
        let name = self.next_name(prefix);
        if let Err(e) = self.write_data(&name, data, dead, filter) {
            panic!("[writebehind] spool persist of {name} failed: {e}");
        }
        name
    }

    /// Durably point the manifest at `generation` (tmp-write + rename),
    /// then sweep snapshot files the manifest no longer references. Runs
    /// only after the generation swap, so a crash at any point leaves a
    /// manifest describing one complete, re-openable stack. Every
    /// referenced file also gets a `hash <file> <hex>` line carrying its
    /// content hash, so a cold open (and
    /// [`WriteBehindEngine::verify_spool`]) can pin each snapshot to the
    /// exact logical stream this commit referenced — a structurally valid
    /// but substituted file fails the manifest, not just the page
    /// checksums.
    fn commit<K: Key>(&self, generation: &Generation<K>) {
        let base_file =
            generation.base_file.as_deref().expect("spooled generation carries a base file");
        let mut live: Vec<&str> = vec![base_file];
        let mut manifest = format!(
            "{MANIFEST_HEADER}\npage_size {}\nepoch {}\nbase {base_file}\n",
            self.page_size, generation.epoch
        );
        for level in &generation.levels {
            manifest.push_str("level");
            for run in level {
                let file = run.file.as_deref().expect("spooled run carries a file");
                manifest.push(' ');
                manifest.push_str(file);
                live.push(file);
            }
            manifest.push('\n');
        }
        manifest.push_str(&format!("hash {base_file} {:016x}\n", generation.base_hash));
        for run in generation.runs_newest_first() {
            let file = run.file.as_deref().expect("spooled run carries a file");
            manifest.push_str(&format!("hash {file} {:016x}\n", run.content_hash));
        }
        let tmp = self.dir.join("manifest.tmp");
        let commit = fs::write(&tmp, &manifest)
            .and_then(|()| fs::rename(&tmp, self.dir.join(MANIFEST_FILE)));
        if let Err(e) = commit {
            panic!("[writebehind] spool manifest commit failed: {e}");
        }
        // Best-effort garbage sweep; leftovers are unreferenced and swept
        // again on the next commit.
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.ends_with(".snap") && !live.contains(&name) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// A parsed spool manifest — the single definition of the manifest
/// protocol, shared by [`WriteBehindEngine::open_spool`] (cold re-open)
/// and [`WriteBehindEngine::verify_spool`] (offline audit).
struct SpoolManifest {
    page_size: usize,
    epoch: u64,
    base: String,
    /// Referenced run files per level, newest level first.
    levels: Vec<Vec<String>>,
    /// Content hash per referenced file, from the manifest's `hash`
    /// lines. Empty for manifests written before hashes existed — absent
    /// hashes mean "unverifiable", never "invalid".
    hashes: HashMap<String, u64>,
}

impl SpoolManifest {
    /// Read and parse the manifest inside `dir`.
    fn read(dir: &Path) -> Result<SpoolManifest, BuildError> {
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).map_err(|e| {
            BuildError::Unbuildable(format!("spool manifest {}: {e}", path.display()))
        })?;
        SpoolManifest::parse(&text)
    }

    /// Parse the manifest text: the version header, then one directive
    /// per line (`page_size`, `epoch`, `base`, `level`, `hash`). Unknown
    /// directives are rejected — a manifest from a future format version
    /// must fail loudly, not be half-read.
    fn parse(text: &str) -> Result<SpoolManifest, BuildError> {
        let bad = |detail: String| BuildError::Unbuildable(format!("spool manifest: {detail}"));
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(bad(format!("expected header `{MANIFEST_HEADER}`")));
        }
        let mut page_size = 0usize;
        let mut epoch = 0u64;
        let mut base: Option<String> = None;
        let mut levels: Vec<Vec<String>> = Vec::new();
        let mut hashes: HashMap<String, u64> = HashMap::new();
        for line in lines {
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("page_size") => {
                    page_size = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad page_size line".into()))?;
                }
                Some("epoch") => {
                    epoch = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad epoch line".into()))?;
                }
                Some("base") => {
                    base =
                        Some(fields.next().ok_or_else(|| bad("bad base line".into()))?.to_string());
                }
                Some("level") => levels.push(fields.map(String::from).collect()),
                Some("hash") => {
                    let file = fields.next().ok_or_else(|| bad("bad hash line".into()))?;
                    let value = fields
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| bad(format!("bad hash value for {file}")))?;
                    hashes.insert(file.to_string(), value);
                }
                None => {}
                Some(other) => return Err(bad(format!("unknown directive `{other}`"))),
            }
        }
        let base = base.ok_or_else(|| bad("no base line".into()))?;
        Ok(SpoolManifest { page_size, epoch, base, levels, hashes })
    }

    /// Every referenced snapshot file: the base, then each level's runs,
    /// newest level first.
    fn files(&self) -> impl Iterator<Item = &String> {
        std::iter::once(&self.base).chain(self.levels.iter().flatten())
    }

    /// The manifest's content hash for `file`, compared against `actual`;
    /// an absent line passes (older manifests carry no hashes).
    fn check_hash(&self, file: &str, actual: u64) -> Result<(), BuildError> {
        match self.hashes.get(file) {
            Some(&expected) if expected != actual => Err(BuildError::Unbuildable(format!(
                "spool snapshot {file}: manifest content hash {expected:#018x} does not match \
                 the file's hash {actual:#018x}"
            ))),
            _ => Ok(()),
        }
    }
}

/// The pieces shared between the engine handle and a background merge
/// thread.
struct Shared<K: Key> {
    state: RwLock<State<K>>,
    base_factory: BaseFactory<K>,
    delta_factory: DeltaFactory<K>,
    merge_threshold: usize,
    policy: MergePolicy,
    /// True while one merge (freeze → build → swaps) is in flight; at
    /// most one runs at a time.
    merging: AtomicBool,
    merges: AtomicU64,
    failed_merges: AtomicU64,
    /// Compaction steps completed (level folds and base folds).
    compactions: AtomicU64,
    /// Of those, compactions forced early by the read-amp watermark.
    early_compactions: AtomicU64,
    /// Tombstone-density-triggered in-place run rewrites completed.
    density_rewrites: AtomicU64,
    /// Point lookups (`get` / `get_batch` keys) that consulted a non-empty
    /// run stack — the denominator of probes-per-lookup.
    stack_lookups: AtomicU64,
    /// Run engine probes actually performed by those lookups (after range
    /// pruning and filters) — the read-amplification numerator.
    stack_probes: AtomicU64,
    /// Run probes skipped because the run's filter proved the key absent
    /// (range-pruned probes are not counted; they were never candidates).
    filter_skips: AtomicU64,
    /// Counter snapshots at the last read-amp evaluation, so the trigger
    /// measures probes-per-lookup over the most recent window instead of
    /// a sticky since-construction average.
    read_amp_probes_mark: AtomicU64,
    read_amp_lookups_mark: AtomicU64,
    /// Total entries written into new immutable structures by merges and
    /// compactions — the merge write volume; `merged_entries / merges` is
    /// the per-cycle merged volume the leveled policy bounds.
    merged_entries: AtomicU64,
    /// Point-read keys served (`get` plus every `get_batch` key) — the
    /// read side of the access mix the index advisor consumes.
    reads: AtomicU64,
    /// Inserts/overwrites absorbed by the delta.
    writes: AtomicU64,
    /// Removes (tombstone writes, including no-op removes of absent keys).
    removes: AtomicU64,
    /// The snapshot spool, when persistence was requested at construction.
    spool: Option<Spool>,
    /// Outstanding [`PinnedView`] handles. Purely observability: the pins
    /// themselves keep their generation alive through its `Arc` (the same
    /// refcount rule as any in-flight reader), and this counter lets
    /// harnesses assert that pins drain ([`WriteBehindEngine::active_pins`]).
    /// Shared by `Arc` so a pin outliving its engine can still decrement.
    pins: Arc<AtomicUsize>,
    /// Exact number of entries a full range scan returns right now: a
    /// shadow value over a base duplicate group collapses the whole group
    /// to one visible entry, and a tombstone hides its key entirely.
    /// Updated incrementally on insert/remove, under the state write lock.
    /// Every merge swap leaves it untouched — folding shadow entries down
    /// the stack neither hides nor exposes entries.
    visible_len: AtomicUsize,
}

/// What the immutable tiers below the active delta currently say about a
/// key — the information a write needs to return the previous visible
/// payload and keep `visible_len` exact.
enum DeeperState {
    /// Visible value in the frozen delta or a run (counted as one entry).
    Value(u64),
    /// Tombstoned in the frozen delta or a run.
    Tombstone,
    /// Present only in the base: the duplicate-group sum and group size.
    BaseGroup(u64, usize),
    /// Nowhere.
    Absent,
}

/// Clears the `merging` flag when the merge cycle ends — including by
/// panic (a panicking user factory must not permanently wedge merging; the
/// poisoned state lock will still surface the failure loudly).
struct MergeFlagGuard<'a>(&'a AtomicBool);

impl Drop for MergeFlagGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl<K: Key> Shared<K> {
    /// What the tiers below the active delta say about `key`, probed
    /// without touching any engine (runs and base are probed directly in
    /// their data arrays — the write path stays search-cheap).
    fn deeper_state(&self, st: &State<K>, key: K) -> DeeperState {
        if let Some(frozen) = &st.frozen {
            match frozen.state(key) {
                Some(Some(v)) => return DeeperState::Value(v),
                Some(None) => return DeeperState::Tombstone,
                None => {}
            }
        }
        let fprobe = FilterProbe::new(key.to_u64());
        for run in st.generation.runs_newest_first() {
            if !run.filter_admits_probe(&fprobe) {
                continue; // filter-proven absent; skip the binary search
            }
            match run.probe_in_data(key) {
                Some(Some(v)) => return DeeperState::Value(v),
                Some(None) => return DeeperState::Tombstone,
                None => {}
            }
        }
        let data = &st.generation.data;
        let start = data.lower_bound(key);
        match data.payload_sum_from(key, start) {
            Some(sum) => {
                let group = data.keys()[start..].iter().take_while(|&&x| x == key).count();
                DeeperState::BaseGroup(sum, group)
            }
            None => DeeperState::Absent,
        }
    }

    /// The full merge cycle. Caller must have won the `merging` flag; it is
    /// cleared on every exit path (normal, empty-delta, failed, panicked).
    fn run_merge(&self) {
        let _flag = MergeFlagGuard(&self.merging);
        // Freeze: move the whole active delta behind the frozen pointer (an
        // O(1) handoff — no entry is copied under the lock) and start a
        // fresh active delta. Readers see the frozen entries through the
        // shared pointer for the whole rebuild.
        let (frozen, generation) = {
            let mut st = self.state.write().expect("writebehind state lock");
            debug_assert!(st.frozen.is_none(), "merge started with a frozen tier in place");
            if st.active.is_empty() {
                return;
            }
            let full = std::mem::replace(&mut st.active, DeltaTier::new(&self.delta_factory));
            let frozen = Arc::new(full);
            st.frozen = Some(Arc::clone(&frozen));
            (frozen, Arc::clone(&st.generation))
        };

        // Drain outside every lock: readers keep serving old stack +
        // frozen, writers keep filling the new active delta.
        let snapshot = frozen.drain_sorted();
        match self.policy {
            MergePolicy::Flat => self.merge_flat(&generation, &snapshot),
            MergePolicy::Leveled { fanout, max_levels, tuning } => {
                self.merge_leveled(&generation, &snapshot, fanout, max_levels, tuning)
            }
        }
    }

    /// Flat policy: rebuild the whole base over base-data + snapshot.
    fn merge_flat(&self, generation: &Arc<Generation<K>>, snapshot: &[Shadow<K>]) {
        let Some(merged) = merge_shadows_over_base(&generation.data, snapshot) else {
            // Every record was tombstoned away: an empty base is not
            // representable (`SortedData` is non-empty by invariant), so
            // the tombstones stay in the delta and keep shadowing the old
            // base. Correct, if slow, in the everything-deleted corner.
            self.rollback(snapshot);
            return;
        };
        let merged = Arc::new(merged);
        match (self.base_factory)(Arc::clone(&merged)) {
            Ok(engine) => {
                self.merged_entries.fetch_add(merged.len() as u64, Ordering::Relaxed);
                // Persist the rebuilt base *before* the swap: tombstones
                // were folded into deletions above, so the base snapshot
                // never carries a dead-key section.
                let base_file = self
                    .spool
                    .as_ref()
                    .map(|s| Arc::from(s.persist("base", &merged, &[], None).as_str()));
                let base_hash = snapshot_content_hash(&merged, &[]);
                let next = Arc::new(Generation::new(
                    Vec::new(),
                    Arc::new(engine),
                    merged,
                    generation.epoch + 1,
                    base_file,
                    base_hash,
                ));
                // The O(1) swap: install the merged generation and clear
                // the frozen tier in one critical section, so no reader can
                // observe the drained entries in neither tier. The visible
                // count is invariant here: entries the frozen tier shadowed
                // are exactly the ones the merge collapsed or deleted.
                let mut st = self.state.write().expect("writebehind state lock");
                st.generation = Arc::clone(&next);
                st.frozen = None;
                drop(st);
                self.merges.fetch_add(1, Ordering::Relaxed);
                if let Some(spool) = &self.spool {
                    spool.commit(&next);
                }
            }
            Err(e) => {
                self.rollback(snapshot);
                self.failed_merges.fetch_add(1, Ordering::Relaxed);
                eprintln!("[writebehind] merge rebuild failed, delta retained: {e}");
            }
        }
    }

    /// Leveled policy: freeze the snapshot into a level-0 run, then run
    /// bounded compactions while any level overflows, then rewrite any
    /// run whose tombstone density crossed the policy's threshold.
    fn merge_leveled(
        &self,
        generation: &Arc<Generation<K>>,
        snapshot: &[Shadow<K>],
        fanout: usize,
        max_levels: usize,
        tuning: LeveledTuning,
    ) {
        match Run::build(snapshot, &self.base_factory, tuning.filter) {
            Ok(mut run) => {
                self.merged_entries.fetch_add(run.len() as u64, Ordering::Relaxed);
                // Freeze time is the durability boundary: the run (and its
                // filter) hits the spool (tombstones serialized in its
                // dead-key section) before any reader can see the new
                // generation.
                if let Some(spool) = &self.spool {
                    run.file =
                        Some(spool.persist("run", &run.data, &run.dead_keys, Some(&run.filter)));
                }
                let mut levels = generation.levels.clone();
                if levels.is_empty() {
                    levels.push(Vec::new());
                }
                levels[0].insert(0, Arc::new(run));
                let next = Arc::new(Generation::new(
                    levels,
                    Arc::clone(&generation.base),
                    Arc::clone(&generation.data),
                    generation.epoch + 1,
                    generation.base_file.clone(),
                    generation.base_hash,
                ));
                let mut st = self.state.write().expect("writebehind state lock");
                st.generation = Arc::clone(&next);
                st.frozen = None;
                drop(st);
                self.merges.fetch_add(1, Ordering::Relaxed);
                if let Some(spool) = &self.spool {
                    spool.commit(&next);
                }
                self.compact(fanout, max_levels, tuning.filter);
                if tuning.rewrite_live_pct > 0 {
                    self.rewrite_dense_tombstone_runs(tuning);
                }
            }
            Err(e) => {
                self.rollback(snapshot);
                self.failed_merges.fetch_add(1, Ordering::Relaxed);
                eprintln!("[writebehind] run build failed, delta retained: {e}");
            }
        }
    }

    /// Fold overflowing levels down the stack until every level is within
    /// its fanout. Each step merges exactly one level's runs (newest wins)
    /// into one run at the next level — or, at the bottom, into the base,
    /// where tombstones are finally dropped. Runs are immutable and only
    /// the merge thread replaces generations, so each step builds outside
    /// the lock and publishes with one O(1) swap.
    fn compact(&self, fanout: usize, max_levels: usize, filter_kind: FilterKind) {
        loop {
            let generation = {
                let st = self.state.read().expect("writebehind state lock");
                Arc::clone(&st.generation)
            };
            let Some(level) = generation.levels.iter().position(|l| l.len() >= fanout) else {
                return;
            };
            if !self.compact_level(&generation, level, max_levels, filter_kind) {
                return;
            }
        }
    }

    /// One compaction step: fold `level`'s runs (newest wins) into one run
    /// at the next level — or, at the bottom, into the base. Returns false
    /// when the build failed (the level is retained; retry next cycle).
    fn compact_level(
        &self,
        generation: &Arc<Generation<K>>,
        level: usize,
        max_levels: usize,
        filter_kind: FilterKind,
    ) -> bool {
        {
            let mut merged: Vec<Shadow<K>> = Vec::new();
            for run in &generation.levels[level] {
                merged = merge_newer_over_older(&merged, &run.all_entries());
            }
            let mut levels = generation.levels.clone();
            levels[level].clear();
            let built = if level + 1 < max_levels {
                // Fold into a single run one level down; tombstones are
                // preserved — older levels and the base may still hold
                // their keys.
                Run::build(&merged, &self.base_factory, filter_kind).map(|mut run| {
                    self.merged_entries.fetch_add(run.len() as u64, Ordering::Relaxed);
                    if let Some(spool) = &self.spool {
                        run.file = Some(spool.persist(
                            "run",
                            &run.data,
                            &run.dead_keys,
                            Some(&run.filter),
                        ));
                    }
                    while levels.len() <= level + 1 {
                        levels.push(Vec::new());
                    }
                    levels[level + 1].insert(0, Arc::new(run));
                    Generation::new(
                        levels,
                        Arc::clone(&generation.base),
                        Arc::clone(&generation.data),
                        generation.epoch + 1,
                        generation.base_file.clone(),
                        generation.base_hash,
                    )
                })
            } else {
                // Bottom level: fold into the base. Nothing older than the
                // base exists, so tombstones delete their records and are
                // dropped.
                if let Some(data) = merge_shadows_over_base(&generation.data, &merged) {
                    let data = Arc::new(data);
                    (self.base_factory)(Arc::clone(&data)).map(|base| {
                        self.merged_entries.fetch_add(data.len() as u64, Ordering::Relaxed);
                        // The fold dropped every tombstone, so the fresh
                        // base snapshot has no dead-key section — the
                        // tombstones-never-serialized-to-base rule.
                        let base_file = self
                            .spool
                            .as_ref()
                            .map(|s| Arc::from(s.persist("base", &data, &[], None).as_str()));
                        let base_hash = snapshot_content_hash(&data, &[]);
                        Generation::new(
                            levels,
                            Arc::new(base),
                            data,
                            generation.epoch + 1,
                            base_file,
                            base_hash,
                        )
                    })
                } else {
                    // Everything tombstoned away: an empty base is not
                    // representable, so keep the bottom level as one
                    // all-shadowing run instead (run count drops below the
                    // fanout, so this terminates).
                    Run::build(&merged, &self.base_factory, filter_kind).map(|mut run| {
                        self.merged_entries.fetch_add(run.len() as u64, Ordering::Relaxed);
                        if let Some(spool) = &self.spool {
                            run.file = Some(spool.persist(
                                "run",
                                &run.data,
                                &run.dead_keys,
                                Some(&run.filter),
                            ));
                        }
                        levels[level] = vec![Arc::new(run)];
                        Generation::new(
                            levels,
                            Arc::clone(&generation.base),
                            Arc::clone(&generation.data),
                            generation.epoch + 1,
                            generation.base_file.clone(),
                            generation.base_hash,
                        )
                    })
                }
            };
            match built {
                Ok(next) => {
                    let next = Arc::new(next);
                    let mut st = self.state.write().expect("writebehind state lock");
                    st.generation = Arc::clone(&next);
                    drop(st);
                    self.compactions.fetch_add(1, Ordering::Relaxed);
                    if let Some(spool) = &self.spool {
                        spool.commit(&next);
                    }
                    true
                }
                Err(e) => {
                    // Nothing was lost (the overflowing level is intact);
                    // retry at the next merge cycle.
                    self.failed_merges.fetch_add(1, Ordering::Relaxed);
                    eprintln!("[writebehind] compaction build failed, level retained: {e}");
                    false
                }
            }
        }
    }

    /// Tombstone-density trigger: rewrite, in place, every run whose live
    /// fraction dropped below `tuning.rewrite_live_pct` percent. The
    /// rewrite drops entries shadowed by *newer frozen runs* (invisible
    /// already — but never entries shadowed only by the volatile delta,
    /// which has not crossed the durability boundary yet) and tombstones
    /// whose key exists in no older run and not in the base (they shadow
    /// nothing, so the tombstone-drop rule is satisfied early). The
    /// visible mapping is unchanged by construction, so readers just see
    /// a smaller run behind the same O(1) generation swap.
    fn rewrite_dense_tombstone_runs(&self, tuning: LeveledTuning) {
        let generation = {
            let st = self.state.read().expect("writebehind state lock");
            Arc::clone(&st.generation)
        };
        let mut levels: Vec<Vec<Option<Arc<Run<K>>>>> = generation
            .levels
            .iter()
            .map(|level| level.iter().cloned().map(Some).collect())
            .collect();
        let flat: Vec<Arc<Run<K>>> = generation.runs_newest_first().cloned().collect();
        let mut rewrote = false;
        let mut position = 0usize; // index into `flat`, newest first
        for (li, level) in levels.iter_mut().enumerate() {
            for (ri, slot) in level.iter_mut().enumerate() {
                let idx = position;
                position += 1;
                let run = &generation.levels[li][ri];
                if run.len() == 0
                    || run.live_len() * 100 >= tuning.rewrite_live_pct as usize * run.len()
                {
                    continue;
                }
                let newer = &flat[..idx];
                let older = &flat[idx + 1..];
                let mut kept: Vec<Shadow<K>> = Vec::with_capacity(run.len());
                for (k, v) in run.all_entries() {
                    let shadowed = newer.iter().any(|r| r.probe_in_data(k).is_some());
                    if shadowed {
                        continue; // a newer frozen run already answers for k
                    }
                    if v.is_none() {
                        let covers_something = older.iter().any(|r| r.probe_in_data(k).is_some())
                            || base_has_key(&generation.data, k);
                        if !covers_something {
                            continue; // dead tombstone: nothing left to hide
                        }
                    }
                    kept.push((k, v));
                }
                if kept.len() == run.len() {
                    continue; // nothing droppable; avoid a no-op rebuild
                }
                if kept.is_empty() {
                    *slot = None; // whole run was shadow noise
                    rewrote = true;
                    continue;
                }
                match Run::build(&kept, &self.base_factory, tuning.filter) {
                    Ok(mut new_run) => {
                        self.merged_entries.fetch_add(new_run.len() as u64, Ordering::Relaxed);
                        if let Some(spool) = &self.spool {
                            new_run.file = Some(spool.persist(
                                "run",
                                &new_run.data,
                                &new_run.dead_keys,
                                Some(&new_run.filter),
                            ));
                        }
                        *slot = Some(Arc::new(new_run));
                        rewrote = true;
                    }
                    Err(e) => {
                        self.failed_merges.fetch_add(1, Ordering::Relaxed);
                        eprintln!("[writebehind] density rewrite failed, run retained: {e}");
                    }
                }
            }
        }
        if !rewrote {
            return;
        }
        let next = Arc::new(Generation::new(
            levels.into_iter().map(|level| level.into_iter().flatten().collect()).collect(),
            Arc::clone(&generation.base),
            Arc::clone(&generation.data),
            generation.epoch + 1,
            generation.base_file.clone(),
            generation.base_hash,
        ));
        let mut st = self.state.write().expect("writebehind state lock");
        st.generation = Arc::clone(&next);
        drop(st);
        self.density_rewrites.fetch_add(1, Ordering::Relaxed);
        if let Some(spool) = &self.spool {
            spool.commit(&next);
        }
    }

    /// One read-amp-forced compaction step. Caller must have won the
    /// `merging` flag; folds the fullest level (at least two runs) down
    /// the stack even though it has not reached its fanout yet.
    fn run_early_compaction(&self, max_levels: usize, filter_kind: FilterKind) {
        let _flag = MergeFlagGuard(&self.merging);
        let generation = {
            let st = self.state.read().expect("writebehind state lock");
            Arc::clone(&st.generation)
        };
        let Some((level, _)) = generation
            .levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.len() >= 2)
            .max_by_key(|(_, l)| l.len())
        else {
            return; // one run per level at most: fan-out is already minimal
        };
        if self.compact_level(&generation, level, max_levels, filter_kind) {
            self.early_compactions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold a drained snapshot back into the active delta (newer active
    /// entries win) so nothing is lost, and clear the frozen pointer. The
    /// visible count is invariant — the fold only restores shadow entries
    /// the frozen tier already applied.
    fn rollback(&self, snapshot: &[Shadow<K>]) {
        let mut st = self.state.write().expect("writebehind state lock");
        for &(k, v) in snapshot {
            if st.active.state(k).is_none() {
                match v {
                    Some(payload) => {
                        st.active.values.insert(k, payload);
                    }
                    None => {
                        st.active.tombs.insert(k, 0);
                    }
                }
            }
        }
        st.frozen = None;
    }
}

/// A [`QueryEngine`] over an immutable base plus a bounded mutable delta,
/// with threshold-triggered merges — the write-behind serving tier, now
/// with tombstoned deletes and an optional leveled run stack.
///
/// Construction takes two factories: one that (re)builds an immutable
/// engine over a data array (the base, and each frozen run under
/// [`MergePolicy::Leveled`]), and one that creates empty delta buffers.
///
/// ```
/// use sosd_core::testutil::{MirrorIndex, VecMap};
/// use sosd_core::writebehind::{MergeMode, MergePolicy, WriteBehindEngine};
/// use sosd_core::{QueryEngine, SortedData, StaticEngine};
/// use std::sync::Arc;
///
/// let data = Arc::new(SortedData::with_payloads(vec![10u64, 20, 30], vec![1, 2, 3]).unwrap());
/// let engine = WriteBehindEngine::new(
///     data,
///     Arc::new(|d: Arc<SortedData<u64>>| {
///         Ok(Box::new(StaticEngine::new(MirrorIndex::over(&d), d)) as Box<dyn QueryEngine<u64>>)
///     }),
///     Arc::new(|| Box::new(VecMap::new()) as _),
///     3, // merge once the delta holds three shadow entries
///     MergeMode::Sync,
/// )
/// .unwrap();
///
/// assert_eq!(engine.insert(15, 99), None); // held in the delta
/// assert_eq!(engine.get(15), Some(99));
/// assert_eq!(engine.remove(20), Some(2)); // a tombstone shadows the base record
/// assert_eq!(engine.get(20), None);
/// assert_eq!(engine.insert(20, 7), None); // re-insert over the tombstone
/// assert_eq!(engine.insert(25, 5), None); // third shadow entry => merge
/// engine.wait_for_merges();
/// assert_eq!(engine.merges_completed(), 1);
/// assert_eq!(engine.delta_len(), 0);
/// assert_eq!(engine.range(10, 31), vec![(10, 1), (15, 99), (20, 7), (25, 5), (30, 3)]);
/// ```
pub struct WriteBehindEngine<K: Key> {
    shared: Arc<Shared<K>>,
    mode: MergeMode,
    /// Handle of the most recent background merge thread, joined before
    /// the next spawn and on drop.
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl<K: Key> WriteBehindEngine<K> {
    /// Build the initial base over `data` with the flat merge policy.
    ///
    /// `merge_threshold` is the active-delta shadow-entry count that
    /// triggers a merge; it must be at least 1.
    pub fn new(
        data: Arc<SortedData<K>>,
        base_factory: BaseFactory<K>,
        delta_factory: DeltaFactory<K>,
        merge_threshold: usize,
        mode: MergeMode,
    ) -> Result<Self, BuildError> {
        Self::with_policy(
            data,
            base_factory,
            delta_factory,
            merge_threshold,
            mode,
            MergePolicy::Flat,
        )
    }

    /// Build with an explicit [`MergePolicy`].
    pub fn with_policy(
        data: Arc<SortedData<K>>,
        base_factory: BaseFactory<K>,
        delta_factory: DeltaFactory<K>,
        merge_threshold: usize,
        mode: MergeMode,
        policy: MergePolicy,
    ) -> Result<Self, BuildError> {
        if merge_threshold == 0 {
            return Err(BuildError::InvalidConfig("merge threshold must be >= 1".into()));
        }
        policy.validate()?;
        let engine = Arc::new((base_factory)(Arc::clone(&data))?);
        let base_hash = snapshot_content_hash(&data, &[]);
        let generation = Arc::new(Generation::new(Vec::new(), engine, data, 0, None, base_hash));
        Ok(Self::assemble(
            generation,
            base_factory,
            delta_factory,
            merge_threshold,
            mode,
            policy,
            None,
        ))
    }

    /// Like [`WriteBehindEngine::with_policy`], with a **snapshot spool**:
    /// the initial base — and, from then on, every frozen run at freeze
    /// time and every rebuilt base — is serialized into `dir` as a
    /// checksummed snapshot, with a versioned manifest pointing at the
    /// current stack. [`WriteBehindEngine::open_spool`] re-opens the whole
    /// stack cold from that directory.
    ///
    /// The durability boundary is the **freeze**: entries still in the
    /// active delta at crash time are lost (they were never acknowledged as
    /// merged), while everything at or below a frozen run is on storage.
    /// Persist failures on the merge path panic rather than serve from a
    /// manifest that lies about what survived.
    #[allow(clippy::too_many_arguments)]
    pub fn with_spool(
        data: Arc<SortedData<K>>,
        base_factory: BaseFactory<K>,
        delta_factory: DeltaFactory<K>,
        merge_threshold: usize,
        mode: MergeMode,
        policy: MergePolicy,
        dir: &Path,
        page_size: usize,
    ) -> Result<Self, BuildError> {
        if merge_threshold == 0 {
            return Err(BuildError::InvalidConfig("merge threshold must be >= 1".into()));
        }
        policy.validate()?;
        fs::create_dir_all(dir)
            .map_err(|e| BuildError::Unbuildable(format!("spool dir {}: {e}", dir.display())))?;
        let spool = Spool { dir: dir.to_path_buf(), page_size, next_id: AtomicU64::new(0) };
        let base_name = spool.next_name("base");
        spool.write_data(&base_name, &data, &[], None).map_err(|e| {
            BuildError::Unbuildable(format!("spool base snapshot {base_name}: {e}"))
        })?;
        let engine = Arc::new((base_factory)(Arc::clone(&data))?);
        let base_hash = snapshot_content_hash(&data, &[]);
        let generation = Arc::new(Generation::new(
            Vec::new(),
            engine,
            data,
            0,
            Some(Arc::from(base_name.as_str())),
            base_hash,
        ));
        spool.commit(&generation);
        Ok(Self::assemble(
            generation,
            base_factory,
            delta_factory,
            merge_threshold,
            mode,
            policy,
            Some(spool),
        ))
    }

    /// Cold re-open: reconstruct the whole immutable stack — base and every
    /// frozen run, tombstones included — from a spool directory written by
    /// [`WriteBehindEngine::with_spool`]. Every page of every snapshot is
    /// checksum-verified during the load; corruption fails loudly here
    /// instead of surfacing as garbage reads later. Engines are rebuilt by
    /// `base_factory` (models are derived state, not persisted), and the
    /// active delta starts empty — the spool's documented durability
    /// boundary.
    pub fn open_spool(
        dir: &Path,
        base_factory: BaseFactory<K>,
        delta_factory: DeltaFactory<K>,
        merge_threshold: usize,
        mode: MergeMode,
        policy: MergePolicy,
    ) -> Result<Self, BuildError> {
        if merge_threshold == 0 {
            return Err(BuildError::InvalidConfig("merge threshold must be >= 1".into()));
        }
        policy.validate()?;
        let manifest = SpoolManifest::read(dir)?;
        let bad = |detail: String| BuildError::Unbuildable(format!("spool manifest: {detail}"));
        let SpoolManifest { page_size, epoch, base: base_name, levels: level_files, .. } =
            &manifest;
        let (page_size, epoch) = (*page_size, *epoch);
        if !level_files.iter().all(|l| l.is_empty()) && policy == MergePolicy::Flat {
            return Err(BuildError::InvalidConfig(
                "flat policy cannot re-open a spool with frozen runs (their entries would \
                 vanish at the first merge); re-open with the leveled policy"
                    .into(),
            ));
        }
        type Loaded<K> = (SortedData<K>, Vec<K>, Option<(u32, Vec<u8>)>, u64);
        let load = |name: &String| -> Result<Loaded<K>, BuildError> {
            let snap_err =
                |e: StoreError| BuildError::Unbuildable(format!("spool snapshot {name}: {e}"));
            let paged = PagedData::<K>::open_file(&dir.join(name), StorageProfile::RAM)
                .map_err(snap_err)?;
            let (data, dead) = paged.load().map_err(snap_err)?;
            let filter = paged.read_filter().map_err(snap_err)?;
            // Re-derive the logical content hash from the loaded sections
            // and pin it against both the snapshot's own header and the
            // manifest's `hash` line (each absent in files/manifests from
            // before hashes existed): page checksums catch flipped bits,
            // these two catch a structurally valid file that is not the
            // one the manifest committed.
            let hash = snapshot_content_hash(&data, &dead);
            if let Some(stored) = paged.content_hash() {
                if stored != hash {
                    return Err(BuildError::Unbuildable(format!(
                        "spool snapshot {name}: header content hash {stored:#018x} does not \
                         match the loaded sections ({hash:#018x})"
                    )));
                }
            }
            manifest.check_hash(name, hash)?;
            Ok((data, dead, filter, hash))
        };
        let (base_data, base_dead, _, base_hash) = load(base_name)?;
        if !base_dead.is_empty() {
            return Err(bad(format!(
                "base snapshot {base_name} carries {} tombstones; tombstones are never \
                 serialized to the base",
                base_dead.len()
            )));
        }
        let base_data = Arc::new(base_data);
        let base = Arc::new((base_factory)(Arc::clone(&base_data))?);
        let mut levels = Vec::with_capacity(level_files.len());
        for files in level_files {
            let mut level = Vec::with_capacity(files.len());
            for file in files {
                let (data, dead_keys, stored_filter, content_hash) = load(file)?;
                let data = Arc::new(data);
                let engine = (base_factory)(Arc::clone(&data))?;
                // Filters are derived state: deserialize the persisted one
                // when the snapshot carries it, rebuild from the key column
                // otherwise (spools written before filters existed).
                let filter = match stored_filter {
                    Some((code, bytes)) => {
                        let kind = FilterKind::from_code(code).ok_or_else(|| {
                            bad(format!("snapshot {file}: unknown filter kind {code}"))
                        })?;
                        RunFilter::from_bytes(kind, &bytes).ok_or_else(|| {
                            bad(format!("snapshot {file}: malformed {} filter", kind.token()))
                        })?
                    }
                    None => RunFilter::build(
                        policy.tuning().filter,
                        data.keys().iter().map(|k| k.to_u64()),
                        data.len(),
                    ),
                };
                let (min_key, max_key) = (data.min_key(), data.max_key());
                level.push(Arc::new(Run {
                    engine,
                    data,
                    dead_keys,
                    filter,
                    min_key,
                    max_key,
                    file: Some(file.clone()),
                    content_hash,
                }));
            }
            levels.push(level);
        }
        // The visible count is the length of the stack folded over the
        // base — exactly the bottom-fold merge, discarded after counting.
        let mut shadows: Vec<Shadow<K>> = Vec::new();
        for run in levels.iter().flatten() {
            shadows = merge_newer_over_older(&shadows, &run.all_entries());
        }
        let visible = if shadows.is_empty() {
            base_data.len()
        } else {
            merge_shadows_over_base(&base_data, &shadows).map_or(0, |d| d.len())
        };
        // Snapshot ids are monotone; resume past everything referenced.
        let next_id = manifest
            .files()
            .filter_map(|name| name.split_once('-')?.1.strip_suffix(".snap")?.parse::<u64>().ok())
            .max()
            .map_or(0, |id| id + 1);
        let generation = Arc::new(Generation::new(
            levels,
            base,
            base_data,
            epoch,
            Some(Arc::from(base_name.as_str())),
            base_hash,
        ));
        let spool = Spool { dir: dir.to_path_buf(), page_size, next_id: AtomicU64::new(next_id) };
        let engine = Self::assemble(
            generation,
            base_factory,
            delta_factory,
            merge_threshold,
            mode,
            policy,
            Some(spool),
        );
        engine.shared.visible_len.store(visible, Ordering::Relaxed);
        Ok(engine)
    }

    /// Wire an already-built initial generation into a full engine.
    fn assemble(
        generation: Arc<Generation<K>>,
        base_factory: BaseFactory<K>,
        delta_factory: DeltaFactory<K>,
        merge_threshold: usize,
        mode: MergeMode,
        policy: MergePolicy,
        spool: Option<Spool>,
    ) -> Self {
        let visible = generation.data.len();
        let state = State { generation, active: DeltaTier::new(&delta_factory), frozen: None };
        WriteBehindEngine {
            shared: Arc::new(Shared {
                state: RwLock::new(state),
                base_factory,
                delta_factory,
                merge_threshold,
                policy,
                merging: AtomicBool::new(false),
                merges: AtomicU64::new(0),
                failed_merges: AtomicU64::new(0),
                compactions: AtomicU64::new(0),
                early_compactions: AtomicU64::new(0),
                density_rewrites: AtomicU64::new(0),
                stack_lookups: AtomicU64::new(0),
                stack_probes: AtomicU64::new(0),
                filter_skips: AtomicU64::new(0),
                read_amp_probes_mark: AtomicU64::new(0),
                read_amp_lookups_mark: AtomicU64::new(0),
                merged_entries: AtomicU64::new(0),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                removes: AtomicU64::new(0),
                spool,
                pins: Arc::new(AtomicUsize::new(0)),
                visible_len: AtomicUsize::new(visible),
            }),
            mode,
            worker: Mutex::new(None),
        }
    }

    /// Insert (or overwrite) `key` in the delta, returning the previously
    /// *visible* payload — the newest shadow entry if one existed (`None`
    /// for a tombstone), otherwise the base's [`QueryEngine::get`] answer
    /// (the duplicate-group sum on duplicated base keys, located directly
    /// in the generation's data arrays — no engine probe on the write
    /// path).
    ///
    /// Crossing the merge threshold triggers a merge: inline under
    /// [`MergeMode::Sync`], on a spawned thread under
    /// [`MergeMode::Background`] (at most one in flight; further writes
    /// keep landing in the fresh active delta meanwhile).
    pub fn insert(&self, key: K, payload: u64) -> Option<u64> {
        self.shared.writes.fetch_add(1, Ordering::Relaxed);
        let (prev, crossed) = {
            let mut st = self.shared.state.write().expect("writebehind state lock");
            let prev = match st.active.state(key) {
                Some(Some(_)) => st.active.values.insert(key, payload),
                Some(None) => {
                    // Re-insert over an active tombstone: the key revives.
                    st.active.tombs.remove(key);
                    st.active.values.insert(key, payload);
                    self.shared.visible_len.fetch_add(1, Ordering::Relaxed);
                    None
                }
                None => {
                    let prev = match self.shared.deeper_state(&st, key) {
                        DeeperState::Value(v) => Some(v),
                        DeeperState::BaseGroup(sum, group) => {
                            // First shadow of this key: the base's duplicate
                            // group collapses to this one visible entry.
                            self.shared.visible_len.fetch_sub(group - 1, Ordering::Relaxed);
                            Some(sum)
                        }
                        DeeperState::Tombstone | DeeperState::Absent => {
                            self.shared.visible_len.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                    };
                    st.active.values.insert(key, payload);
                    prev
                }
            };
            (prev, st.active.len() >= self.shared.merge_threshold)
        };
        if crossed {
            self.trigger_merge();
        }
        prev
    }

    /// Remove `key`, returning the previously visible payload (the
    /// duplicate-group sum when the key only existed as a duplicated base
    /// group). The removal lands as a **tombstone** shadow entry in the
    /// delta; the key's older records stay physically present until a
    /// merge folds the tombstone onto them. Removing a key that is not
    /// visible returns `None` and writes nothing (so remove-heavy streams
    /// of absent keys cannot grow the delta).
    pub fn remove(&self, key: K) -> Option<u64> {
        self.shared.removes.fetch_add(1, Ordering::Relaxed);
        let (prev, crossed) = {
            let mut st = self.shared.state.write().expect("writebehind state lock");
            let prev = match st.active.state(key) {
                Some(Some(_)) => {
                    let prev = st.active.values.remove(key);
                    st.active.tombs.insert(key, 0);
                    self.shared.visible_len.fetch_sub(1, Ordering::Relaxed);
                    prev
                }
                Some(None) => None, // already tombstoned: nothing to do
                None => match self.shared.deeper_state(&st, key) {
                    DeeperState::Value(v) => {
                        st.active.tombs.insert(key, 0);
                        self.shared.visible_len.fetch_sub(1, Ordering::Relaxed);
                        Some(v)
                    }
                    DeeperState::BaseGroup(sum, group) => {
                        st.active.tombs.insert(key, 0);
                        self.shared.visible_len.fetch_sub(group, Ordering::Relaxed);
                        Some(sum)
                    }
                    DeeperState::Tombstone | DeeperState::Absent => None,
                },
            };
            (prev, st.active.len() >= self.shared.merge_threshold)
        };
        if crossed {
            self.trigger_merge();
        }
        prev
    }

    /// Force a merge now (if one is not already running), regardless of
    /// the threshold. Respects the engine's [`MergeMode`].
    pub fn force_merge(&self) {
        self.trigger_merge();
    }

    /// The cumulative read/write/remove operation mix served since
    /// construction — the workload half of the access observability the
    /// index advisor consumes at rebuild time.
    pub fn access_mix(&self) -> AccessMix {
        AccessMix {
            reads: self.shared.reads.load(Ordering::Relaxed),
            writes: self.shared.writes.load(Ordering::Relaxed),
            removes: self.shared.removes.load(Ordering::Relaxed),
        }
    }

    /// Retune now: publish this engine's operation mix into `hub`, force a
    /// base rebuild, and wait for it to complete. With an advisor-driven
    /// [`BaseFactory`] (see
    /// [`Advisor::base_factory`](crate::advisor::Advisor::base_factory))
    /// the rebuild re-scores every candidate per shard under the hub's
    /// current snapshot. The generation swap keeps the retune invisible:
    /// the mapping served before and after is identical.
    pub fn retune(&self, hub: &ObservabilityHub<K>) {
        hub.publish_mix(self.access_mix());
        self.force_merge();
        self.wait_for_merges();
    }

    /// Block until no merge is in flight (joins the background worker).
    pub fn wait_for_merges(&self) {
        if let Some(handle) = self.worker.lock().expect("worker slot").take() {
            if handle.join().is_err() {
                // The merge thread panicked (e.g. inside a user-supplied
                // factory): it never reached its flag clear, so clear it
                // here rather than spinning forever. State-lock users will
                // surface the poisoning loudly on their next access.
                self.shared.merging.store(false, Ordering::Release);
            }
        }
        while self.shared.merging.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }

    /// Number of merge cycles completed since construction (each drains
    /// one frozen delta).
    pub fn merges_completed(&self) -> u64 {
        self.shared.merges.load(Ordering::Relaxed)
    }

    /// Number of merge builds that failed (delta rolled back or level
    /// retained, retried on the next cycle).
    pub fn failed_merges(&self) -> u64 {
        self.shared.failed_merges.load(Ordering::Relaxed)
    }

    /// Compaction steps completed (always 0 under [`MergePolicy::Flat`]).
    pub fn compactions(&self) -> u64 {
        self.shared.compactions.load(Ordering::Relaxed)
    }

    /// Compactions forced early by the read-amp watermark — a subset of
    /// [`WriteBehindEngine::compactions`].
    pub fn early_compactions(&self) -> u64 {
        self.shared.early_compactions.load(Ordering::Relaxed)
    }

    /// Tombstone-density-triggered in-place run rewrites completed.
    pub fn density_rewrites(&self) -> u64 {
        self.shared.density_rewrites.load(Ordering::Relaxed)
    }

    /// Point lookups (`get` and `get_batch` keys missing the delta) that
    /// consulted a non-empty run stack.
    pub fn stack_lookups(&self) -> u64 {
        self.shared.stack_lookups.load(Ordering::Relaxed)
    }

    /// Run engine probes those lookups performed, after range pruning and
    /// filter checks — the read-amplification numerator.
    pub fn stack_probes(&self) -> u64 {
        self.shared.stack_probes.load(Ordering::Relaxed)
    }

    /// Run probes skipped because a per-run filter proved the key absent.
    pub fn filter_skips(&self) -> u64 {
        self.shared.filter_skips.load(Ordering::Relaxed)
    }

    /// Average run probes per stack lookup since construction (0.0 before
    /// the first stack lookup) — the read-amp figure ext07 tracks.
    pub fn probes_per_lookup(&self) -> f64 {
        let lookups = self.shared.stack_lookups.load(Ordering::Relaxed);
        if lookups == 0 {
            0.0
        } else {
            self.shared.stack_probes.load(Ordering::Relaxed) as f64 / lookups as f64
        }
    }

    /// For every run (newest first): `(admits, present)` — does the run's
    /// filter (after range pruning) admit `key`, and does the run's data
    /// actually contain it (tombstones count as present)? A filter may
    /// admit an absent key (false positive, one wasted probe) but must
    /// never reject a present one; test harnesses assert
    /// `present implies admits` over deleted and never-inserted keys.
    pub fn run_filter_audit(&self, key: K) -> Vec<(bool, bool)> {
        let generation = {
            let st = self.shared.state.read().expect("writebehind state lock");
            Arc::clone(&st.generation)
        };
        generation
            .runs_newest_first()
            .map(|run| {
                let admits = !run.prunes(key) && run.filter_admits(key);
                let present = run.probe_in_data(key).is_some();
                (admits, present)
            })
            .collect()
    }

    /// Record run-stack observability for `lookups` point lookups and,
    /// when the policy arms a read-amp watermark, evaluate the windowed
    /// probes-per-lookup average once per [`READ_AMP_WINDOW`] lookups.
    fn note_stack_lookups(&self, lookups: u64, probes: u64, skips: u64) {
        let shared = &self.shared;
        if probes != 0 {
            shared.stack_probes.fetch_add(probes, Ordering::Relaxed);
        }
        if skips != 0 {
            shared.filter_skips.fetch_add(skips, Ordering::Relaxed);
        }
        let before = shared.stack_lookups.fetch_add(lookups, Ordering::Relaxed);
        let MergePolicy::Leveled { tuning, .. } = shared.policy else {
            return;
        };
        let watermark = tuning.read_amp_watermark as u64;
        if watermark == 0 || before / READ_AMP_WINDOW == (before + lookups) / READ_AMP_WINDOW {
            return;
        }
        let total_probes = shared.stack_probes.load(Ordering::Relaxed);
        let total_lookups = shared.stack_lookups.load(Ordering::Relaxed);
        // Saturating: a racing evaluator may have advanced a mark past the
        // totals this thread read; the window is then simply empty here.
        let d_probes = total_probes
            .saturating_sub(shared.read_amp_probes_mark.swap(total_probes, Ordering::Relaxed));
        let d_lookups = total_lookups
            .saturating_sub(shared.read_amp_lookups_mark.swap(total_lookups, Ordering::Relaxed));
        if d_lookups == 0 || d_probes <= watermark * d_lookups {
            return;
        }
        self.early_compact();
    }

    /// Read-amp trigger: win the merge flag and fold the fullest level
    /// early. Respects the engine's [`MergeMode`]; a merge already in
    /// flight wins the race and will reduce fan-out itself.
    fn early_compact(&self) {
        let MergePolicy::Leveled { max_levels, tuning, .. } = self.shared.policy else {
            return;
        };
        if self
            .shared
            .merging
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        match self.mode {
            MergeMode::Sync => self.shared.run_early_compaction(max_levels, tuning.filter),
            MergeMode::Background => {
                let mut slot = self.worker.lock().expect("worker slot");
                if let Some(handle) = slot.take() {
                    let _ = handle.join();
                }
                let shared = Arc::clone(&self.shared);
                *slot = Some(std::thread::spawn(move || {
                    shared.run_early_compaction(max_levels, tuning.filter)
                }));
            }
        }
    }

    /// Total entries written into new immutable structures by merges and
    /// compactions — divide by [`WriteBehindEngine::merges_completed`] for
    /// the per-cycle merged volume the leveled policy bounds.
    pub fn merged_entries(&self) -> u64 {
        self.shared.merged_entries.load(Ordering::Relaxed)
    }

    /// True while a merge (freeze → build → swaps) is in flight.
    pub fn is_merging(&self) -> bool {
        self.shared.merging.load(Ordering::Acquire)
    }

    /// Shadow entries currently buffered in the delta tiers (active +
    /// frozen), tombstones included.
    pub fn delta_len(&self) -> usize {
        let st = self.shared.state.read().expect("writebehind state lock");
        st.active.len() + st.frozen.as_ref().map_or(0, |f| f.len())
    }

    /// Records in the current base generation's data array (frozen runs
    /// not included; see [`WriteBehindEngine::run_count`]).
    pub fn base_len(&self) -> usize {
        self.shared.state.read().expect("writebehind state lock").generation.data.len()
    }

    /// Immutable runs currently stacked above the base (always 0 under
    /// [`MergePolicy::Flat`]). `run_count + 1` bounds the number of
    /// engines a point read may probe after missing the delta — the read
    /// fan-out the leveled policy trades merge work against.
    pub fn run_count(&self) -> usize {
        self.shared.state.read().expect("writebehind state lock").generation.run_count()
    }

    /// Runs per level, newest level first (empty under
    /// [`MergePolicy::Flat`]).
    pub fn level_run_counts(&self) -> Vec<usize> {
        let st = self.shared.state.read().expect("writebehind state lock");
        st.generation.levels.iter().map(Vec::len).collect()
    }

    /// The current generation counter (0 = initial build; each merge and
    /// compaction swap increments it).
    pub fn epoch(&self) -> u64 {
        self.shared.state.read().expect("writebehind state lock").generation.epoch
    }

    /// The configured merge threshold.
    pub fn merge_threshold(&self) -> usize {
        self.shared.merge_threshold
    }

    /// The configured merge policy.
    pub fn policy(&self) -> MergePolicy {
        self.shared.policy
    }

    /// The snapshot spool directory, when persistence is on.
    pub fn spool_dir(&self) -> Option<&Path> {
        self.shared.spool.as_ref().map(|s| s.dir.as_path())
    }

    /// Total bytes of the snapshot files the current generation references
    /// (0 without a spool) — the on-storage footprint a cold re-open reads.
    pub fn spool_bytes(&self) -> u64 {
        let Some(spool) = &self.shared.spool else {
            return 0;
        };
        let generation = {
            let st = self.shared.state.read().expect("writebehind state lock");
            Arc::clone(&st.generation)
        };
        let file_len =
            |name: &str| fs::metadata(spool.dir.join(name)).map(|m| m.len()).unwrap_or(0);
        generation.base_file.as_deref().map_or(0, file_len)
            + generation
                .runs_newest_first()
                .filter_map(|r| r.file.as_deref())
                .map(file_len)
                .sum::<u64>()
    }

    /// Pin a consistent point-in-time view: one `Arc` clone of the
    /// current generation plus one copy of the delta (active merged over
    /// frozen), taken under a single read-lock acquisition. Every read
    /// through the returned [`PinnedView`] — point, batch, ordered —
    /// answers from exactly the mapping visible at this instant;
    /// concurrent inserts, removes, merges, compactions, density
    /// rewrites, and retunes publish *newer* generations the pin never
    /// observes. The pin costs `O(delta)` to take (the immutable tiers
    /// are shared, not copied) and holds its generation's memory alive
    /// until dropped — the same refcount rule as any in-flight reader.
    pub fn snapshot(&self) -> PinnedView<K> {
        let (generation, delta, visible_len) = {
            let st = self.shared.state.read().expect("writebehind state lock");
            // `delta_entries` is half-open, so the extreme key needs one
            // explicit probe (mirroring the merge drain).
            let mut delta = st.delta_entries(K::MIN_KEY, K::MAX_KEY);
            if let Some(state) = st.delta_state(K::MAX_KEY) {
                delta.push((K::MAX_KEY, state));
            }
            // `visible_len` is only ever updated under the state *write*
            // lock, so this read is coherent with the delta copy above.
            (Arc::clone(&st.generation), delta, self.shared.visible_len.load(Ordering::Relaxed))
        };
        self.shared.pins.fetch_add(1, Ordering::Relaxed);
        PinnedView {
            generation,
            delta: delta.into(),
            visible_len,
            _pin: PinGuard { pins: Arc::clone(&self.shared.pins) },
        }
    }

    /// Outstanding [`PinnedView`] handles (clones included). Purely
    /// observability — harnesses assert this drains back to zero to prove
    /// pinned generations are reclaimable, not leaked.
    pub fn active_pins(&self) -> usize {
        self.shared.pins.load(Ordering::Acquire)
    }

    /// The root content hash of the engine's *visible* logical mapping —
    /// [`PinnedView::fingerprint`] of a snapshot taken now. Two engines
    /// serving the same mapping report equal fingerprints regardless of
    /// how their physical tiers differ (delta vs. runs vs. base, flat vs.
    /// leveled, before vs. after a compaction).
    pub fn fingerprint(&self) -> u64 {
        self.snapshot().fingerprint()
    }

    /// Audit a spool directory cold, without building any engine: parse
    /// the manifest, open every referenced snapshot (every page checksum
    /// is verified on the way), re-derive each snapshot's logical content
    /// hash from its sections, and compare it against both the snapshot's
    /// own header and the manifest's `hash` line. Any mismatch — a
    /// flipped bit, a structurally valid file substituted for another, a
    /// manifest edited to lie — fails loudly with the offending file
    /// named. Returns what was checked, so callers can also assert
    /// coverage (`hashed == files.len()` for spools written by this
    /// version).
    pub fn verify_spool(dir: &Path) -> Result<SpoolVerifyReport, BuildError> {
        let manifest = SpoolManifest::read(dir)?;
        let mut files = Vec::new();
        let mut hashed = 0usize;
        for name in manifest.files() {
            let snap_err =
                |e: StoreError| BuildError::Unbuildable(format!("spool snapshot {name}: {e}"));
            let paged = PagedData::<K>::open_file(&dir.join(name), StorageProfile::RAM)
                .map_err(snap_err)?;
            let hash = paged.verify_content_hash().map_err(snap_err)?;
            if manifest.hashes.contains_key(name.as_str()) {
                hashed += 1;
                manifest.check_hash(name, hash)?;
            }
            files.push((name.clone(), hash));
        }
        Ok(SpoolVerifyReport { epoch: manifest.epoch, files, hashed })
    }

    /// Win the merge flag and run (or spawn) the merge.
    fn trigger_merge(&self) {
        if self
            .shared
            .merging
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // a merge is already in flight
        }
        match self.mode {
            MergeMode::Sync => self.shared.run_merge(),
            MergeMode::Background => {
                let mut slot = self.worker.lock().expect("worker slot");
                // The previous worker finished (we won the flag); reap it.
                // A panicked worker is reported by the join and must not
                // stop the next cycle from spawning.
                if let Some(handle) = slot.take() {
                    let _ = handle.join();
                }
                let shared = Arc::clone(&self.shared);
                *slot = Some(std::thread::spawn(move || shared.run_merge()));
            }
        }
    }
}

impl<K: Key> Drop for WriteBehindEngine<K> {
    fn drop(&mut self) {
        self.wait_for_merges();
    }
}

impl<K: Key> QueryEngine<K> for WriteBehindEngine<K> {
    fn name(&self) -> String {
        let st = self.shared.state.read().expect("writebehind state lock");
        format!("writebehind[{}+{}]", st.generation.base.name(), st.active.values.name())
    }

    /// The number of visible entries: delta overwrites don't double-count,
    /// a shadow value over a base duplicate group counts the group as one
    /// entry, and tombstoned keys count zero. Equals the length of a full
    /// [`QueryEngine::range`] scan, except that an entry at
    /// [`Key::MAX_KEY`] is counted here but unreachable by any half-open
    /// range (`hi` is exclusive).
    fn len(&self) -> usize {
        self.shared.visible_len.load(Ordering::Relaxed)
    }

    fn size_bytes(&self) -> usize {
        let st = self.shared.state.read().expect("writebehind state lock");
        st.generation.base.size_bytes()
            + st.generation.runs_newest_first().map(|r| r.size_bytes()).sum::<usize>()
            + st.active.size_bytes()
            + st.frozen.as_ref().map_or(0, |f| f.size_bytes())
    }

    /// Delta first (the newest shadow entry wins: a value answers, a
    /// tombstone answers `None`), then each run newest-to-oldest (skipping
    /// runs whose key range prunes the probe or whose filter proves the
    /// key absent), then the snapshotted base generation — everything
    /// below the delta probed outside the state lock.
    fn get(&self, key: K) -> Option<u64> {
        self.shared.reads.fetch_add(1, Ordering::Relaxed);
        let generation = {
            let st = self.shared.state.read().expect("writebehind state lock");
            if let Some(state) = st.delta_state(key) {
                return state;
            }
            Arc::clone(&st.generation)
        };
        let mut hit = None;
        if !generation.probe_runs.is_empty() {
            let mut probes = 0u64;
            let mut skips = 0u64;
            let fprobe = FilterProbe::new(key.to_u64());
            for entry in &generation.probe_runs {
                if key < entry.min_key || key > entry.max_key {
                    continue;
                }
                if !entry.filter.may_contain_probe(&fprobe) {
                    skips += 1;
                    continue;
                }
                probes += 1;
                if let Some(state) = entry.run.probe_unpruned(key) {
                    hit = Some(state);
                    break;
                }
            }
            self.note_stack_lookups(1, probes, skips);
        }
        match hit {
            Some(state) => state,
            None => generation.base.get(key),
        }
    }

    /// Smallest visible entry `>= key`. Candidates are gathered from every
    /// tier; on key ties the newest tier wins, and a winning tombstone
    /// advances the probe past its key (tombstones hide, they don't
    /// answer). The state read lock is held across the *whole* skip loop:
    /// every iteration must see the same delta and generation, or a writer
    /// interleaving between two iterations could make the call return an
    /// answer that was correct at no single instant (e.g. skip a tombstone
    /// that a concurrent re-insert just revived, then miss an entry a
    /// concurrent remove just hid).
    fn lower_bound(&self, key: K) -> Option<(K, u64)> {
        let st = self.shared.state.read().expect("writebehind state lock");
        let generation = &st.generation;
        let mut probe = key;
        loop {
            let active = st.active.lower_bound_entry(probe);
            let frozen = st.frozen.as_ref().and_then(|f| f.lower_bound_entry(probe));
            // Active wins frozen on ties (it is newer).
            let mut best = match (active, frozen) {
                (Some(a), Some(f)) => Some(if f.0 < a.0 { f } else { a }),
                (a, f) => a.or(f),
            };
            // Fold in run candidates newest-to-oldest, then the base; an
            // earlier (newer) candidate wins key ties, so `best` is always
            // the newest shadow state of the smallest candidate key.
            for entry in &generation.probe_runs {
                // A fence filter can prove the run's tail past `probe` is
                // empty and skip the engine entirely; point filters (Bloom)
                // conservatively admit every range probe.
                if !entry.filter.may_contain_from(probe.to_u64()) {
                    continue;
                }
                if let Some(cand) = entry.run.lower_bound(probe) {
                    if best.as_ref().is_none_or(|b| cand.0 < b.0) {
                        best = Some(cand);
                    }
                }
            }
            if let Some((k, v)) = generation.base.lower_bound(probe) {
                if best.as_ref().is_none_or(|b| k < b.0) {
                    best = Some((k, Some(v)));
                }
            }
            match best {
                None => return None,
                Some((k, Some(v))) => return Some((k, v)),
                Some((k, None)) => match k.successor() {
                    Some(next) => probe = next,
                    None => return None,
                },
            }
        }
    }

    /// Merge of the delta range, each run's range (newest over older), and
    /// the base range; a shadow value replaces the whole base duplicate
    /// group of its key, and a tombstone drops it.
    fn range(&self, lo: K, hi: K) -> Vec<(K, u64)> {
        if hi <= lo {
            return Vec::new();
        }
        let (mut shadows, generation) = {
            let st = self.shared.state.read().expect("writebehind state lock");
            (st.delta_entries(lo, hi), Arc::clone(&st.generation))
        };
        for run in generation.runs_newest_first() {
            shadows = merge_newer_over_older(&shadows, &run.entries_in(lo, hi));
        }
        overlay_shadows(shadows, generation.base.range(lo, hi))
    }

    /// Partitioned batch execution: delta hits (values *and* tombstones)
    /// are answered inline under one read-lock acquisition (so the whole
    /// batch sees a single coherent delta state), run hits are resolved
    /// newest-to-oldest against the generation snapshot, and the remaining
    /// keys — the non-shadowed majority in a read-mostly workload — go to
    /// the snapshotted base's own `get_batch`, keeping its
    /// interleaved-prefetch override on the hot path.
    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) {
        if keys.is_empty() {
            return;
        }
        self.shared.reads.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let start = out.len();
        out.resize(start + keys.len(), None);
        let mut pending_keys = Vec::new();
        let mut pending_slots = Vec::new();
        let generation = {
            let st = self.shared.state.read().expect("writebehind state lock");
            for (i, &k) in keys.iter().enumerate() {
                match st.delta_state(k) {
                    Some(state) => out[start + i] = state,
                    None => {
                        pending_keys.push(k);
                        pending_slots.push(i);
                    }
                }
            }
            Arc::clone(&st.generation)
        };
        if pending_keys.is_empty() {
            return;
        }
        if generation.run_count() > 0 {
            let lookups = pending_keys.len() as u64;
            let mut probes = 0u64;
            let mut skips = 0u64;
            let mut next_keys = Vec::with_capacity(pending_keys.len());
            let mut next_slots = Vec::with_capacity(pending_slots.len());
            'keys: for (&k, &i) in pending_keys.iter().zip(&pending_slots) {
                let fprobe = FilterProbe::new(k.to_u64());
                for entry in &generation.probe_runs {
                    if k < entry.min_key || k > entry.max_key {
                        continue;
                    }
                    if !entry.filter.may_contain_probe(&fprobe) {
                        skips += 1;
                        continue;
                    }
                    probes += 1;
                    if let Some(state) = entry.run.probe_unpruned(k) {
                        out[start + i] = state;
                        continue 'keys;
                    }
                }
                next_keys.push(k);
                next_slots.push(i);
            }
            pending_keys = next_keys;
            pending_slots = next_slots;
            self.note_stack_lookups(lookups, probes, skips);
        }
        if pending_keys.is_empty() {
            return;
        }
        let mut base_results = Vec::with_capacity(pending_keys.len());
        generation.base.get_batch(&pending_keys, &mut base_results);
        for (r, &i) in base_results.iter().zip(&pending_slots) {
            out[start + i] = *r;
        }
    }
}

/// What [`WriteBehindEngine::verify_spool`] checked: every snapshot file
/// the manifest references, with its verified content hash.
#[derive(Debug, Clone)]
pub struct SpoolVerifyReport {
    /// The generation counter recorded in the manifest.
    pub epoch: u64,
    /// Every referenced snapshot file (base first, then runs, newest
    /// level first) with its verified logical content hash.
    pub files: Vec<(String, u64)>,
    /// How many of those files the manifest carried a reference hash for
    /// (fewer than `files.len()` only for spools written before manifest
    /// hashes existed).
    pub hashed: usize,
}

/// Decrements the engine's pin counter when the last handle to one
/// [`PinnedView`] drops.
struct PinGuard {
    pins: Arc<AtomicUsize>,
}

impl Clone for PinGuard {
    fn clone(&self) -> PinGuard {
        self.pins.fetch_add(1, Ordering::Relaxed);
        PinGuard { pins: Arc::clone(&self.pins) }
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.pins.fetch_sub(1, Ordering::Release);
    }
}

/// A consistent point-in-time read handle over a [`WriteBehindEngine`],
/// returned by [`WriteBehindEngine::snapshot`]: one pinned generation
/// (base + run stack, shared by `Arc`) plus a frozen copy of the delta as
/// of pin time. Implements [`QueryEngine`], and every read answers from
/// exactly the mapping that was visible when the pin was taken — writes,
/// merges, compactions, and rewrites racing the reads land in newer
/// generations this handle never observes.
///
/// Cloning is cheap (two `Arc` clones and a counter bump) and shares the
/// pin. The pinned generation's memory is reclaimed when the last clone
/// drops; [`WriteBehindEngine::active_pins`] counts handles outstanding.
///
/// Reads through a pin are *not* recorded in the engine's access
/// observability (`access_mix`, read-amp counters): a pin may outlive its
/// engine, and historical reads would skew the advisor's picture of the
/// live workload anyway.
pub struct PinnedView<K: Key> {
    generation: Arc<Generation<K>>,
    /// Sorted, unique shadow entries: the delta (active merged over
    /// frozen) at pin time, including the `K::MAX_KEY` entry when one
    /// existed.
    delta: Arc<[Shadow<K>]>,
    /// The engine's exact visible-entry count at pin time.
    visible_len: usize,
    _pin: PinGuard,
}

impl<K: Key> Clone for PinnedView<K> {
    fn clone(&self) -> PinnedView<K> {
        PinnedView {
            generation: Arc::clone(&self.generation),
            delta: Arc::clone(&self.delta),
            visible_len: self.visible_len,
            _pin: self._pin.clone(),
        }
    }
}

impl<K: Key> PinnedView<K> {
    /// The pinned generation's epoch (each merge/compaction/rewrite swap
    /// increments the engine's; this one is frozen at pin time).
    pub fn epoch(&self) -> u64 {
        self.generation.epoch
    }

    /// Shadow entries frozen from the delta at pin time.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Immutable runs in the pinned stack.
    pub fn run_count(&self) -> usize {
        self.generation.run_count()
    }

    /// Content hash of the pinned base's logical entry stream.
    pub fn base_hash(&self) -> u64 {
        self.generation.base_hash
    }

    /// Content hash of each pinned run's logical shadow stream, newest
    /// first. Runs frozen from identical logical state hash identically —
    /// the dedupe handle for replica transfer and backup.
    pub fn run_hashes(&self) -> Vec<u64> {
        self.generation.runs_newest_first().map(|r| r.content_hash).collect()
    }

    /// The pinned base generation's backing data array (shared, not
    /// copied). Useful for zero-copy export and for harnesses asserting
    /// reclamation: a `Weak` of this fails to upgrade once the pin and
    /// every newer reference to the generation are gone.
    pub fn base_data(&self) -> Arc<SortedData<K>> {
        Arc::clone(&self.generation.data)
    }

    /// The root content hash of the pinned *visible* mapping: one
    /// [`content_hash_fold`] per visible entry in key order, over the
    /// full ordered scan. Hash equality is logical-state equality — two
    /// pins over identical mappings fingerprint identically no matter how
    /// their physical tiers differ (delta vs. runs vs. base, flat vs.
    /// leveled, before vs. after a compaction), and any visible
    /// insert/remove/overwrite changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = CONTENT_HASH_SEED;
        for (k, v) in self.range(K::MIN_KEY, K::MAX_KEY) {
            h = content_hash_fold(h, k, Some(v));
        }
        // The ordered scan is half-open; an entry at the extreme key is
        // visible but unreachable by any range, so probe it explicitly.
        if let Some(v) = self.get(K::MAX_KEY) {
            h = content_hash_fold(h, K::MAX_KEY, Some(v));
        }
        h
    }

    /// Shadow state of `key` in the frozen delta copy, or `None` when
    /// only the pinned immutable tiers can answer.
    fn delta_state(&self, key: K) -> Option<Option<u64>> {
        self.delta.binary_search_by(|e| e.0.cmp(&key)).ok().map(|i| self.delta[i].1)
    }

    /// The frozen delta entries in `[lo, hi)`.
    fn delta_entries_in(&self, lo: K, hi: K) -> &[Shadow<K>] {
        let a = self.delta.partition_point(|e| e.0 < lo);
        let b = self.delta.partition_point(|e| e.0 < hi);
        &self.delta[a..b]
    }

    /// Batch path shared by the serial and parallel entry points: delta
    /// hits answer from the frozen copy, run hits resolve newest-to-
    /// oldest, and the remainder goes to the pinned base in one batch —
    /// through its parallel path when `par` (so a sharded base fans the
    /// non-shadowed majority out across cores).
    fn get_batch_impl(&self, keys: &[K], out: &mut Vec<Option<u64>>, par: bool) {
        if keys.is_empty() {
            return;
        }
        let start = out.len();
        out.resize(start + keys.len(), None);
        let mut pending_keys = Vec::new();
        let mut pending_slots = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            match self.delta_state(k) {
                Some(state) => out[start + i] = state,
                None => {
                    pending_keys.push(k);
                    pending_slots.push(i);
                }
            }
        }
        if !pending_keys.is_empty() && self.generation.run_count() > 0 {
            let mut next_keys = Vec::with_capacity(pending_keys.len());
            let mut next_slots = Vec::with_capacity(pending_slots.len());
            'keys: for (&k, &i) in pending_keys.iter().zip(&pending_slots) {
                let fprobe = FilterProbe::new(k.to_u64());
                for entry in &self.generation.probe_runs {
                    if k < entry.min_key || k > entry.max_key {
                        continue;
                    }
                    if !entry.filter.may_contain_probe(&fprobe) {
                        continue;
                    }
                    if let Some(state) = entry.run.probe_unpruned(k) {
                        out[start + i] = state;
                        continue 'keys;
                    }
                }
                next_keys.push(k);
                next_slots.push(i);
            }
            pending_keys = next_keys;
            pending_slots = next_slots;
        }
        if pending_keys.is_empty() {
            return;
        }
        let mut base_results = Vec::with_capacity(pending_keys.len());
        if par {
            self.generation.base.par_get_batch(&pending_keys, &mut base_results);
        } else {
            self.generation.base.get_batch(&pending_keys, &mut base_results);
        }
        for (r, &i) in base_results.iter().zip(&pending_slots) {
            out[start + i] = *r;
        }
    }
}

impl<K: Key> QueryEngine<K> for PinnedView<K> {
    fn name(&self) -> String {
        format!("pinned[{}@{}]", self.generation.base.name(), self.generation.epoch)
    }

    /// The visible-entry count at pin time (same counting rule as
    /// [`WriteBehindEngine::len`]).
    fn len(&self) -> usize {
        self.visible_len
    }

    fn size_bytes(&self) -> usize {
        self.generation.base.size_bytes()
            + self.generation.runs_newest_first().map(|r| r.size_bytes()).sum::<usize>()
            + self.delta.len() * std::mem::size_of::<Shadow<K>>()
    }

    /// The live engine's read path against the pinned tiers: frozen delta
    /// first, then each run newest-to-oldest (fence- and filter-pruned),
    /// then the pinned base — no lock anywhere; everything is immutable.
    fn get(&self, key: K) -> Option<u64> {
        if let Some(state) = self.delta_state(key) {
            return state;
        }
        let fprobe = FilterProbe::new(key.to_u64());
        for entry in &self.generation.probe_runs {
            if key < entry.min_key || key > entry.max_key {
                continue;
            }
            if !entry.filter.may_contain_probe(&fprobe) {
                continue;
            }
            if let Some(state) = entry.run.probe_unpruned(key) {
                return state;
            }
        }
        self.generation.base.get(key)
    }

    /// Smallest visible entry `>= key` in the pinned mapping; a winning
    /// tombstone advances the probe past its key, exactly like the live
    /// engine — but with no lock to hold, because every tier is frozen.
    fn lower_bound(&self, key: K) -> Option<(K, u64)> {
        let mut probe = key;
        loop {
            let i = self.delta.partition_point(|e| e.0 < probe);
            let mut best = self.delta.get(i).copied();
            for entry in &self.generation.probe_runs {
                if !entry.filter.may_contain_from(probe.to_u64()) {
                    continue;
                }
                if let Some(cand) = entry.run.lower_bound(probe) {
                    if best.as_ref().is_none_or(|b| cand.0 < b.0) {
                        best = Some(cand);
                    }
                }
            }
            if let Some((k, v)) = self.generation.base.lower_bound(probe) {
                if best.as_ref().is_none_or(|b| k < b.0) {
                    best = Some((k, Some(v)));
                }
            }
            match best {
                None => return None,
                Some((k, Some(v))) => return Some((k, v)),
                Some((k, None)) => match k.successor() {
                    Some(next) => probe = next,
                    None => return None,
                },
            }
        }
    }

    /// Merge of the frozen delta range, each pinned run's range (newest
    /// over older), and the pinned base range.
    fn range(&self, lo: K, hi: K) -> Vec<(K, u64)> {
        if hi <= lo {
            return Vec::new();
        }
        let mut shadows: Vec<Shadow<K>> = self.delta_entries_in(lo, hi).to_vec();
        for run in self.generation.runs_newest_first() {
            shadows = merge_newer_over_older(&shadows, &run.entries_in(lo, hi));
        }
        overlay_shadows(shadows, self.generation.base.range(lo, hi))
    }

    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) {
        self.get_batch_impl(keys, out, false);
    }

    /// Like [`QueryEngine::get_batch`], routing the base-bound remainder
    /// through the pinned base's own parallel path — a sharded base fans
    /// the batch out across cores while the view stays consistent.
    fn par_get_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) {
        self.get_batch_impl(keys, out, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StaticEngine;
    use crate::testutil::{MirrorIndex, VecMap};
    use std::collections::BTreeMap;

    fn mirror_factory() -> BaseFactory<u64> {
        Arc::new(|d: Arc<SortedData<u64>>| {
            Ok(Box::new(StaticEngine::new(MirrorIndex::over(&d), d)) as Box<dyn QueryEngine<u64>>)
        })
    }

    fn vecmap_factory() -> DeltaFactory<u64> {
        Arc::new(|| Box::new(VecMap::new()) as Box<dyn DynamicOrderedIndex<u64>>)
    }

    fn engine(keys: Vec<u64>, threshold: usize, mode: MergeMode) -> WriteBehindEngine<u64> {
        engine_with_policy(keys, threshold, mode, MergePolicy::Flat)
    }

    fn engine_with_policy(
        keys: Vec<u64>,
        threshold: usize,
        mode: MergeMode,
        policy: MergePolicy,
    ) -> WriteBehindEngine<u64> {
        let payloads: Vec<u64> = keys.iter().map(|&k| k.wrapping_mul(3) ^ 0xA5).collect();
        let data = Arc::new(SortedData::with_payloads(keys, payloads).unwrap());
        WriteBehindEngine::with_policy(
            data,
            mirror_factory(),
            vecmap_factory(),
            threshold,
            mode,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn zero_threshold_is_rejected() {
        let data = Arc::new(SortedData::new(vec![1u64]).unwrap());
        assert!(WriteBehindEngine::new(
            data,
            mirror_factory(),
            vecmap_factory(),
            0,
            MergeMode::Sync
        )
        .is_err());
    }

    #[test]
    fn bad_leveled_policies_are_rejected() {
        for policy in [MergePolicy::leveled(1, 2), MergePolicy::leveled(4, 0)] {
            let data = Arc::new(SortedData::new(vec![1u64]).unwrap());
            assert!(
                WriteBehindEngine::with_policy(
                    data,
                    mirror_factory(),
                    vecmap_factory(),
                    8,
                    MergeMode::Sync,
                    policy,
                )
                .is_err(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn reads_merge_delta_over_base() {
        let e = engine(vec![10, 20, 30], 100, MergeMode::Sync);
        assert_eq!(e.len(), 3);
        assert_eq!(e.insert(15, 1), None);
        assert_eq!(e.insert(20, 2), Some(20u64.wrapping_mul(3) ^ 0xA5));
        assert_eq!(e.len(), 4, "overwrite of a base key must not grow len");
        assert_eq!(e.get(15), Some(1));
        assert_eq!(e.get(20), Some(2));
        assert_eq!(e.get(10), Some(10u64.wrapping_mul(3) ^ 0xA5));
        assert_eq!(e.get(11), None);
        assert_eq!(e.lower_bound(11), Some((15, 1)));
        assert_eq!(e.lower_bound(16), Some((20, 2)), "delta overwrite wins the tie");
        assert_eq!(e.range(10, 31).iter().map(|e| e.0).collect::<Vec<_>>(), vec![10, 15, 20, 30]);
        assert_eq!(e.merges_completed(), 0, "threshold not crossed");
        assert_eq!(e.epoch(), 0);
    }

    #[test]
    fn removes_tombstone_and_shadow_every_read_path() {
        let e = engine(vec![10, 20, 30, 40], 100, MergeMode::Sync);
        let p = |k: u64| k.wrapping_mul(3) ^ 0xA5;
        assert_eq!(e.remove(20), Some(p(20)), "base record payload returned");
        assert_eq!(e.len(), 3);
        assert_eq!(e.get(20), None, "tombstone hides the base record");
        assert_eq!(e.lower_bound(15), Some((30, p(30))), "lower bound skips the tombstone");
        assert_eq!(e.range(10, 41), vec![(10, p(10)), (30, p(30)), (40, p(40))]);
        assert_eq!(e.lookup_batch(&[10, 20, 30]), vec![Some(p(10)), None, Some(p(30))]);
        // Remove of a delta value.
        e.insert(25, 7);
        assert_eq!(e.remove(25), Some(7));
        assert_eq!(e.get(25), None);
        // Removing what is already gone (or never existed) is a no-op.
        assert_eq!(e.remove(20), None);
        assert_eq!(e.remove(21), None);
        assert_eq!(e.len(), 3);
        // Tombstone-then-re-insert revives the key as a fresh entry.
        assert_eq!(e.insert(20, 99), None);
        assert_eq!(e.get(20), Some(99));
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn flat_merge_drops_tombstoned_keys() {
        let e = engine((0..100).map(|i| i * 10).collect(), 1_000, MergeMode::Sync);
        let before = e.base_len();
        e.remove(100);
        e.remove(200);
        e.insert(5, 1);
        e.force_merge();
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.delta_len(), 0, "tombstones drained with the delta");
        assert_eq!(e.base_len(), before - 2 + 1, "merge physically dropped dead keys");
        assert_eq!(e.get(100), None);
        assert_eq!(e.get(200), None);
        assert_eq!(e.get(5), Some(1));
        assert_eq!(e.len(), before - 1);
        // A dropped key can come back afterwards.
        assert_eq!(e.insert(100, 42), None);
        assert_eq!(e.get(100), Some(42));
    }

    #[test]
    fn sync_merge_drains_delta_into_base() {
        let e = engine((0..100).map(|i| i * 10).collect(), 4, MergeMode::Sync);
        for k in [5u64, 15, 25, 35] {
            e.insert(k, k + 1);
        }
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.epoch(), 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.base_len(), 104);
        for k in [5u64, 15, 25, 35] {
            assert_eq!(e.get(k), Some(k + 1), "merged entry {k}");
        }
        assert_eq!(e.len(), 104);
    }

    #[test]
    fn merged_base_shadows_duplicate_groups() {
        // Base has a duplicate run at key 7; a delta overwrite must replace
        // the whole group both before and after the merge.
        let data = Arc::new(
            SortedData::with_payloads(vec![5u64, 7, 7, 7, 9], vec![1, 10, 100, 1000, 5]).unwrap(),
        );
        let e =
            WriteBehindEngine::new(data, mirror_factory(), vecmap_factory(), 10, MergeMode::Sync)
                .unwrap();
        assert_eq!(e.get(7), Some(1110), "duplicate sum before any write");
        assert_eq!(e.insert(7, 42), Some(1110), "prior visible payload is the group sum");
        assert_eq!(e.get(7), Some(42));
        assert_eq!(e.len(), 3, "the shadowed group collapses to one visible entry");
        assert_eq!(e.range(5, 10), vec![(5, 1), (7, 42), (9, 5)]);
        assert_eq!(e.range(5, 10).len(), e.len(), "len matches a full scan");
        e.force_merge();
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.base_len(), 3, "merge collapsed the shadowed group");
        assert_eq!(e.get(7), Some(42));
        assert_eq!(e.range(5, 10), vec![(5, 1), (7, 42), (9, 5)]);
    }

    #[test]
    fn removing_a_duplicate_group_deletes_the_whole_group() {
        let data = Arc::new(
            SortedData::with_payloads(vec![5u64, 7, 7, 7, 9], vec![1, 10, 100, 1000, 5]).unwrap(),
        );
        let e =
            WriteBehindEngine::new(data, mirror_factory(), vecmap_factory(), 10, MergeMode::Sync)
                .unwrap();
        assert_eq!(e.remove(7), Some(1110), "previous visible payload is the group sum");
        assert_eq!(e.len(), 2);
        assert_eq!(e.get(7), None);
        assert_eq!(e.range(5, 10), vec![(5, 1), (9, 5)]);
        e.force_merge();
        assert_eq!(e.base_len(), 2, "the whole group is physically gone");
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn max_key_entries_survive_the_merge_drain() {
        let e = engine(vec![10, 20], 100, MergeMode::Sync);
        e.insert(u64::MAX, 77);
        e.force_merge();
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.get(u64::MAX), Some(77));
        assert_eq!(e.lower_bound(u64::MAX), Some((u64::MAX, 77)));
        // A tombstone at the extreme key also survives the drain.
        assert_eq!(e.remove(u64::MAX), Some(77));
        e.force_merge();
        assert_eq!(e.get(u64::MAX), None);
        assert_eq!(e.lower_bound(u64::MAX), None);
    }

    #[test]
    fn batch_partitions_between_delta_and_base() {
        let e = engine((0..1000).map(|i| i * 2).collect(), 1_000_000, MergeMode::Sync);
        for k in (1..200u64).step_by(2) {
            e.insert(k, k * 100);
        }
        for k in (0..100u64).step_by(4) {
            e.remove(k);
        }
        let probes: Vec<u64> = (0..400u64).collect();
        let batched = e.lookup_batch(&probes);
        for (&p, got) in probes.iter().zip(&batched) {
            assert_eq!(*got, e.get(p), "batch diverges from get at {p}");
        }
    }

    #[test]
    fn oracle_interleaved_with_forced_merges() {
        let base_keys: Vec<u64> = (0..500).map(|i| i * 7).collect();
        let e = engine(base_keys.clone(), 64, MergeMode::Sync);
        let mut oracle: BTreeMap<u64, u64> =
            base_keys.iter().map(|&k| (k, k.wrapping_mul(3) ^ 0xA5)).collect();
        let mut x = 12345u64;
        for step in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 4_000;
            if x.is_multiple_of(5) {
                assert_eq!(e.remove(k), oracle.remove(&k), "remove {k} at step {step}");
            } else {
                let v = x >> 32;
                assert_eq!(e.insert(k, v), oracle.insert(k, v), "insert {k} at step {step}");
            }
            if step % 97 == 0 {
                let probe = (x >> 16) % 4_100;
                assert_eq!(e.get(probe), oracle.get(&probe).copied(), "get {probe}");
                let lo = probe.saturating_sub(300);
                let want: Vec<(u64, u64)> =
                    oracle.range(lo..probe).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(e.range(lo, probe), want, "range [{lo}, {probe})");
            }
        }
        assert!(e.merges_completed() >= 3, "expected several merge cycles");
        assert_eq!(e.len(), oracle.len());
        let all: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(e.range(0, u64::MAX), all);
    }

    #[test]
    fn leveled_oracle_interleaved_with_forced_merges() {
        let base_keys: Vec<u64> = (0..500).map(|i| i * 7).collect();
        let e =
            engine_with_policy(base_keys.clone(), 48, MergeMode::Sync, MergePolicy::leveled(2, 2));
        let mut oracle: BTreeMap<u64, u64> =
            base_keys.iter().map(|&k| (k, k.wrapping_mul(3) ^ 0xA5)).collect();
        let mut x = 999u64;
        for step in 0..3_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 4_000;
            if x.is_multiple_of(4) {
                assert_eq!(e.remove(k), oracle.remove(&k), "remove {k} at step {step}");
            } else {
                let v = x >> 32;
                assert_eq!(e.insert(k, v), oracle.insert(k, v), "insert {k} at step {step}");
            }
            if step % 83 == 0 {
                let probe = (x >> 16) % 4_100;
                assert_eq!(e.get(probe), oracle.get(&probe).copied(), "get {probe}");
                assert_eq!(
                    e.lower_bound(probe),
                    oracle.range(probe..).next().map(|(&k, &v)| (k, v)),
                    "lower_bound {probe}"
                );
            }
        }
        assert!(e.merges_completed() >= 3);
        assert!(e.compactions() >= 1, "fanout 2 must have compacted");
        assert_eq!(e.len(), oracle.len());
        let all: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(e.range(0, u64::MAX), all);
        let batch: Vec<u64> = (0..4_100).step_by(3).collect();
        let results = e.lookup_batch(&batch);
        for (&k, got) in batch.iter().zip(&results) {
            assert_eq!(*got, oracle.get(&k).copied(), "batch {k}");
        }
    }

    #[test]
    fn leveled_merges_stack_runs_and_compact() {
        let e = engine_with_policy(
            (0..200).map(|i| i * 10).collect(),
            8,
            MergeMode::Sync,
            MergePolicy::leveled(2, 2),
        );
        // First freeze: one run at level 0; base untouched.
        for k in 0..8u64 {
            e.insert(k * 10 + 1, k);
        }
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.run_count(), 1);
        assert_eq!(e.base_len(), 200, "leveled freeze must not rebuild the base");
        // Second freeze overflows level 0 (fanout 2) into level 1.
        for k in 0..8u64 {
            e.insert(k * 10 + 2, k);
        }
        assert_eq!(e.merges_completed(), 2);
        assert!(e.compactions() >= 1, "level 0 must have compacted");
        assert_eq!(e.level_run_counts()[0], 0);
        // Two more freezes overflow level 0 again; two level-1 runs then
        // fold into the base (the bottom level).
        for k in 0..16u64 {
            e.insert(k * 10 + 3, k);
        }
        e.wait_for_merges();
        assert!(e.base_len() > 200, "bottom-level overflow folds into the base");
        // Every write is still visible through every path.
        for k in 0..8u64 {
            assert_eq!(e.get(k * 10 + 1), Some(k));
            assert_eq!(e.get(k * 10 + 2), Some(k));
        }
        assert_eq!(e.len(), 200 + 8 + 8 + 16);
    }

    #[test]
    fn leveled_merged_volume_stays_below_flat() {
        // Same write stream through both policies: the leveled stack must
        // move strictly fewer entries per merge cycle.
        let keys: Vec<u64> = (0..20_000).map(|i| i * 4).collect();
        let run = |policy| {
            let e = engine_with_policy(keys.clone(), 256, MergeMode::Sync, policy);
            for k in 0..2_048u64 {
                e.insert(k * 4 + 1, k);
            }
            e.wait_for_merges();
            assert!(e.merges_completed() >= 4, "{policy:?}");
            e.merged_entries() as f64 / e.merges_completed() as f64
        };
        let flat = run(MergePolicy::Flat);
        let leveled = run(MergePolicy::leveled(4, 3));
        assert!(leveled < flat, "leveled per-cycle volume {leveled} must be below flat {flat}");
    }

    #[test]
    fn background_merges_complete_and_agree_with_oracle() {
        let e = engine((0..200).map(|i| i * 5).collect(), 32, MergeMode::Background);
        let mut oracle: BTreeMap<u64, u64> =
            (0..200u64).map(|i| (i * 5, (i * 5).wrapping_mul(3) ^ 0xA5)).collect();
        for round in 0..4u64 {
            for j in 0..40u64 {
                let k = round * 1_000 + j * 3 + 1;
                assert_eq!(e.insert(k, k), oracle.insert(k, k));
            }
            e.wait_for_merges();
        }
        assert!(e.merges_completed() >= 3, "got {}", e.merges_completed());
        assert_eq!(e.delta_len(), 0);
        for (&k, &v) in &oracle {
            assert_eq!(e.get(k), Some(v), "key {k}");
        }
        assert_eq!(e.len(), oracle.len());
    }

    #[test]
    fn failed_rebuild_rolls_the_delta_back() {
        use std::sync::atomic::AtomicU32;
        let fail_after = Arc::new(AtomicU32::new(1));
        let fa = Arc::clone(&fail_after);
        let factory: BaseFactory<u64> = Arc::new(move |d: Arc<SortedData<u64>>| {
            if fa.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1)).is_err() {
                return Err(BuildError::InvalidConfig("injected".into()));
            }
            Ok(Box::new(StaticEngine::new(MirrorIndex::over(&d), d)) as Box<dyn QueryEngine<u64>>)
        });
        let data = Arc::new(SortedData::new(vec![10u64, 20, 30]).unwrap());
        let e =
            WriteBehindEngine::new(data, factory, vecmap_factory(), 100, MergeMode::Sync).unwrap();
        e.insert(15, 1);
        e.insert(25, 2);
        e.remove(20);
        e.force_merge(); // rebuild fails: budget of 1 was spent at construction
        assert_eq!(e.failed_merges(), 1);
        assert_eq!(e.merges_completed(), 0);
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.get(15), Some(1), "rolled-back entry still visible");
        assert_eq!(e.get(25), Some(2));
        assert_eq!(e.get(20), None, "rolled-back tombstone still shadows");
        assert_eq!(e.delta_len(), 3);
        // Allow the next rebuild: the retry succeeds and drains the delta.
        fail_after.store(1, Ordering::SeqCst);
        e.force_merge();
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.get(15), Some(1));
        assert_eq!(e.get(20), None);
    }

    #[test]
    fn deleting_everything_keeps_serving() {
        // An empty base is not representable; the engine must stay correct
        // (tombstones keep shadowing) even when every record is removed.
        for policy in [MergePolicy::Flat, MergePolicy::leveled(2, 2)] {
            let e = engine_with_policy(vec![10, 20, 30], 2, MergeMode::Sync, policy);
            let p = |k: u64| k.wrapping_mul(3) ^ 0xA5;
            for k in [10u64, 20, 30] {
                assert_eq!(e.remove(k), Some(p(k)), "{policy:?}");
            }
            e.force_merge();
            assert_eq!(e.len(), 0, "{policy:?}");
            assert_eq!(e.range(0, u64::MAX), vec![], "{policy:?}");
            assert_eq!(e.lower_bound(0), None, "{policy:?}");
            for k in [10u64, 20, 30] {
                assert_eq!(e.get(k), None, "{policy:?}");
            }
            // And the world can come back.
            assert_eq!(e.insert(20, 9), None, "{policy:?}");
            assert_eq!(e.get(20), Some(9), "{policy:?}");
            assert_eq!(e.len(), 1, "{policy:?}");
        }
    }

    #[test]
    fn metadata_reflects_both_tiers() {
        let e = engine(vec![1, 2, 3], 100, MergeMode::Sync);
        assert!(e.name().starts_with("writebehind[Mirror+"));
        assert_eq!(e.merge_threshold(), 100);
        assert_eq!(e.policy(), MergePolicy::Flat);
        let before = e.size_bytes();
        for k in 10..200u64 {
            e.insert(k, k);
        }
        assert!(e.size_bytes() > before, "delta growth must show in size_bytes");
        assert!(!e.is_merging());
    }

    #[test]
    fn leveled_size_bytes_counts_runs() {
        let e = engine_with_policy(
            (0..100).map(|i| i * 3).collect(),
            16,
            MergeMode::Sync,
            MergePolicy::leveled(8, 2),
        );
        let before = e.size_bytes();
        for k in 0..16u64 {
            e.insert(k * 3 + 1, k);
        }
        e.wait_for_merges();
        assert_eq!(e.run_count(), 1);
        assert!(e.size_bytes() > before, "a frozen run must show in size_bytes");
    }

    /// Fresh spool directory under the system temp dir, removed by the
    /// returned guard.
    fn spool_dir(tag: &str) -> (PathBuf, impl Drop) {
        struct Cleanup(PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = fs::remove_dir_all(&self.0);
            }
        }
        let dir = std::env::temp_dir().join(format!("sosd-wb-spool-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        (dir.clone(), Cleanup(dir))
    }

    fn spooled_engine(
        keys: Vec<u64>,
        threshold: usize,
        policy: MergePolicy,
        dir: &Path,
    ) -> WriteBehindEngine<u64> {
        let payloads: Vec<u64> = keys.iter().map(|&k| k.wrapping_mul(3) ^ 0xA5).collect();
        let data = Arc::new(SortedData::with_payloads(keys, payloads).unwrap());
        WriteBehindEngine::with_spool(
            data,
            mirror_factory(),
            vecmap_factory(),
            threshold,
            MergeMode::Sync,
            policy,
            dir,
            256,
        )
        .unwrap()
    }

    #[test]
    fn leveled_spool_reopens_the_whole_stack_cold() {
        let (dir, _guard) = spool_dir("leveled");
        let policy = MergePolicy::leveled(3, 2);
        let e = spooled_engine((0..200).map(|i| i * 2).collect(), 8, policy, &dir);
        // Enough churn to stack runs, compact, and leave live tombstones.
        for k in 0..40u64 {
            e.insert(k * 2 + 1, k + 1000);
        }
        for k in 10..30u64 {
            e.remove(k * 2); // tombstones over base keys
        }
        e.force_merge();
        e.wait_for_merges();
        assert!(e.run_count() > 0, "the scenario must leave frozen runs");
        drop(e);

        let cold = WriteBehindEngine::open_spool(
            &dir,
            mirror_factory(),
            vecmap_factory(),
            8,
            MergeMode::Sync,
            policy,
        )
        .unwrap();
        // Rebuild the original in RAM for the oracle comparison (the
        // spooled engine above was dropped; same data, same operations —
        // but never merged, so the oracle's answers come straight from its
        // delta over the pristine base).
        let oracle = engine_with_policy(
            (0..200).map(|i| i * 2).collect(),
            usize::MAX,
            MergeMode::Sync,
            policy,
        );
        for k in 0..40u64 {
            oracle.insert(k * 2 + 1, k + 1000);
        }
        for k in 10..30u64 {
            oracle.remove(k * 2);
        }
        for probe in 0..440u64 {
            assert_eq!(cold.get(probe), oracle.get(probe), "cold get({probe})");
        }
        assert_eq!(cold.range(0, 441), oracle.range(0, 441), "cold range");
        assert_eq!(cold.lookup_batch(&(0..440).collect::<Vec<_>>()), {
            let mut out = Vec::new();
            oracle.get_batch(&(0..440).collect::<Vec<_>>(), &mut out);
            out
        });
        assert_eq!(cold.len(), oracle.len(), "visible length survives re-open");
        assert_eq!(cold.delta_len(), 0, "the delta never survives a restart");
        assert!(cold.spool_bytes() > 0);
        // The re-opened engine keeps serving and spooling: a new merge must
        // commit a manifest the next cold open can read.
        cold.insert(9_999, 1);
        cold.force_merge();
        cold.wait_for_merges();
        let again = WriteBehindEngine::open_spool(
            &dir,
            mirror_factory(),
            vecmap_factory(),
            8,
            MergeMode::Sync,
            policy,
        )
        .unwrap();
        assert_eq!(again.get(9_999), Some(1), "post-reopen writes survive the next restart");
    }

    #[test]
    fn flat_spool_keeps_one_base_snapshot_and_reopens() {
        let (dir, _guard) = spool_dir("flat");
        let e = spooled_engine((0..50).map(|i| i * 2).collect(), 4, MergePolicy::Flat, &dir);
        for k in 0..20u64 {
            e.insert(k * 2 + 1, k); // several merge cycles
        }
        e.remove(0);
        e.force_merge();
        e.wait_for_merges();
        assert!(e.merges_completed() >= 2);
        let snaps: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|f| f.file_name().to_str().map(String::from))
            .filter(|n| n.ends_with(".snap"))
            .collect();
        assert_eq!(snaps.len(), 1, "flat spool sweeps every superseded base: {snaps:?}");
        let expect: Vec<Option<u64>> = (0..60u64).map(|k| e.get(k)).collect();
        drop(e);
        let cold = WriteBehindEngine::open_spool(
            &dir,
            mirror_factory(),
            vecmap_factory(),
            4,
            MergeMode::Sync,
            MergePolicy::Flat,
        )
        .unwrap();
        let got: Vec<Option<u64>> = (0..60u64).map(|k| cold.get(k)).collect();
        assert_eq!(got, expect, "flat cold re-open serves the merged base");
        assert_eq!(cold.run_count(), 0);
    }

    #[test]
    fn corrupted_spool_snapshot_fails_loudly_on_reopen() {
        let (dir, _guard) = spool_dir("corrupt");
        let policy = MergePolicy::leveled(4, 2);
        let e = spooled_engine((0..100).map(|i| i * 2).collect(), 4, policy, &dir);
        for k in 0..8u64 {
            e.insert(k * 2 + 1, k);
        }
        e.wait_for_merges();
        assert!(e.run_count() > 0);
        drop(e);
        // Flip one byte in the middle of a run snapshot.
        let victim = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .find(|f| f.file_name().to_str().is_some_and(|n| n.starts_with("run-")))
            .expect("a run snapshot exists")
            .path();
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&victim, bytes).unwrap();
        let err = WriteBehindEngine::<u64>::open_spool(
            &dir,
            mirror_factory(),
            vecmap_factory(),
            4,
            MergeMode::Sync,
            policy,
        );
        assert!(err.is_err(), "a corrupted run page must fail the cold open, not serve garbage");
    }

    #[test]
    fn flat_reopen_of_a_leveled_spool_is_rejected() {
        let (dir, _guard) = spool_dir("mismatch");
        let policy = MergePolicy::leveled(4, 2);
        let e = spooled_engine((0..100).map(|i| i * 2).collect(), 4, policy, &dir);
        for k in 0..8u64 {
            e.insert(k * 2 + 1, k);
        }
        e.wait_for_merges();
        assert!(e.run_count() > 0);
        drop(e);
        assert!(
            WriteBehindEngine::<u64>::open_spool(
                &dir,
                mirror_factory(),
                vecmap_factory(),
                4,
                MergeMode::Sync,
                MergePolicy::Flat,
            )
            .is_err(),
            "flat policy would drop the frozen runs' entries at the first merge"
        );
    }
}
