//! Write-behind serving: an immutable base engine plus a bounded delta
//! buffer, merged in the background.
//!
//! The paper's updatable-index experiments show learned structures losing
//! to B-trees under writes because every insert disturbs the model;
//! LSM-style systems sidestep this by keeping learned indexes over
//! **immutable** sorted runs and absorbing writes in a small mutable tier.
//! [`WriteBehindEngine`] is that architecture as a [`QueryEngine`]:
//!
//! * **Writes** go to a mutable *delta* — any [`DynamicOrderedIndex`] —
//!   so the base index is never retrained on the write path.
//! * **Reads** merge delta-over-base: point lookups probe the delta first,
//!   ordered queries stitch a two-way merge, and batched lookups partition
//!   keys so the base's interleaved-prefetch path still fires for the
//!   (usually large) non-deltaed majority.
//! * **Merges** rebuild the base from its [`SortedData`] plus the drained
//!   delta when the delta crosses a size threshold — synchronously
//!   ([`MergeMode::Sync`]) or on a background thread
//!   ([`MergeMode::Background`]).
//!
//! # The epoch pointer
//!
//! Each merge produces a new immutable *generation* (rebuilt data + rebuilt
//! engine) held in an `Arc`. Readers snapshot the current generation with
//! one `Arc` clone and run against it lock-free; the merge builds the next
//! generation entirely outside any lock and publishes it with an O(1)
//! pointer swap. The pointer lives behind an `RwLock` (std has no atomic
//! `Arc` swap), but the write lock is held only for the two O(1) pointer
//! moves of the cycle — the freeze handoff and the swap — never for the
//! drain or rebuild, so readers can only ever block for a pointer store,
//! and a generation's memory is reclaimed when its last in-flight reader
//! drops its `Arc` (epoch-style reclamation by refcount).
//!
//! # Consistency
//!
//! A merge cycle touches the state lock twice, O(1) each time: the
//! *freeze* moves the whole active delta behind the frozen pointer (no
//! entry is copied under the lock; the drain into a sorted snapshot reads
//! the now-immutable frozen tier outside it) and installs a fresh active
//! delta; the *swap* installs the merged base and clears the frozen
//! pointer in one critical section. A reader therefore always observes one
//! of two coherent states — old base + frozen entries, or merged base +
//! empty frozen — never a window where drained entries are in neither
//! tier. Inserts arriving mid-merge land in the fresh active delta and
//! survive the swap untouched.

use crate::data::SortedData;
use crate::dynamic::DynamicOrderedIndex;
use crate::engine::QueryEngine;
use crate::error::BuildError;
use crate::key::Key;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Builds the immutable base engine over a (rebuilt) data array — called
/// once at construction and once per merge. Any [`QueryEngine`] works: a
/// plain `StaticEngine`, a `ShardedEngine`, or another compositor.
pub type BaseFactory<K> =
    Arc<dyn Fn(Arc<SortedData<K>>) -> Result<Box<dyn QueryEngine<K>>, BuildError> + Send + Sync>;

/// Creates an empty delta buffer — called at construction and every time
/// the active delta is frozen for a merge.
pub type DeltaFactory<K> = Arc<dyn Fn() -> Box<dyn DynamicOrderedIndex<K>> + Send + Sync>;

/// When the merge rebuild runs relative to the insert that triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// The triggering insert blocks until the rebuilt base is installed —
    /// simple, deterministic, and the right choice for single-threaded
    /// harnesses and tests.
    Sync,
    /// The rebuild runs on a spawned thread; the triggering insert returns
    /// immediately and readers keep serving from the old generation plus
    /// the frozen delta until the O(1) swap.
    Background,
}

/// One immutable base generation: the engine and the data it was built
/// over (kept so the next merge can rebuild from it).
struct Generation<K: Key> {
    engine: Box<dyn QueryEngine<K>>,
    data: Arc<SortedData<K>>,
    /// Monotone generation counter (0 = the initial build).
    epoch: u64,
}

/// Everything a reader needs one coherent view of: the current generation
/// pointer, the mutable active delta, and the frozen (mid-merge) delta.
struct State<K: Key> {
    generation: Arc<Generation<K>>,
    active: Box<dyn DynamicOrderedIndex<K>>,
    /// A previous active delta, moved here wholesale (an O(1) pointer
    /// handoff) when its merge began and not yet folded into the base.
    /// `None` except while a merge is in flight. Shared with the merge
    /// thread, which drains it outside the state lock.
    frozen: Option<Arc<dyn DynamicOrderedIndex<K>>>,
}

impl<K: Key> State<K> {
    fn frozen_get(&self, key: K) -> Option<u64> {
        self.frozen.as_ref().and_then(|f| f.get(key))
    }

    /// Payload visible for `key` in the delta tiers (active wins over
    /// frozen), or `None` when only the base can answer.
    fn delta_get(&self, key: K) -> Option<u64> {
        self.active.get(key).or_else(|| self.frozen_get(key))
    }

    /// Delta entries in `[lo, hi)`, active merged over frozen, sorted and
    /// unique.
    fn delta_range(&self, lo: K, hi: K) -> Vec<(K, u64)> {
        let mut active = Vec::new();
        self.active.for_each_in(lo, hi, &mut |k, v| active.push((k, v)));
        let Some(frozen) = &self.frozen else {
            return active;
        };
        let mut older = Vec::new();
        frozen.for_each_in(lo, hi, &mut |k, v| older.push((k, v)));
        merge_newer_over_older(&active, &older)
    }
}

/// Merge two sorted unique runs; on equal keys the `newer` entry wins.
fn merge_newer_over_older<K: Key>(newer: &[(K, u64)], older: &[(K, u64)]) -> Vec<(K, u64)> {
    let mut out = Vec::with_capacity(newer.len() + older.len());
    let mut i = 0;
    for &(k, v) in newer {
        while i < older.len() && older[i].0 < k {
            out.push(older[i]);
            i += 1;
        }
        if i < older.len() && older[i].0 == k {
            i += 1;
        }
        out.push((k, v));
    }
    out.extend_from_slice(&older[i..]);
    out
}

/// Merge sorted unique `delta` entries over `base` records: a delta entry
/// replaces the *whole duplicate group* of its key (matching the engine's
/// overwrite semantics, where a deltaed key's payload shadows the base's
/// duplicate sum).
fn merge_delta_over_base<K: Key>(base: &SortedData<K>, delta: &[(K, u64)]) -> SortedData<K> {
    let bk = base.keys();
    let bp = base.payloads();
    let mut keys = Vec::with_capacity(bk.len() + delta.len());
    let mut payloads = Vec::with_capacity(bk.len() + delta.len());
    let mut i = 0;
    for &(dk, dv) in delta {
        while i < bk.len() && bk[i] < dk {
            keys.push(bk[i]);
            payloads.push(bp[i]);
            i += 1;
        }
        while i < bk.len() && bk[i] == dk {
            i += 1; // shadowed duplicate group
        }
        keys.push(dk);
        payloads.push(dv);
    }
    keys.extend_from_slice(&bk[i..]);
    payloads.extend_from_slice(&bp[i..]);
    SortedData::with_payloads(keys, payloads).expect("two-way merge preserves order")
}

/// The pieces shared between the engine handle and a background merge
/// thread.
struct Shared<K: Key> {
    state: RwLock<State<K>>,
    base_factory: BaseFactory<K>,
    delta_factory: DeltaFactory<K>,
    merge_threshold: usize,
    /// True while one merge (freeze → rebuild → swap) is in flight; at
    /// most one runs at a time.
    merging: AtomicBool,
    merges: AtomicU64,
    failed_merges: AtomicU64,
    /// Exact number of entries a full range scan returns right now: a
    /// delta write that shadows a base duplicate group collapses the whole
    /// group to one visible entry. Updated incrementally on insert, under
    /// the state write lock. The merge swap leaves it untouched — folding
    /// the frozen tier into the base neither hides nor exposes entries, so
    /// the count is invariant across the swap.
    visible_len: AtomicUsize,
}

/// Clears the `merging` flag when the merge cycle ends — including by
/// panic (a panicking user factory must not permanently wedge merging; the
/// poisoned state lock will still surface the failure loudly).
struct MergeFlagGuard<'a>(&'a AtomicBool);

impl Drop for MergeFlagGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl<K: Key> Shared<K> {
    /// The full merge cycle. Caller must have won the `merging` flag; it is
    /// cleared on every exit path (normal, empty-delta, failed, panicked).
    fn run_merge(&self) {
        let _flag = MergeFlagGuard(&self.merging);
        // Freeze: move the whole active delta behind the frozen pointer (an
        // O(1) handoff — no entry is copied under the lock) and start a
        // fresh active delta. Readers see the frozen entries through the
        // shared pointer for the whole rebuild.
        let (frozen, generation) = {
            let mut st = self.state.write().expect("writebehind state lock");
            debug_assert!(st.frozen.is_none(), "merge started with a frozen tier in place");
            if st.active.is_empty() {
                return;
            }
            let full = std::mem::replace(&mut st.active, (self.delta_factory)());
            let frozen: Arc<dyn DynamicOrderedIndex<K>> = Arc::from(full);
            st.frozen = Some(Arc::clone(&frozen));
            (frozen, Arc::clone(&st.generation))
        };

        // Drain and rebuild outside every lock: readers keep serving old
        // base + frozen, writers keep filling the new active delta.
        let mut snapshot = Vec::with_capacity(frozen.len());
        frozen.for_each_in(K::MIN_KEY, K::MAX_KEY, &mut |k, v| snapshot.push((k, v)));
        // `for_each_in` is half-open, so the extreme key needs one probe.
        if let Some(v) = frozen.get(K::MAX_KEY) {
            snapshot.push((K::MAX_KEY, v));
        }
        let merged = Arc::new(merge_delta_over_base(&generation.data, &snapshot));
        match (self.base_factory)(Arc::clone(&merged)) {
            Ok(engine) => {
                let next =
                    Arc::new(Generation { engine, data: merged, epoch: generation.epoch + 1 });
                // The O(1) swap: install the merged generation and clear
                // the frozen tier in one critical section, so no reader can
                // observe the drained entries in neither tier. The visible
                // count is invariant here: entries the frozen tier shadowed
                // are exactly the ones the merge collapsed.
                let mut st = self.state.write().expect("writebehind state lock");
                st.generation = next;
                st.frozen = None;
                self.merges.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                // Roll back: fold the snapshot into the active delta (newer
                // active entries win) so nothing is lost, and retry on the
                // next threshold crossing. The visible count is invariant
                // here too — the fold only restores entries the frozen tier
                // already made visible.
                let mut st = self.state.write().expect("writebehind state lock");
                for &(k, v) in snapshot.iter() {
                    if st.active.get(k).is_none() {
                        st.active.insert(k, v);
                    }
                }
                st.frozen = None;
                self.failed_merges.fetch_add(1, Ordering::Relaxed);
                eprintln!("[writebehind] merge rebuild failed, delta retained: {e}");
            }
        }
    }
}

/// A [`QueryEngine`] over an immutable base plus a bounded mutable delta,
/// with threshold-triggered merges — the write-behind serving tier.
///
/// Construction takes two factories: one that (re)builds the base engine
/// over a data array, and one that creates empty delta buffers. The base
/// factory runs at every merge, so it can build anything from a single
/// `StaticEngine` to a full `ShardedEngine`.
///
/// ```
/// use sosd_core::testutil::{MirrorIndex, VecMap};
/// use sosd_core::writebehind::{MergeMode, WriteBehindEngine};
/// use sosd_core::{QueryEngine, SortedData, StaticEngine};
/// use std::sync::Arc;
///
/// let data = Arc::new(SortedData::with_payloads(vec![10u64, 20, 30], vec![1, 2, 3]).unwrap());
/// let engine = WriteBehindEngine::new(
///     data,
///     Arc::new(|d: Arc<SortedData<u64>>| {
///         Ok(Box::new(StaticEngine::new(MirrorIndex::over(&d), d)) as Box<dyn QueryEngine<u64>>)
///     }),
///     Arc::new(|| Box::new(VecMap::new()) as _),
///     2, // merge once the delta holds two entries
///     MergeMode::Sync,
/// )
/// .unwrap();
///
/// assert_eq!(engine.insert(15, 99), None); // held in the delta
/// assert_eq!(engine.get(15), Some(99));
/// assert_eq!(engine.insert(20, 7), Some(2)); // overwrite of a base record
/// engine.wait_for_merges();
/// assert_eq!(engine.merges_completed(), 1); // threshold crossed => merged
/// assert_eq!(engine.delta_len(), 0);
/// assert_eq!(engine.range(10, 31), vec![(10, 1), (15, 99), (20, 7), (30, 3)]);
/// ```
pub struct WriteBehindEngine<K: Key> {
    shared: Arc<Shared<K>>,
    mode: MergeMode,
    /// Handle of the most recent background merge thread, joined before
    /// the next spawn and on drop.
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl<K: Key> WriteBehindEngine<K> {
    /// Build the initial base over `data` and start with an empty delta.
    ///
    /// `merge_threshold` is the active-delta entry count that triggers a
    /// merge; it must be at least 1.
    pub fn new(
        data: Arc<SortedData<K>>,
        base_factory: BaseFactory<K>,
        delta_factory: DeltaFactory<K>,
        merge_threshold: usize,
        mode: MergeMode,
    ) -> Result<Self, BuildError> {
        if merge_threshold == 0 {
            return Err(BuildError::InvalidConfig("merge threshold must be >= 1".into()));
        }
        let engine = (base_factory)(Arc::clone(&data))?;
        let visible = data.len();
        let state = State {
            generation: Arc::new(Generation { engine, data, epoch: 0 }),
            active: (delta_factory)(),
            frozen: None,
        };
        Ok(WriteBehindEngine {
            shared: Arc::new(Shared {
                state: RwLock::new(state),
                base_factory,
                delta_factory,
                merge_threshold,
                merging: AtomicBool::new(false),
                merges: AtomicU64::new(0),
                failed_merges: AtomicU64::new(0),
                visible_len: AtomicUsize::new(visible),
            }),
            mode,
            worker: Mutex::new(None),
        })
    }

    /// Insert (or overwrite) `key` in the delta, returning the previously
    /// *visible* payload — the delta entry if one existed, otherwise the
    /// base's [`QueryEngine::get`] answer (the duplicate-group sum on
    /// duplicated base keys, located directly in the generation's data
    /// array — no base index probe on the write path).
    ///
    /// Crossing the merge threshold triggers a merge: inline under
    /// [`MergeMode::Sync`], on a spawned thread under
    /// [`MergeMode::Background`] (at most one in flight; further inserts
    /// keep landing in the fresh active delta meanwhile).
    pub fn insert(&self, key: K, payload: u64) -> Option<u64> {
        let (prev, crossed) = {
            let mut st = self.shared.state.write().expect("writebehind state lock");
            let prev = match st.active.insert(key, payload).or_else(|| st.frozen_get(key)) {
                Some(v) => Some(v), // already shadowed: visibility unchanged
                None => {
                    // First shadow of this key: the base's duplicate group
                    // (if any) collapses to this one visible entry.
                    let data = &st.generation.data;
                    let start = data.lower_bound(key);
                    let prev_base = data.payload_sum_from(key, start);
                    match data.keys()[start..].iter().take_while(|&&x| x == key).count() {
                        0 => {
                            self.shared.visible_len.fetch_add(1, Ordering::Relaxed);
                        }
                        g => {
                            self.shared.visible_len.fetch_sub(g - 1, Ordering::Relaxed);
                        }
                    }
                    prev_base
                }
            };
            (prev, st.active.len() >= self.shared.merge_threshold)
        };
        if crossed {
            self.trigger_merge();
        }
        prev
    }

    /// Force a merge now (if one is not already running), regardless of
    /// the threshold. Respects the engine's [`MergeMode`].
    pub fn force_merge(&self) {
        self.trigger_merge();
    }

    /// Block until no merge is in flight (joins the background worker).
    pub fn wait_for_merges(&self) {
        if let Some(handle) = self.worker.lock().expect("worker slot").take() {
            if handle.join().is_err() {
                // The merge thread panicked (e.g. inside a user-supplied
                // factory): it never reached its flag clear, so clear it
                // here rather than spinning forever. State-lock users will
                // surface the poisoning loudly on their next access.
                self.shared.merging.store(false, Ordering::Release);
            }
        }
        while self.shared.merging.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }

    /// Number of merges completed since construction.
    pub fn merges_completed(&self) -> u64 {
        self.shared.merges.load(Ordering::Relaxed)
    }

    /// Number of merge rebuilds that failed (delta rolled back, retried on
    /// the next threshold crossing).
    pub fn failed_merges(&self) -> u64 {
        self.shared.failed_merges.load(Ordering::Relaxed)
    }

    /// True while a merge (freeze → rebuild → swap) is in flight.
    pub fn is_merging(&self) -> bool {
        self.shared.merging.load(Ordering::Acquire)
    }

    /// Entries currently buffered outside the base (active + frozen).
    pub fn delta_len(&self) -> usize {
        let st = self.shared.state.read().expect("writebehind state lock");
        st.active.len() + st.frozen.as_ref().map_or(0, |f| f.len())
    }

    /// Records in the current base generation.
    pub fn base_len(&self) -> usize {
        self.shared.state.read().expect("writebehind state lock").generation.data.len()
    }

    /// The current generation counter (0 = initial build; each completed
    /// merge increments it).
    pub fn epoch(&self) -> u64 {
        self.shared.state.read().expect("writebehind state lock").generation.epoch
    }

    /// The configured merge threshold.
    pub fn merge_threshold(&self) -> usize {
        self.shared.merge_threshold
    }

    /// Win the merge flag and run (or spawn) the merge.
    fn trigger_merge(&self) {
        if self
            .shared
            .merging
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // a merge is already in flight
        }
        match self.mode {
            MergeMode::Sync => self.shared.run_merge(),
            MergeMode::Background => {
                let mut slot = self.worker.lock().expect("worker slot");
                // The previous worker finished (we won the flag); reap it.
                // A panicked worker is reported by the join and must not
                // stop the next cycle from spawning.
                if let Some(handle) = slot.take() {
                    let _ = handle.join();
                }
                let shared = Arc::clone(&self.shared);
                *slot = Some(std::thread::spawn(move || shared.run_merge()));
            }
        }
    }
}

impl<K: Key> Drop for WriteBehindEngine<K> {
    fn drop(&mut self) {
        self.wait_for_merges();
    }
}

impl<K: Key> QueryEngine<K> for WriteBehindEngine<K> {
    fn name(&self) -> String {
        let st = self.shared.state.read().expect("writebehind state lock");
        format!("writebehind[{}+{}]", st.generation.engine.name(), st.active.name())
    }

    /// The number of visible entries: delta overwrites don't double-count,
    /// and a delta write shadowing a base duplicate group counts the group
    /// as one entry. Equals the length of a full [`QueryEngine::range`]
    /// scan, except that an entry at [`Key::MAX_KEY`] is counted here but
    /// unreachable by any half-open range (`hi` is exclusive).
    fn len(&self) -> usize {
        self.shared.visible_len.load(Ordering::Relaxed)
    }

    fn size_bytes(&self) -> usize {
        let st = self.shared.state.read().expect("writebehind state lock");
        st.generation.engine.size_bytes()
            + st.active.size_bytes()
            + st.frozen.as_ref().map_or(0, |f| f.size_bytes())
    }

    /// Delta first (a deltaed key's payload shadows the base, including any
    /// base duplicate group), then the snapshotted base generation —
    /// probed outside the state lock.
    fn get(&self, key: K) -> Option<u64> {
        let generation = {
            let st = self.shared.state.read().expect("writebehind state lock");
            if let Some(v) = st.delta_get(key) {
                return Some(v);
            }
            Arc::clone(&st.generation)
        };
        generation.engine.get(key)
    }

    fn lower_bound(&self, key: K) -> Option<(K, u64)> {
        let (delta, generation) = {
            let st = self.shared.state.read().expect("writebehind state lock");
            let active = st.active.lower_bound_entry(key);
            let frozen = st.frozen.as_ref().and_then(|f| f.lower_bound_entry(key));
            // Active wins frozen on ties (it is newer).
            let delta = match (active, frozen) {
                (Some(a), Some(f)) => Some(if f.0 < a.0 { f } else { a }),
                (a, f) => a.or(f),
            };
            (delta, Arc::clone(&st.generation))
        };
        let base = generation.engine.lower_bound(key);
        // The delta entry wins a key tie: its write shadows the base
        // record(s). A strictly smaller base key cannot be shadowed, since
        // any delta entry for it would itself be a >= key candidate.
        match (delta, base) {
            (Some(d), Some(b)) => Some(if b.0 < d.0 { b } else { d }),
            (d, b) => d.or(b),
        }
    }

    /// Two-way merge of the base range and the delta range; delta entries
    /// replace the whole base duplicate group of their key.
    fn range(&self, lo: K, hi: K) -> Vec<(K, u64)> {
        if hi <= lo {
            return Vec::new();
        }
        let (delta, generation) = {
            let st = self.shared.state.read().expect("writebehind state lock");
            (st.delta_range(lo, hi), Arc::clone(&st.generation))
        };
        let base = generation.engine.range(lo, hi);
        if delta.is_empty() {
            return base;
        }
        let mut out = Vec::with_capacity(base.len() + delta.len());
        let mut i = 0;
        for (dk, dv) in delta {
            while i < base.len() && base[i].0 < dk {
                out.push(base[i]);
                i += 1;
            }
            while i < base.len() && base[i].0 == dk {
                i += 1; // shadowed duplicate group
            }
            out.push((dk, dv));
        }
        out.extend_from_slice(&base[i..]);
        out
    }

    /// Partitioned batch execution: delta hits are answered inline under
    /// one read-lock acquisition (so the whole batch sees a single coherent
    /// delta state), and the remaining keys — the non-deltaed majority in a
    /// read-mostly workload — go to the snapshotted base's own `get_batch`,
    /// keeping its interleaved-prefetch override on the hot path.
    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) {
        if keys.is_empty() {
            return;
        }
        let start = out.len();
        out.resize(start + keys.len(), None);
        let mut base_keys = Vec::new();
        let mut base_slots = Vec::new();
        let generation = {
            let st = self.shared.state.read().expect("writebehind state lock");
            for (i, &k) in keys.iter().enumerate() {
                match st.delta_get(k) {
                    Some(v) => out[start + i] = Some(v),
                    None => {
                        base_keys.push(k);
                        base_slots.push(i);
                    }
                }
            }
            Arc::clone(&st.generation)
        };
        if base_keys.is_empty() {
            return;
        }
        let mut base_results = Vec::with_capacity(base_keys.len());
        generation.engine.get_batch(&base_keys, &mut base_results);
        for (r, &i) in base_results.iter().zip(&base_slots) {
            out[start + i] = *r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StaticEngine;
    use crate::testutil::{MirrorIndex, VecMap};
    use std::collections::BTreeMap;

    fn mirror_factory() -> BaseFactory<u64> {
        Arc::new(|d: Arc<SortedData<u64>>| {
            Ok(Box::new(StaticEngine::new(MirrorIndex::over(&d), d)) as Box<dyn QueryEngine<u64>>)
        })
    }

    fn vecmap_factory() -> DeltaFactory<u64> {
        Arc::new(|| Box::new(VecMap::new()) as Box<dyn DynamicOrderedIndex<u64>>)
    }

    fn engine(keys: Vec<u64>, threshold: usize, mode: MergeMode) -> WriteBehindEngine<u64> {
        let payloads: Vec<u64> = keys.iter().map(|&k| k.wrapping_mul(3) ^ 0xA5).collect();
        let data = Arc::new(SortedData::with_payloads(keys, payloads).unwrap());
        WriteBehindEngine::new(data, mirror_factory(), vecmap_factory(), threshold, mode).unwrap()
    }

    #[test]
    fn zero_threshold_is_rejected() {
        let data = Arc::new(SortedData::new(vec![1u64]).unwrap());
        assert!(WriteBehindEngine::new(
            data,
            mirror_factory(),
            vecmap_factory(),
            0,
            MergeMode::Sync
        )
        .is_err());
    }

    #[test]
    fn reads_merge_delta_over_base() {
        let e = engine(vec![10, 20, 30], 100, MergeMode::Sync);
        assert_eq!(e.len(), 3);
        assert_eq!(e.insert(15, 1), None);
        assert_eq!(e.insert(20, 2), Some(20u64.wrapping_mul(3) ^ 0xA5));
        assert_eq!(e.len(), 4, "overwrite of a base key must not grow len");
        assert_eq!(e.get(15), Some(1));
        assert_eq!(e.get(20), Some(2));
        assert_eq!(e.get(10), Some(10u64.wrapping_mul(3) ^ 0xA5));
        assert_eq!(e.get(11), None);
        assert_eq!(e.lower_bound(11), Some((15, 1)));
        assert_eq!(e.lower_bound(16), Some((20, 2)), "delta overwrite wins the tie");
        assert_eq!(e.range(10, 31).iter().map(|e| e.0).collect::<Vec<_>>(), vec![10, 15, 20, 30]);
        assert_eq!(e.merges_completed(), 0, "threshold not crossed");
        assert_eq!(e.epoch(), 0);
    }

    #[test]
    fn sync_merge_drains_delta_into_base() {
        let e = engine((0..100).map(|i| i * 10).collect(), 4, MergeMode::Sync);
        for k in [5u64, 15, 25, 35] {
            e.insert(k, k + 1);
        }
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.epoch(), 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.base_len(), 104);
        for k in [5u64, 15, 25, 35] {
            assert_eq!(e.get(k), Some(k + 1), "merged entry {k}");
        }
        assert_eq!(e.len(), 104);
    }

    #[test]
    fn merged_base_shadows_duplicate_groups() {
        // Base has a duplicate run at key 7; a delta overwrite must replace
        // the whole group both before and after the merge.
        let data = Arc::new(
            SortedData::with_payloads(vec![5u64, 7, 7, 7, 9], vec![1, 10, 100, 1000, 5]).unwrap(),
        );
        let e =
            WriteBehindEngine::new(data, mirror_factory(), vecmap_factory(), 10, MergeMode::Sync)
                .unwrap();
        assert_eq!(e.get(7), Some(1110), "duplicate sum before any write");
        assert_eq!(e.insert(7, 42), Some(1110), "prior visible payload is the group sum");
        assert_eq!(e.get(7), Some(42));
        assert_eq!(e.len(), 3, "the shadowed group collapses to one visible entry");
        assert_eq!(e.range(5, 10), vec![(5, 1), (7, 42), (9, 5)]);
        assert_eq!(e.range(5, 10).len(), e.len(), "len matches a full scan");
        e.force_merge();
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.base_len(), 3, "merge collapsed the shadowed group");
        assert_eq!(e.get(7), Some(42));
        assert_eq!(e.range(5, 10), vec![(5, 1), (7, 42), (9, 5)]);
    }

    #[test]
    fn max_key_entries_survive_the_merge_drain() {
        let e = engine(vec![10, 20], 100, MergeMode::Sync);
        e.insert(u64::MAX, 77);
        e.force_merge();
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.get(u64::MAX), Some(77));
        assert_eq!(e.lower_bound(u64::MAX), Some((u64::MAX, 77)));
    }

    #[test]
    fn batch_partitions_between_delta_and_base() {
        let e = engine((0..1000).map(|i| i * 2).collect(), 1_000_000, MergeMode::Sync);
        for k in (1..200u64).step_by(2) {
            e.insert(k, k * 100);
        }
        let probes: Vec<u64> = (0..400u64).collect();
        let batched = e.lookup_batch(&probes);
        for (&p, got) in probes.iter().zip(&batched) {
            assert_eq!(*got, e.get(p), "batch diverges from get at {p}");
        }
    }

    #[test]
    fn oracle_interleaved_with_forced_merges() {
        let base_keys: Vec<u64> = (0..500).map(|i| i * 7).collect();
        let e = engine(base_keys.clone(), 64, MergeMode::Sync);
        let mut oracle: BTreeMap<u64, u64> =
            base_keys.iter().map(|&k| (k, k.wrapping_mul(3) ^ 0xA5)).collect();
        let mut x = 12345u64;
        for step in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 4_000;
            let v = x >> 32;
            assert_eq!(e.insert(k, v), oracle.insert(k, v), "insert {k} at step {step}");
            if step % 97 == 0 {
                let probe = (x >> 16) % 4_100;
                assert_eq!(e.get(probe), oracle.get(&probe).copied(), "get {probe}");
                let lo = probe.saturating_sub(300);
                let want: Vec<(u64, u64)> =
                    oracle.range(lo..probe).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(e.range(lo, probe), want, "range [{lo}, {probe})");
            }
        }
        assert!(e.merges_completed() >= 3, "expected several merge cycles");
        assert_eq!(e.len(), oracle.len());
        let all: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(e.range(0, u64::MAX), all);
    }

    #[test]
    fn background_merges_complete_and_agree_with_oracle() {
        let e = engine((0..200).map(|i| i * 5).collect(), 32, MergeMode::Background);
        let mut oracle: BTreeMap<u64, u64> =
            (0..200u64).map(|i| (i * 5, (i * 5).wrapping_mul(3) ^ 0xA5)).collect();
        for round in 0..4u64 {
            for j in 0..40u64 {
                let k = round * 1_000 + j * 3 + 1;
                assert_eq!(e.insert(k, k), oracle.insert(k, k));
            }
            e.wait_for_merges();
        }
        assert!(e.merges_completed() >= 3, "got {}", e.merges_completed());
        assert_eq!(e.delta_len(), 0);
        for (&k, &v) in &oracle {
            assert_eq!(e.get(k), Some(v), "key {k}");
        }
        assert_eq!(e.len(), oracle.len());
    }

    #[test]
    fn failed_rebuild_rolls_the_delta_back() {
        use std::sync::atomic::AtomicU32;
        let fail_after = Arc::new(AtomicU32::new(1));
        let fa = Arc::clone(&fail_after);
        let factory: BaseFactory<u64> = Arc::new(move |d: Arc<SortedData<u64>>| {
            if fa.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1)).is_err() {
                return Err(BuildError::InvalidConfig("injected".into()));
            }
            Ok(Box::new(StaticEngine::new(MirrorIndex::over(&d), d)) as Box<dyn QueryEngine<u64>>)
        });
        let data = Arc::new(SortedData::new(vec![10u64, 20, 30]).unwrap());
        let e =
            WriteBehindEngine::new(data, factory, vecmap_factory(), 100, MergeMode::Sync).unwrap();
        e.insert(15, 1);
        e.insert(25, 2);
        e.force_merge(); // rebuild fails: budget of 1 was spent at construction
        assert_eq!(e.failed_merges(), 1);
        assert_eq!(e.merges_completed(), 0);
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.get(15), Some(1), "rolled-back entry still visible");
        assert_eq!(e.get(25), Some(2));
        assert_eq!(e.delta_len(), 2);
        // Allow the next rebuild: the retry succeeds and drains the delta.
        fail_after.store(1, Ordering::SeqCst);
        e.force_merge();
        assert_eq!(e.merges_completed(), 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.get(15), Some(1));
    }

    #[test]
    fn metadata_reflects_both_tiers() {
        let e = engine(vec![1, 2, 3], 100, MergeMode::Sync);
        assert!(e.name().starts_with("writebehind[Mirror+"));
        assert_eq!(e.merge_threshold(), 100);
        let before = e.size_bytes();
        for k in 10..200u64 {
            e.insert(k, k);
        }
        assert!(e.size_bytes() > before, "delta growth must show in size_bytes");
        assert!(!e.is_merging());
    }
}
