//! Index-quality statistics: the paper's log2-error metric (Figures 12/13)
//! and Pareto-front extraction (Figure 7).

use crate::data::SortedData;
use crate::index::Index;
use crate::key::Key;

/// Summary of an index's search-bound quality over a probe set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Log2ErrorStats {
    /// Mean of `log2(bound size)` — the expected binary-search steps, the
    /// paper's "log2 error".
    pub mean_log2: f64,
    /// Worst-case `log2(bound size)` observed.
    pub max_log2: f64,
    /// Mean bound width in positions.
    pub mean_bound_len: f64,
}

/// Measure bound quality of `index` over `probes`, asserting validity
/// (in debug builds) against the ground-truth lower bound.
pub fn log2_error_stats<K: Key, I: Index<K> + ?Sized>(
    index: &I,
    data: &SortedData<K>,
    probes: &[K],
) -> Log2ErrorStats {
    assert!(!probes.is_empty(), "need at least one probe key");
    let mut sum_log2 = 0.0f64;
    let mut max_log2 = 0.0f64;
    let mut sum_len = 0.0f64;
    for &x in probes {
        let b = index.search_bound(x);
        debug_assert!(
            b.contains(data.lower_bound(x)),
            "{} produced invalid bound {:?} for key {} (LB={})",
            index.name(),
            b,
            x,
            data.lower_bound(x)
        );
        let l2 = b.log2_len();
        sum_log2 += l2;
        max_log2 = max_log2.max(l2);
        sum_len += b.len() as f64;
    }
    let n = probes.len() as f64;
    Log2ErrorStats { mean_log2: sum_log2 / n, max_log2, mean_bound_len: sum_len / n }
}

/// Indices of the Pareto-optimal points when minimizing both coordinates
/// (size, lookup time). Output is sorted by the first coordinate.
///
/// A point is Pareto optimal if no other point is `<=` in both coordinates
/// and `<` in at least one.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a].0.total_cmp(&points[b].0).then(points[a].1.total_cmp(&points[b].1))
    });
    let mut front = Vec::new();
    let mut best_y = f64::INFINITY;
    for i in order {
        let (_, y) = points[i];
        if y < best_y {
            front.push(i);
            best_y = y;
        }
    }
    front
}

/// Basic summary of a sample: mean and population standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Compute mean and population standard deviation of a sample.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty());
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Summary { mean, std_dev: var.sqrt() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::SearchBound;
    use crate::index::{Capabilities, IndexKind};

    struct FixedWidth {
        w: usize,
        n: usize,
    }

    impl Index<u64> for FixedWidth {
        fn name(&self) -> &'static str {
            "FixedWidth"
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn search_bound(&self, key: u64) -> SearchBound {
            // Center a window of width w on the true position.
            let est = key as usize / 2; // keys are 2*i in the test data
            SearchBound::from_estimate(est, self.w / 2, self.w / 2, self.n)
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities { updates: false, ordered: true, kind: IndexKind::Learned }
        }
    }

    #[test]
    fn log2_stats_reflect_bound_width() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = FixedWidth { w: 64, n: 1000 };
        let probes: Vec<u64> = (100..900).map(|i| i * 2).collect();
        let s = log2_error_stats(&idx, &data, &probes);
        assert!((s.mean_log2 - 6.0).abs() < 0.1, "mean_log2 = {}", s.mean_log2);
        assert!((s.mean_bound_len - 64.0).abs() < 1.0);
    }

    #[test]
    fn pareto_front_filters_dominated_points() {
        // (size, time)
        let pts = vec![
            (1.0, 10.0), // optimal
            (2.0, 9.0),  // optimal
            (2.5, 9.5),  // dominated by (2.0, 9.0)
            (3.0, 5.0),  // optimal
            (4.0, 5.0),  // dominated (same time, bigger)
            (5.0, 1.0),  // optimal
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 3, 5]);
    }

    #[test]
    fn pareto_front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn pareto_front_handles_duplicates() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn summarize_basics() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }
}
