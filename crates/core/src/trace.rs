//! Execution tracing: the interface between index lookups and the
//! hardware-counter simulator in `sosd-perfsim`.
//!
//! The paper explains index performance with three hardware counters — cache
//! misses, branch mispredictions, and instruction counts (Section 4.3). We
//! reproduce those counters with a simulator instead of `perf`, so each index
//! exposes a *traced* lookup path that reports every memory read, conditional
//! branch, and an instruction-count estimate to a [`Tracer`].

/// Sink for execution events emitted by traced lookups.
///
/// Addresses are real in-memory addresses of the index structures, so cache
/// behaviour in the simulator reflects the actual data layout.
pub trait Tracer {
    /// A data read of `bytes` bytes starting at `addr`.
    fn read(&mut self, addr: usize, bytes: usize);
    /// A conditional branch at call site `site` that was `taken` or not.
    fn branch(&mut self, site: usize, taken: bool);
    /// `count` straight-line instructions retired.
    fn instr(&mut self, count: u64);
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn read(&mut self, addr: usize, bytes: usize) {
        (**self).read(addr, bytes)
    }
    #[inline]
    fn branch(&mut self, site: usize, taken: bool) {
        (**self).branch(site, taken)
    }
    #[inline]
    fn instr(&mut self, count: u64) {
        (**self).instr(count)
    }
}

/// A tracer that discards all events (the cost-free default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn read(&mut self, _addr: usize, _bytes: usize) {}
    #[inline]
    fn branch(&mut self, _site: usize, _taken: bool) {}
    #[inline]
    fn instr(&mut self, _count: u64) {}
}

/// A tracer that simply counts events, with no cache or predictor model.
/// Useful in tests to assert that traced paths actually emit events.
#[derive(Debug, Default, Clone)]
pub struct CountingTracer {
    /// Number of `read` events.
    pub reads: u64,
    /// Total bytes across all reads.
    pub bytes_read: u64,
    /// Number of `branch` events.
    pub branches: u64,
    /// Number of taken branches.
    pub taken: u64,
    /// Total instruction count.
    pub instructions: u64,
}

impl Tracer for CountingTracer {
    #[inline]
    fn read(&mut self, _addr: usize, bytes: usize) {
        self.reads += 1;
        self.bytes_read += bytes as u64;
    }

    #[inline]
    fn branch(&mut self, _site: usize, taken: bool) {
        self.branches += 1;
        if taken {
            self.taken += 1;
        }
    }

    #[inline]
    fn instr(&mut self, count: u64) {
        self.instructions += count;
    }
}

/// Helper: the address of a slice element, for emitting `read` events.
#[inline]
pub fn addr_of_index<T>(slice: &[T], i: usize) -> usize {
    debug_assert!(i < slice.len());
    slice.as_ptr() as usize + i * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        t.read(0x1000, 8);
        t.read(0x2000, 4);
        t.branch(1, true);
        t.branch(2, false);
        t.instr(10);
        assert_eq!(t.reads, 2);
        assert_eq!(t.bytes_read, 12);
        assert_eq!(t.branches, 2);
        assert_eq!(t.taken, 1);
        assert_eq!(t.instructions, 10);
    }

    #[test]
    fn addr_of_index_strides_by_element_size() {
        let v = [1u64, 2, 3];
        let base = v.as_ptr() as usize;
        assert_eq!(addr_of_index(&v, 0), base);
        assert_eq!(addr_of_index(&v, 2), base + 16);
    }
}
