//! Small shared utilities: deterministic mixing and payload generation.

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
///
/// Used for deterministic payload generation and as the hash function of the
/// hash-table baselines (it passes the usual avalanche tests and is what the
/// original SOSD harness effectively relies on for integer hashing).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A tiny deterministic PRNG (xorshift64*), used where pulling in `rand`
/// would be overkill (payloads, tie-breaking). Not cryptographic.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator; a zero seed is remapped to a fixed constant since
    /// xorshift has an all-zeroes fixed point.
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x853C_49E6_748F_EA9B } else { seed } }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // benchmark workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Consecutive inputs should differ in roughly half their bits.
        let d = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(d > 16 && d < 48, "poor avalanche: {d} bits");
    }

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut a = XorShift64::new(0);
        assert_ne!(a.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
