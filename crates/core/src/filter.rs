//! Per-run membership filters for the write-behind run stack.
//!
//! A leveled stack pays one engine probe per run on negative or cold keys:
//! key-range pruning cannot reject a point probe that lands inside every
//! run's fence range. The filters here answer "might this run contain the
//! key?" in a handful of cache-line touches, letting the read path skip
//! runs that provably lack the key. Two designs are selectable per
//! [`crate::writebehind::MergePolicy`]:
//!
//! * [`BlockedBloom`] — a blocked Bloom filter. One 64-byte block per
//!   ~51 keys (~10 bits/key), all probe bits of a key land in a single
//!   block, so a negative query costs one cache line. False-positive
//!   rate is ~1% at the default sizing.
//! * [`FenceBits`] — a bit array over equi-width buckets of the run's
//!   key span. Cheaper to build and byte-addressable, but degrades on
//!   skewed key spans; useful when keys are densely clustered.
//!
//! Both are *approximate* on the positive side and *exact* on the
//! negative side: `may_contain` may return `true` for an absent key
//! (false positive, costs one wasted probe) but never returns `false`
//! for a present key (a false negative would silently drop data).
//! Filters index every key frozen into the run **including tombstones**:
//! a probe must still find the tombstone so it can shadow older tiers.
//!
//! Filters are derived state, like learned models: rebuildable from the
//! run's key column at any time, and persisted in the spool snapshot as
//! an optional checksummed section purely so cold re-opens skip the
//! rebuild.

/// Which per-run filter a leveled policy builds at freeze time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FilterKind {
    /// No filter: every in-range probe hits the run's engine.
    None,
    /// Blocked Bloom filter (default): ~10 bits/key, one cache line per query.
    #[default]
    Bloom,
    /// Fence-bit array: equi-width bucket occupancy bits over the key span.
    Fence,
}

impl FilterKind {
    /// Stable token used in registry JSON and snapshot headers.
    pub fn token(self) -> &'static str {
        match self {
            FilterKind::None => "none",
            FilterKind::Bloom => "bloom",
            FilterKind::Fence => "fence",
        }
    }

    /// Inverse of [`FilterKind::token`].
    pub fn from_token(tok: &str) -> Option<FilterKind> {
        match tok {
            "none" => Some(FilterKind::None),
            "bloom" => Some(FilterKind::Bloom),
            "fence" => Some(FilterKind::Fence),
            _ => None,
        }
    }

    /// Numeric code stored in the snapshot header's FILTER_KIND field.
    pub fn code(self) -> u32 {
        match self {
            FilterKind::None => 0,
            FilterKind::Bloom => 1,
            FilterKind::Fence => 2,
        }
    }

    /// Inverse of [`FilterKind::code`].
    pub fn from_code(code: u32) -> Option<FilterKind> {
        match code {
            0 => Some(FilterKind::None),
            1 => Some(FilterKind::Bloom),
            2 => Some(FilterKind::Fence),
            _ => None,
        }
    }
}

/// 64-byte Bloom block: 512 bits, all probe bits of a key land in one
/// 64-bit word of it.
const BLOCK_WORDS: usize = 8;
const BLOCK_BITS: u64 = (BLOCK_WORDS * 64) as u64;
/// Probe bits per key, all set in a single word of the block so a
/// membership test is one load and one mask compare.
const BLOOM_PROBES: usize = 3;
/// Filter sizing: bits budgeted per indexed key.
const BLOOM_BITS_PER_KEY: usize = 10;

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fast-range block selection: maps a full-width hash onto `0..n_blocks`
/// with one widening multiply — no per-probe integer division.
#[inline]
fn block_of(h: u64, n_blocks: usize) -> usize {
    (((h as u128) * (n_blocks as u128)) >> 64) as usize
}

/// The word-within-block index and `BLOOM_PROBES`-bit probe mask for
/// one key, derived from non-overlapping windows of a second hash.
#[inline]
fn probe_word_mask(h: u64) -> (usize, u64) {
    let bits = splitmix64(h);
    let word = (bits & (BLOCK_WORDS as u64 - 1)) as usize;
    let mut mask = 0u64;
    for i in 0..BLOOM_PROBES {
        mask |= 1u64 << ((bits >> (3 + 6 * i)) & 63);
    }
    (word, mask)
}

/// One lookup key's precomputed filter probe. The hash work depends only
/// on the key, not the filter — an N-run stack consults N filters per
/// lookup, and sharing the probe makes that one hash, not N. A Bloom
/// consult against a prepared probe is one fast-range multiply, one
/// word load, and one mask compare.
#[derive(Debug, Clone, Copy)]
pub struct FilterProbe {
    key: u64,
    h: u64,
    word: usize,
    mask: u64,
}

impl FilterProbe {
    /// Hash `key` once for any number of filter consultations.
    #[inline]
    pub fn new(key: u64) -> FilterProbe {
        let h = splitmix64(key);
        let (word, mask) = probe_word_mask(h);
        FilterProbe { key, h, word, mask }
    }
}

/// Blocked Bloom filter over `u64` key images.
///
/// One hash picks a block (fast-range multiply); a second picks one
/// 64-bit word of it and a `BLOOM_PROBES`-bit mask inside that word.
/// Construction is a single pass over the key column; a membership test
/// is one cache-line touch, one load, and one mask compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedBloom {
    blocks: Vec<[u64; BLOCK_WORDS]>,
}

impl BlockedBloom {
    /// Build from an iterator of key images; one pass, no sorting required.
    pub fn build(keys: impl Iterator<Item = u64>, n_hint: usize) -> BlockedBloom {
        let n_blocks = (n_hint.max(1) * BLOOM_BITS_PER_KEY).div_ceil(BLOCK_BITS as usize).max(1);
        let mut blocks = vec![[0u64; BLOCK_WORDS]; n_blocks];
        for key in keys {
            let h = splitmix64(key);
            let (word, mask) = probe_word_mask(h);
            blocks[block_of(h, n_blocks)][word] |= mask;
        }
        BlockedBloom { blocks }
    }

    /// `false` means the key is definitely absent from the indexed set.
    #[inline]
    pub fn may_contain(&self, key: u64) -> bool {
        self.may_contain_probe(&FilterProbe::new(key))
    }

    /// [`BlockedBloom::may_contain`] with the hash work already done.
    #[inline]
    pub fn may_contain_probe(&self, p: &FilterProbe) -> bool {
        self.blocks[block_of(p.h, self.blocks.len())][p.word] & p.mask == p.mask
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.blocks.len() * 64);
        out.extend_from_slice(&(self.blocks.len() as u64).to_le_bytes());
        for block in &self.blocks {
            for word in block {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        out
    }

    fn from_bytes(bytes: &[u8]) -> Option<BlockedBloom> {
        let n = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
        if n == 0 || bytes.len() != 8 + n * BLOCK_WORDS * 8 {
            return None;
        }
        let mut blocks = vec![[0u64; BLOCK_WORDS]; n];
        for (i, chunk) in bytes[8..].chunks_exact(8).enumerate() {
            blocks[i / BLOCK_WORDS][i % BLOCK_WORDS] = u64::from_le_bytes(chunk.try_into().ok()?);
        }
        Some(BlockedBloom { blocks })
    }
}

/// Default fence-bit resolution: buckets per indexed key.
const FENCE_BITS_PER_KEY: usize = 4;

/// Fence-bit array: one occupancy bit per equi-width bucket of the run's
/// `[min, max]` key span. A key maps to `(key - min) * n / span`; an unset
/// bucket proves no key of the run lands there. Unlike a Bloom filter it
/// can also answer *range* emptiness (`may_contain_from`), which lets
/// `lower_bound` skip runs whose tail past the probe is provably empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenceBits {
    min: u64,
    max: u64,
    n_buckets: u64,
    words: Vec<u64>,
}

impl FenceBits {
    /// Build from key images; `min`/`max` must bound every key.
    pub fn build(keys: impl Iterator<Item = u64>, n_hint: usize) -> FenceBits {
        let keys: Vec<u64> = keys.collect();
        let (min, max) = keys.iter().fold((u64::MAX, 0u64), |(lo, hi), &k| (lo.min(k), hi.max(k)));
        let (min, max) = if keys.is_empty() { (0, 0) } else { (min, max) };
        let n_buckets = (n_hint.max(1) * FENCE_BITS_PER_KEY).max(1) as u64;
        let mut fence =
            FenceBits { min, max, n_buckets, words: vec![0u64; (n_buckets as usize).div_ceil(64)] };
        for &k in &keys {
            let b = fence.bucket(k);
            fence.words[(b / 64) as usize] |= 1u64 << (b % 64);
        }
        fence
    }

    fn bucket(&self, key: u64) -> u64 {
        let span = (self.max - self.min) as u128 + 1;
        let off = (key - self.min) as u128;
        ((off * self.n_buckets as u128 / span) as u64).min(self.n_buckets - 1)
    }

    /// `false` means the key is definitely absent from the indexed set.
    #[inline]
    pub fn may_contain(&self, key: u64) -> bool {
        if key < self.min || key > self.max {
            return false;
        }
        let b = self.bucket(key);
        self.words[(b / 64) as usize] & (1u64 << (b % 64)) != 0
    }

    /// `false` means no indexed key is `>= lo` — sound pruning for
    /// `lower_bound` probes.
    pub fn may_contain_from(&self, lo: u64) -> bool {
        if lo <= self.min {
            return true;
        }
        if lo > self.max {
            return false;
        }
        let start = self.bucket(lo);
        let mut w = (start / 64) as usize;
        let mut mask = !0u64 << (start % 64);
        while w < self.words.len() {
            if self.words[w] & mask != 0 {
                return true;
            }
            mask = !0u64;
            w += 1;
        }
        false
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.words.len() * 8);
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.extend_from_slice(&self.n_buckets.to_le_bytes());
        for word in &self.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn from_bytes(bytes: &[u8]) -> Option<FenceBits> {
        let min = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
        let max = u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?);
        let n_buckets = u64::from_le_bytes(bytes.get(16..24)?.try_into().ok()?);
        let n_words = (n_buckets as usize).div_ceil(64);
        if n_buckets == 0 || min > max || bytes.len() != 24 + n_words * 8 {
            return None;
        }
        let mut words = vec![0u64; n_words];
        for (i, chunk) in bytes[24..].chunks_exact(8).enumerate() {
            words[i] = u64::from_le_bytes(chunk.try_into().ok()?);
        }
        Some(FenceBits { min, max, n_buckets, words })
    }
}

/// A built per-run filter of whichever kind the policy selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunFilter {
    /// Pass-through: admits every key (policy opted out of filtering).
    None,
    /// Register-blocked Bloom filter — point-probe pruning.
    Bloom(BlockedBloom),
    /// Bucketed fence bits over the key range — prunes range probes too.
    Fence(FenceBits),
}

impl RunFilter {
    /// Build a filter of `kind` over the key images of one frozen run.
    /// Tombstoned keys must be included by the caller.
    pub fn build(kind: FilterKind, keys: impl Iterator<Item = u64>, n: usize) -> RunFilter {
        match kind {
            FilterKind::None => RunFilter::None,
            FilterKind::Bloom => RunFilter::Bloom(BlockedBloom::build(keys, n)),
            FilterKind::Fence => RunFilter::Fence(FenceBits::build(keys, n)),
        }
    }

    /// Which kind this filter is (for snapshot headers).
    pub fn kind(&self) -> FilterKind {
        match self {
            RunFilter::None => FilterKind::None,
            RunFilter::Bloom(_) => FilterKind::Bloom,
            RunFilter::Fence(_) => FilterKind::Fence,
        }
    }

    /// `false` proves the key is absent; `true` means "probe the run".
    #[inline]
    pub fn may_contain(&self, key: u64) -> bool {
        self.may_contain_probe(&FilterProbe::new(key))
    }

    /// [`RunFilter::may_contain`] against a precomputed [`FilterProbe`] —
    /// the read loops hash each lookup key once and consult every run's
    /// filter with the same probe.
    #[inline]
    pub fn may_contain_probe(&self, p: &FilterProbe) -> bool {
        match self {
            RunFilter::None => true,
            RunFilter::Bloom(b) => b.may_contain_probe(p),
            RunFilter::Fence(f) => f.may_contain(p.key),
        }
    }

    /// `false` proves no key `>= lo` exists. Only fence filters can
    /// answer this; Bloom filters conservatively admit the probe.
    #[inline]
    pub fn may_contain_from(&self, lo: u64) -> bool {
        match self {
            RunFilter::Fence(f) => f.may_contain_from(lo),
            _ => true,
        }
    }

    /// Serialized payload for the snapshot's optional filter section.
    /// [`RunFilter::None`] has no payload and is not persisted.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            RunFilter::None => Vec::new(),
            RunFilter::Bloom(b) => b.to_bytes(),
            RunFilter::Fence(f) => f.to_bytes(),
        }
    }

    /// Inverse of [`RunFilter::to_bytes`]; `None` on a malformed payload.
    pub fn from_bytes(kind: FilterKind, bytes: &[u8]) -> Option<RunFilter> {
        match kind {
            FilterKind::None => Some(RunFilter::None),
            FilterKind::Bloom => BlockedBloom::from_bytes(bytes).map(RunFilter::Bloom),
            FilterKind::Fence => FenceBits::from_bytes(bytes).map(RunFilter::Fence),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| i.wrapping_mul(2654435761) % (n * 16)).collect()
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let keys = sample_keys(5_000);
        let f = BlockedBloom::build(keys.iter().copied(), keys.len());
        for &k in &keys {
            assert!(f.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_low() {
        let keys = sample_keys(5_000);
        let f = BlockedBloom::build(keys.iter().copied(), keys.len());
        let present: std::collections::HashSet<u64> = keys.iter().copied().collect();
        let mut fp = 0usize;
        let mut probes = 0usize;
        for i in 0..50_000u64 {
            let k = 1_000_000_000 + i * 7;
            if present.contains(&k) {
                continue;
            }
            probes += 1;
            if f.may_contain(k) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.05, "bloom FP rate {rate} too high");
    }

    #[test]
    fn fence_has_no_false_negatives_and_prunes_gaps() {
        let keys: Vec<u64> = (0..1_000u64).map(|i| i * 1_000).collect();
        let f = FenceBits::build(keys.iter().copied(), keys.len());
        for &k in &keys {
            assert!(f.may_contain(k), "false negative for {k}");
        }
        // Out-of-span probes are always rejected.
        assert!(!f.may_contain(keys.last().unwrap() + 1));
        // Range form: nothing at or past max+1, everything from 0.
        assert!(!f.may_contain_from(keys.last().unwrap() + 1));
        assert!(f.may_contain_from(0));
        assert!(f.may_contain_from(*keys.last().unwrap()));
    }

    #[test]
    fn fence_range_probe_matches_exhaustive_scan() {
        let keys: Vec<u64> = vec![10, 11, 500, 501, 90_000];
        let f = FenceBits::build(keys.iter().copied(), keys.len());
        for lo in [0u64, 9, 10, 12, 499, 502, 89_999, 90_000, 90_001] {
            let truth = keys.iter().any(|&k| k >= lo);
            if !truth {
                assert!(!f.may_contain_from(lo), "fence admitted empty tail from {lo}");
            } else {
                // The filter may conservatively admit, but must never
                // reject a non-empty tail.
                assert!(f.may_contain_from(lo), "fence rejected non-empty tail from {lo}");
            }
        }
    }

    #[test]
    fn filters_round_trip_through_bytes() {
        let keys = sample_keys(2_000);
        for kind in [FilterKind::Bloom, FilterKind::Fence] {
            let f = RunFilter::build(kind, keys.iter().copied(), keys.len());
            let bytes = f.to_bytes();
            let back = RunFilter::from_bytes(kind, &bytes).expect("round trip");
            assert_eq!(f, back, "{kind:?} did not round-trip");
        }
        assert_eq!(RunFilter::from_bytes(FilterKind::None, &[]), Some(RunFilter::None));
    }

    #[test]
    fn malformed_filter_bytes_are_rejected() {
        let keys = sample_keys(100);
        for kind in [FilterKind::Bloom, FilterKind::Fence] {
            let mut bytes = RunFilter::build(kind, keys.iter().copied(), keys.len()).to_bytes();
            bytes.pop();
            assert!(RunFilter::from_bytes(kind, &bytes).is_none(), "{kind:?} truncated");
            assert!(RunFilter::from_bytes(kind, &[]).is_none(), "{kind:?} empty");
        }
    }

    #[test]
    fn kind_tokens_and_codes_round_trip() {
        for kind in [FilterKind::None, FilterKind::Bloom, FilterKind::Fence] {
            assert_eq!(FilterKind::from_token(kind.token()), Some(kind));
            assert_eq!(FilterKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(FilterKind::from_token("weird"), None);
        assert_eq!(FilterKind::from_code(9), None);
    }

    #[test]
    fn single_key_and_empty_edge_cases() {
        let one = RunFilter::build(FilterKind::Fence, std::iter::once(42), 1);
        assert!(one.may_contain(42));
        assert!(!one.may_contain(43));
        assert!(one.may_contain_from(42));
        assert!(!one.may_contain_from(43));
        let bloom_one = RunFilter::build(FilterKind::Bloom, std::iter::once(42), 1);
        assert!(bloom_one.may_contain(42));
    }
}
