//! Error types for data validation and index construction.

use std::fmt;

/// Errors raised when constructing a [`crate::SortedData`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// The key array was empty.
    Empty,
    /// The key array was not sorted in non-decreasing order; the payload is
    /// the first offending position.
    Unsorted(usize),
    /// Keys and payloads had different lengths.
    LengthMismatch {
        /// Number of keys provided.
        keys: usize,
        /// Number of payloads provided.
        payloads: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Empty => write!(f, "dataset must contain at least one key"),
            DataError::Unsorted(i) => {
                write!(f, "keys are not sorted: position {i} is smaller than its predecessor")
            }
            DataError::LengthMismatch { keys, payloads } => {
                write!(f, "{keys} keys but {payloads} payloads")
            }
        }
    }
}

impl std::error::Error for DataError {}

/// Errors raised by [`crate::IndexBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The input data was rejected.
    Data(DataError),
    /// A configuration parameter was out of range.
    InvalidConfig(String),
    /// The builder cannot represent this dataset (e.g. a cuckoo table that
    /// failed to place all keys after the retry limit).
    Unbuildable(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Data(e) => write!(f, "invalid data: {e}"),
            BuildError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BuildError::Unbuildable(msg) => write!(f, "index cannot be built: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<DataError> for BuildError {
    fn from(e: DataError) -> Self {
        BuildError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DataError::Empty.to_string().contains("at least one"));
        assert!(DataError::Unsorted(7).to_string().contains('7'));
        let e = BuildError::InvalidConfig("radix bits must be > 0".into());
        assert!(e.to_string().contains("radix bits"));
    }

    #[test]
    fn data_error_converts_to_build_error() {
        let b: BuildError = DataError::Empty.into();
        assert_eq!(b, BuildError::Data(DataError::Empty));
    }
}
