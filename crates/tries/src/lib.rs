//! # sosd-tries
//!
//! The string-oriented baselines of Figure 8: FST (the Fast Succinct Trie of
//! SuRF, Zhang et al., SIGMOD 2018) and Wormhole (Wu, Ni, Jiang, EuroSys
//! 2019).
//!
//! Both structures are designed for variable-length string keys where a key
//! comparison is expensive; on fixed-width integers their per-byte traversal
//! machinery becomes pure overhead, which is exactly the paper's Figure 8
//! result (neither beats plain binary search on integer keys).
//!
//! * [`fst`]: a LOUDS-sparse succinct trie over big-endian key bytes, built
//!   on the `sosd-succinct` rank/select bit vectors.
//! * [`wormhole`]: a hash-accelerated anchor trie — sorted leaf nodes of
//!   ~64 keys, with a MetaTrieHash mapping every anchor prefix to a leaf
//!   range so the right leaf is found by binary search over *prefix length*
//!   (hash probes) instead of over keys.

pub mod fst;
pub mod wormhole;

pub use fst::{FstBuilder, FstIndex};
pub use wormhole::{WormholeBuilder, WormholeIndex};
