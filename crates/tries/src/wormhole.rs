//! Wormhole: a hash-accelerated ordered index (Wu, Ni, Jiang, EuroSys 2019).
//!
//! Keys live in sorted leaf nodes of ~64 entries. Each leaf has an *anchor*
//! — the shortest key prefix separating it from its left neighbour — and a
//! MetaTrieHash maps every anchor prefix to the range of leaves below it.
//! A lookup binary-searches over *prefix length* (hash probes, O(log L))
//! instead of over keys, then resolves the exact leaf among the few anchors
//! in the matched range. Designed for long string keys; on fixed 8-byte
//! integers the hashing machinery is overhead, per Figure 8.

use sosd_core::stride::Stride;
use sosd_core::trace::addr_of_index;
use sosd_core::util::splitmix64;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// Keys per leaf node.
const LEAF_SIZE: usize = 64;

/// One MetaTrieHash entry: an anchor prefix and its leaf range.
#[derive(Debug, Clone, Copy)]
struct HashEntry {
    /// Prefix bytes left-aligned in a u64 (numeric padded form).
    prefix: u64,
    /// Prefix length in bytes; `u8::MAX` marks an empty slot.
    len: u8,
    min_leaf: u32,
    max_leaf: u32,
}

const EMPTY: u8 = u8::MAX;

/// Open-addressing table keyed by (prefix, len).
#[derive(Debug, Clone)]
struct MetaTrieHash {
    slots: Vec<HashEntry>,
    mask: usize,
}

impl MetaTrieHash {
    fn with_capacity(entries: usize) -> Self {
        let cap = (entries * 2).next_power_of_two().max(8);
        MetaTrieHash {
            slots: vec![HashEntry { prefix: 0, len: EMPTY, min_leaf: 0, max_leaf: 0 }; cap],
            mask: cap - 1,
        }
    }

    #[inline]
    fn hash(prefix: u64, len: u8) -> usize {
        splitmix64(prefix ^ ((len as u64) << 56).rotate_left(17)) as usize
    }

    fn upsert(&mut self, prefix: u64, len: u8, leaf: u32) {
        let mut i = Self::hash(prefix, len) & self.mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.len == EMPTY {
                *slot = HashEntry { prefix, len, min_leaf: leaf, max_leaf: leaf };
                return;
            }
            if slot.len == len && slot.prefix == prefix {
                slot.min_leaf = slot.min_leaf.min(leaf);
                slot.max_leaf = slot.max_leaf.max(leaf);
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn get<T: Tracer>(&self, prefix: u64, len: u8, tracer: &mut T) -> Option<(u32, u32)> {
        let mut i = Self::hash(prefix, len) & self.mask;
        tracer.instr(6);
        loop {
            tracer.read(addr_of_index(&self.slots, i), std::mem::size_of::<HashEntry>());
            let slot = &self.slots[i];
            if slot.len == EMPTY {
                return None;
            }
            if slot.len == len && slot.prefix == prefix {
                return Some((slot.min_leaf, slot.max_leaf));
            }
            i = (i + 1) & self.mask;
        }
    }

    fn size_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<HashEntry>()
    }
}

/// The Wormhole index over every `stride`-th key.
pub struct WormholeIndex<K: Key> {
    /// Anchor of each leaf in numeric padded form (`anchors[0] == 0`).
    anchors: Vec<u64>,
    /// Leaf key storage: all sampled keys, chunked by [`LEAF_SIZE`].
    keys: Vec<u64>,
    /// Slot of each stored key (keep-last under duplicates).
    slots: Vec<u32>,
    table: MetaTrieHash,
    geometry: Stride,
    key_len: usize,
    _marker: std::marker::PhantomData<K>,
}

/// Truncate a padded key to its first `len` bytes (zeroing the rest).
#[inline]
fn prefix_of(padded: u64, len: u8) -> u64 {
    if len == 0 {
        0
    } else if len >= 8 {
        padded
    } else {
        padded & !(u64::MAX >> (len * 8))
    }
}

impl<K: Key> WormholeIndex<K> {
    /// Build with the given sampling stride.
    pub fn build(data: &SortedData<K>, stride: usize) -> Result<Self, BuildError> {
        let geometry = Stride::new(stride, data.len());
        let sampled = geometry.sample(data.keys());
        let mut keys: Vec<u64> = Vec::with_capacity(sampled.len());
        let mut slots: Vec<u32> = Vec::with_capacity(sampled.len());
        for (slot, k) in sampled.iter().enumerate() {
            let k = k.to_u64();
            if keys.last() == Some(&k) {
                *slots.last_mut().expect("non-empty") = slot as u32;
            } else {
                keys.push(k);
                slots.push(slot as u32);
            }
        }
        let key_len = (K::BITS / 8) as usize;
        // Keys are left-padded in to_be_bytes form; shift so the significant
        // bytes are the leading ones (prefix arithmetic works on u64).
        let shift = (8 - key_len) * 8;
        let padded: Vec<u64> = keys.iter().map(|&k| k << shift).collect();

        let num_leaves = keys.len().div_ceil(LEAF_SIZE);
        let mut anchors = Vec::with_capacity(num_leaves);
        let mut anchor_lens = Vec::with_capacity(num_leaves);
        for leaf in 0..num_leaves {
            if leaf == 0 {
                anchors.push(0u64);
                anchor_lens.push(0u8);
                continue;
            }
            let prev_last = padded[leaf * LEAF_SIZE - 1];
            let cur_first = padded[leaf * LEAF_SIZE];
            // Shortest prefix of cur_first that exceeds prev_last.
            let diff_byte = ((prev_last ^ cur_first).leading_zeros() / 8) as u8;
            let len = (diff_byte + 1).min(key_len as u8);
            anchors.push(prefix_of(cur_first, len));
            anchor_lens.push(len);
        }

        let mut table =
            MetaTrieHash::with_capacity(anchor_lens.iter().map(|&l| l as usize + 1).sum::<usize>());
        for (leaf, (&a, &l)) in anchors.iter().zip(&anchor_lens).enumerate() {
            for len in 0..=l {
                table.upsert(prefix_of(a, len), len, leaf as u32);
            }
        }

        Ok(WormholeIndex {
            anchors,
            keys,
            slots,
            table,
            geometry,
            key_len,
            _marker: std::marker::PhantomData,
        })
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.anchors.len()
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let x = key.to_u64();
        let padded = x << ((8 - self.key_len) * 8);

        // Binary search over prefix length: the anchor-prefix set is
        // prefix-closed, so membership is monotone in the length.
        let mut best = (0u32, self.anchors.len() as u32 - 1);
        let mut lo_len = 0u8;
        let mut hi_len = self.key_len as u8;
        while lo_len < hi_len {
            let mid = lo_len + (hi_len - lo_len).div_ceil(2);
            match self.table.get(prefix_of(padded, mid), mid, tracer) {
                Some(range) => {
                    best = range;
                    lo_len = mid;
                }
                None => hi_len = mid - 1,
            }
            tracer.branch(self as *const _ as usize, true);
        }

        // Resolve the leaf: greatest anchor (numeric padded) <= padded key,
        // searching one leaf left of the matched range for safety.
        let lo_leaf = (best.0 as usize).saturating_sub(1);
        let hi_leaf = best.1 as usize;
        let window = &self.anchors[lo_leaf..=hi_leaf];
        tracer.read(addr_of_index(&self.anchors, lo_leaf), window.len() * 8);
        tracer.instr(4 + window.len() as u64);
        let leaf = lo_leaf + window.partition_point(|&a| a <= padded).saturating_sub(1);

        // Strict floor within the leaf (spilling into the left neighbour).
        let start = leaf * LEAF_SIZE;
        let end = ((leaf + 1) * LEAF_SIZE).min(self.keys.len());
        tracer.read(addr_of_index(&self.keys, start), (end - start) * 8);
        tracer.instr(8);
        let idx = start + self.keys[start..end].partition_point(|&k| k < x);
        let pred = if idx > start {
            Some(self.slots[idx - 1] as usize)
        } else if start > 0 {
            Some(self.slots[start - 1] as usize)
        } else {
            None
        };
        self.geometry.bound_for_pred_slot(pred)
    }
}

impl<K: Key> Index<K> for WormholeIndex<K> {
    fn name(&self) -> &'static str {
        "Wormhole"
    }

    fn size_bytes(&self) -> usize {
        self.anchors.len() * 8
            + self.keys.len() * 8
            + self.slots.len() * 4
            + self.table.size_bytes()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::HybridHashTrie }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`WormholeIndex`].
#[derive(Debug, Clone)]
pub struct WormholeBuilder {
    /// Index every `stride`-th key.
    pub stride: usize,
}

impl Default for WormholeBuilder {
    fn default() -> Self {
        WormholeBuilder { stride: 1 }
    }
}

impl WormholeBuilder {
    /// Size sweep for Figure 8.
    pub fn size_sweep() -> Vec<WormholeBuilder> {
        [1usize, 4, 16, 64, 256].into_iter().map(|stride| WormholeBuilder { stride }).collect()
    }
}

impl<K: Key> IndexBuilder<K> for WormholeBuilder {
    type Output = WormholeIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        WormholeIndex::build(data, self.stride)
    }

    fn describe(&self) -> String {
        format!("Wormhole[stride={}]", self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::util::XorShift64;

    fn check_validity(keys: Vec<u64>, stride: usize) {
        let data = SortedData::new(keys.clone()).unwrap();
        let idx = WormholeIndex::build(&data, stride).unwrap();
        let mut probes: Vec<u64> = keys.clone();
        probes.extend(keys.iter().map(|&k| k.saturating_add(1)));
        probes.extend(keys.iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, u64::MAX, u64::MAX / 7]);
        for x in probes {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "stride={stride} x={x} bound={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_dense_keys() {
        check_validity((0..3000u64).collect(), 1);
        check_validity((0..3000u64).collect(), 4);
    }

    #[test]
    fn valid_on_random_keys() {
        let mut rng = XorShift64::new(31);
        let mut keys: Vec<u64> = (0..5000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        check_validity(keys.clone(), 1);
        check_validity(keys, 8);
    }

    #[test]
    fn valid_with_shared_prefixes() {
        let mut keys: Vec<u64> = (0..800).map(|i| 0xAB00_0000_0000_0000u64 + i).collect();
        keys.extend((0..800).map(|i| 0xAB00_CD00_0000_0000u64 + i * 11));
        keys.extend((0..800).map(|i| i * 13));
        keys.sort_unstable();
        check_validity(keys, 1);
    }

    #[test]
    fn valid_with_duplicates() {
        let mut keys = vec![5u64; 100];
        keys.extend(vec![1u64 << 30; 100]);
        keys.extend((0..400u64).map(|i| (1u64 << 31) + i * 3));
        keys.sort_unstable();
        check_validity(keys.clone(), 1);
        check_validity(keys, 5);
    }

    #[test]
    fn valid_for_u32_keys() {
        let keys: Vec<u32> = (0..3000u32).map(|i| i * 29).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = WormholeIndex::build(&data, 2).unwrap();
        for &k in data.keys() {
            for probe in [k.saturating_sub(1), k, k.saturating_add(1)] {
                assert!(idx.search_bound(probe).contains(data.lower_bound(probe)));
            }
        }
    }

    #[test]
    fn small_inputs() {
        check_validity(vec![42], 1);
        check_validity(vec![1, 2], 1);
        check_validity((0..65u64).collect(), 1); // exactly one leaf + 1
    }

    #[test]
    fn leaf_partitioning_matches_key_count() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 17).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = WormholeIndex::build(&data, 1).unwrap();
        assert_eq!(idx.num_leaves(), 1000usize.div_ceil(LEAF_SIZE));
    }
}
