//! FST: a LOUDS-sparse fast succinct trie (SuRF's lower layer) over
//! big-endian key bytes.
//!
//! Layout (per SuRF): three parallel per-label sequences in level order —
//! `labels` (the branch byte), `has_child` (1 = inner edge, 0 = leaf), and
//! `louds` (1 = first label of its node) — with child navigation computed
//! from rank/select over the bit vectors. Single-key subtrees are truncated
//! into leaves; the full key is kept alongside the leaf value so floor
//! queries can compare beyond the stored prefix.

use sosd_core::stride::Stride;
use sosd_core::trace::addr_of_index;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};
use sosd_succinct::{BitVec, RankSelect};
use std::collections::VecDeque;

/// The succinct trie index.
pub struct FstIndex<K: Key> {
    labels: Vec<u8>,
    has_child: RankSelect,
    louds: RankSelect,
    /// Full keys of the leaves, indexed by leaf rank (`rank0(has_child, pos)`).
    leaf_keys: Vec<u64>,
    /// Sampled slots, parallel to `leaf_keys`.
    leaf_slots: Vec<u32>,
    geometry: Stride,
    key_offset: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Key> FstIndex<K> {
    /// Build with the given sampling stride.
    pub fn build(data: &SortedData<K>, stride: usize) -> Result<Self, BuildError> {
        let geometry = Stride::new(stride, data.len());
        let sampled = geometry.sample(data.keys());
        // Dedup keeping the last slot (strict-floor semantics).
        let mut keys: Vec<u64> = Vec::with_capacity(sampled.len());
        let mut slots: Vec<u32> = Vec::with_capacity(sampled.len());
        for (slot, k) in sampled.iter().enumerate() {
            let k = k.to_u64();
            if keys.last() == Some(&k) {
                *slots.last_mut().expect("non-empty") = slot as u32;
            } else {
                keys.push(k);
                slots.push(slot as u32);
            }
        }
        let key_offset = 8 - (K::BITS / 8) as usize;

        // BFS construction so labels are emitted in level (LOUDS) order.
        let mut labels = Vec::new();
        let mut has_child = BitVec::new();
        let mut louds = BitVec::new();
        let mut leaf_keys = Vec::new();
        let mut leaf_slots = Vec::new();
        let mut queue: VecDeque<(usize, usize, usize)> = VecDeque::new(); // lo, hi, depth
        queue.push_back((0, keys.len(), key_offset));
        while let Some((lo, hi, depth)) = queue.pop_front() {
            debug_assert!(depth < 8, "non-unique keys reached full depth");
            let mut first_in_node = true;
            let mut g = lo;
            while g < hi {
                let b = keys[g].to_be_bytes()[depth];
                let g_end = g + keys[g..hi].partition_point(|k| k.to_be_bytes()[depth] == b);
                labels.push(b);
                louds.push(first_in_node);
                first_in_node = false;
                if g_end - g == 1 {
                    // Single-key subtree: truncate to a leaf.
                    has_child.push(false);
                    leaf_keys.push(keys[g]);
                    leaf_slots.push(slots[g]);
                } else {
                    has_child.push(true);
                    queue.push_back((g, g_end, depth + 1));
                }
                g = g_end;
            }
        }

        Ok(FstIndex {
            labels,
            has_child: RankSelect::new(has_child),
            louds: RankSelect::new(louds),
            leaf_keys,
            leaf_slots,
            geometry,
            key_offset,
            _marker: std::marker::PhantomData,
        })
    }

    /// Number of trie labels (edges).
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Label range `[start, end)` of a node.
    #[inline]
    fn node_range(&self, node_id: u64) -> (usize, usize) {
        let s = self.louds.select1(node_id).expect("valid node id");
        let e = self.louds.select1(node_id + 1).unwrap_or(self.labels.len());
        (s, e)
    }

    /// Node id of the child hanging off label position `pos`.
    #[inline]
    fn child_node(&self, pos: usize) -> u64 {
        self.has_child.rank1(pos + 1)
    }

    /// Leaf rank of the leaf at label position `pos`.
    #[inline]
    fn leaf_rank(&self, pos: usize) -> usize {
        self.has_child.rank0(pos) as usize
    }

    /// Greatest slot in the subtree rooted at `node_id` (rightmost leaf).
    fn max_of_subtree<T: Tracer>(&self, mut node_id: u64, tracer: &mut T) -> u32 {
        loop {
            let (s, e) = self.node_range(node_id);
            let p = e - 1;
            tracer.read(addr_of_index(&self.labels, p), 1);
            tracer.instr(8);
            let _ = s;
            if self.has_child.bits().get(p) {
                node_id = self.child_node(p);
            } else {
                return self.leaf_slots[self.leaf_rank(p)];
            }
        }
    }

    /// Greatest sampled slot with key strictly less than `x` in the subtree.
    fn floor<T: Tracer>(
        &self,
        node_id: u64,
        depth: usize,
        bytes: &[u8; 8],
        x: u64,
        tracer: &mut T,
    ) -> Option<u32> {
        let (s, e) = self.node_range(node_id);
        let b = bytes[depth];
        tracer.read(addr_of_index(&self.labels, s), e - s);
        tracer.instr(10); // rank/select arithmetic per node
        let pos = s + self.labels[s..e].partition_point(|&l| l < b);
        let site = self as *const _ as usize;
        if pos < e && self.labels[pos] == b {
            tracer.branch(site, true);
            if self.has_child.bits().get(pos) {
                if let Some(slot) = self.floor(self.child_node(pos), depth + 1, bytes, x, tracer) {
                    return Some(slot);
                }
            } else {
                let r = self.leaf_rank(pos);
                tracer.read(addr_of_index(&self.leaf_keys, r), 8);
                if self.leaf_keys[r] < x {
                    return Some(self.leaf_slots[r]);
                }
            }
        } else {
            tracer.branch(site, false);
        }
        // Greatest label strictly below the search byte.
        if pos > s {
            let p = pos - 1;
            if self.has_child.bits().get(p) {
                return Some(self.max_of_subtree(self.child_node(p), tracer));
            }
            return Some(self.leaf_slots[self.leaf_rank(p)]);
        }
        None
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let x = key.to_u64();
        let bytes = x.to_be_bytes();
        let pred = self.floor(0, self.key_offset, &bytes, x, tracer).map(|s| s as usize);
        self.geometry.bound_for_pred_slot(pred)
    }
}

impl<K: Key> Index<K> for FstIndex<K> {
    fn name(&self) -> &'static str {
        "FST"
    }

    fn size_bytes(&self) -> usize {
        self.labels.len()
            + self.has_child.bits().size_bytes()
            + self.louds.bits().size_bytes()
            + self.leaf_keys.len() * 8
            + self.leaf_slots.len() * 4
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Trie }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`FstIndex`].
#[derive(Debug, Clone)]
pub struct FstBuilder {
    /// Index every `stride`-th key.
    pub stride: usize,
}

impl Default for FstBuilder {
    fn default() -> Self {
        FstBuilder { stride: 1 }
    }
}

impl FstBuilder {
    /// Size sweep for Figure 8.
    pub fn size_sweep() -> Vec<FstBuilder> {
        [1usize, 4, 16, 64, 256].into_iter().map(|stride| FstBuilder { stride }).collect()
    }
}

impl<K: Key> IndexBuilder<K> for FstBuilder {
    type Output = FstIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        FstIndex::build(data, self.stride)
    }

    fn describe(&self) -> String {
        format!("FST[stride={}]", self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::util::XorShift64;

    fn check_validity(keys: Vec<u64>, stride: usize) {
        let data = SortedData::new(keys.clone()).unwrap();
        let idx = FstIndex::build(&data, stride).unwrap();
        let mut probes: Vec<u64> = keys.clone();
        probes.extend(keys.iter().map(|&k| k.saturating_add(1)));
        probes.extend(keys.iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, u64::MAX, u64::MAX / 5]);
        for x in probes {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "stride={stride} x={x} bound={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_dense_keys() {
        check_validity((0..2000u64).collect(), 1);
        check_validity((0..2000u64).collect(), 5);
    }

    #[test]
    fn valid_on_random_keys() {
        let mut rng = XorShift64::new(41);
        let mut keys: Vec<u64> = (0..4000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        check_validity(keys.clone(), 1);
        check_validity(keys, 8);
    }

    #[test]
    fn valid_with_shared_prefixes() {
        let mut keys: Vec<u64> = (0..500).map(|i| 0xDEAD_0000_0000_0000u64 + i).collect();
        keys.extend((0..500).map(|i| 0xDEAD_BEEF_0000_0000u64 + i * 3));
        keys.extend((0..500).map(|i| i * 7));
        keys.sort_unstable();
        check_validity(keys, 1);
    }

    #[test]
    fn valid_with_duplicates_in_data() {
        let mut keys = vec![3u64; 60];
        keys.extend(vec![1u64 << 40; 60]);
        keys.extend((0..300u64).map(|i| (1u64 << 41) + i));
        keys.sort_unstable();
        check_validity(keys.clone(), 1);
        check_validity(keys, 3);
    }

    #[test]
    fn valid_for_u32_keys() {
        let keys: Vec<u32> = (0..2000u32).map(|i| i * 37).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = FstIndex::build(&data, 2).unwrap();
        for &k in data.keys() {
            for probe in [k.saturating_sub(1), k, k.saturating_add(1)] {
                assert!(idx.search_bound(probe).contains(data.lower_bound(probe)));
            }
        }
    }

    #[test]
    fn truncation_keeps_trie_small_on_sparse_keys() {
        let mut rng = XorShift64::new(9);
        let mut keys: Vec<u64> = (0..5000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        let data = SortedData::new(keys.clone()).unwrap();
        let idx = FstIndex::build(&data, 1).unwrap();
        // Random 64-bit keys diverge within ~3 bytes, so labels should be
        // far fewer than keys * 8.
        assert!(idx.num_labels() < keys.len() * 4, "labels: {}", idx.num_labels());
    }
}
