//! Three-stage RMI: the n-stage generalization sketched in Section 3.1 of
//! the paper (and probed in its Section 4.3 "multi-stage" discussion).
//!
//! Stage one picks a mid-level model; the mid-level model picks a leaf; the
//! leaf predicts the position. The extra stage buys a much larger effective
//! branching factor at one additional (cacheable) model read.
//!
//! # Validity
//!
//! The two-stage proof (see [`crate::rmi::Rmi`]) needs the *composed* leaf
//! selection to be monotone in the key. Stage-one models are monotone, but
//! two adjacent mid-level models generally disagree where the stage-one
//! bucket switches. Each mid model's output is therefore **clamped to the
//! position range its bucket covers**: below its range floor a model can
//! never undercut its left neighbour, above its ceiling it can never
//! overtake its right neighbour, so the composition is globally monotone
//! and the per-leaf boundary-inclusive envelopes make every bound valid —
//! absent keys, duplicates and all.

use crate::model::{self, Model, ModelKind};
use sosd_core::trace::addr_of_index;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// A mid-stage model: an anchored line clamped to its bucket's position
/// range. 40 bytes.
#[derive(Debug, Clone, Copy)]
struct MidModel {
    slope: f64,
    x0: f64,
    y0: f64,
    /// Smallest position this bucket covers.
    lo: f64,
    /// Largest position this bucket covers (inclusive ceiling).
    hi: f64,
}

impl MidModel {
    #[inline]
    fn predict(&self, x: f64) -> f64 {
        (self.y0 + self.slope * (x - self.x0)).clamp(self.lo, self.hi)
    }
}

/// A leaf: anchored line plus error envelope (as in the two-stage RMI).
#[derive(Debug, Clone, Copy)]
struct Leaf {
    slope: f64,
    x0: f64,
    y0: f64,
    err_over: u32,
    err_under: u32,
}

impl Leaf {
    #[inline]
    fn predict(&self, x: f64) -> f64 {
        self.y0 + self.slope * (x - self.x0)
    }
}

/// A three-stage recursive model index.
#[derive(Debug, Clone)]
pub struct Rmi3<K: Key> {
    root: Model,
    mids: Vec<MidModel>,
    leaves: Vec<Leaf>,
    /// `mids.len() / n`.
    scale1: f64,
    /// `leaves.len() / n`.
    scale2: f64,
    n: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Key> Rmi3<K> {
    /// Build with `branch1` mid models and `branch2` leaves.
    pub fn build(
        data: &SortedData<K>,
        root_kind: ModelKind,
        branch1: usize,
        branch2: usize,
    ) -> Result<Self, BuildError> {
        if branch1 == 0 || branch2 == 0 || branch1 > (1 << 22) || branch2 > (1 << 26) {
            return Err(BuildError::InvalidConfig(format!(
                "branching factors out of range: {branch1}, {branch2}"
            )));
        }
        let keys = data.keys();
        let n = keys.len();
        let positions: Vec<usize> = (0..n).collect();

        // Stage one.
        let step = (n / (1 << 20)).max(1);
        let root = if step == 1 {
            model::fit(root_kind, keys, &positions, n as f64)
        } else {
            let ks: Vec<K> = keys.iter().copied().step_by(step).collect();
            let ps: Vec<usize> = positions.iter().copied().step_by(step).collect();
            model::fit(root_kind, &ks, &ps, n as f64)
        };
        let scale1 = branch1 as f64 / n as f64;
        let bucket1_of = |key: K| -> usize {
            let p = root.predict(key) * scale1;
            if p.is_nan() || p <= 0.0 {
                0
            } else {
                (p as usize).min(branch1 - 1)
            }
        };

        // Stage-one bucket boundaries (monotone clamp against float jitter).
        let mut starts1 = vec![0usize; branch1 + 1];
        let mut cur = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let b = bucket1_of(k).max(cur);
            while cur < b {
                cur += 1;
                starts1[cur] = i;
            }
        }
        while cur < branch1 {
            cur += 1;
            starts1[cur] = n;
        }

        // Stage two: one clamped linear model per bucket.
        let mut mids = Vec::with_capacity(branch1);
        for b in 0..branch1 {
            let (s, e) = (starts1[b], starts1[b + 1]);
            let fitted = if e > s {
                model::fit_linear(&keys[s..e], &positions[s..e])
            } else {
                Model::Linear { slope: 0.0, x0: 0.0, y0: s as f64 }
            };
            let Model::Linear { slope, x0, y0 } = fitted else {
                unreachable!("fit_linear returns the Linear variant")
            };
            // Clamp range: the positions this bucket covers. Empty buckets
            // pin to their boundary so the composition stays monotone.
            let lo = s as f64;
            let hi = if e > s { (e - 1) as f64 } else { s as f64 };
            mids.push(MidModel { slope, x0, y0, lo, hi });
        }

        // Stage three: assign leaves through the composed stages one+two.
        let scale2 = branch2 as f64 / n as f64;
        let leaf_of = |key: K| -> usize {
            let m = &mids[bucket1_of(key)];
            let p = m.predict(key.to_f64()) * scale2;
            if p.is_nan() || p <= 0.0 {
                0
            } else {
                (p as usize).min(branch2 - 1)
            }
        };
        let mut starts2 = vec![0usize; branch2 + 1];
        let mut cur = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let b = leaf_of(k).max(cur);
            while cur < b {
                cur += 1;
                starts2[cur] = i;
            }
        }
        while cur < branch2 {
            cur += 1;
            starts2[cur] = n;
        }

        let mut leaves = Vec::with_capacity(branch2);
        for b in 0..branch2 {
            let (s, e) = (starts2[b], starts2[b + 1]);
            let fitted = if e > s {
                model::fit_linear(&keys[s..e], &positions[s..e])
            } else {
                Model::Linear { slope: 0.0, x0: 0.0, y0: s as f64 }
            };
            let Model::Linear { slope, x0, y0 } = fitted else {
                unreachable!("fit_linear returns the Linear variant")
            };
            let mut leaf = Leaf { slope, x0, y0, err_over: 0, err_under: 0 };
            let lo_i = s.saturating_sub(1);
            let hi_i = e.min(n - 1);
            let mut err_over = 0f64;
            let mut err_under = 0f64;
            #[allow(clippy::needless_range_loop)] // i is both index and target rank
            for i in lo_i..=hi_i {
                let pred = leaf.predict(keys[i].to_f64());
                err_over = err_over.max(pred - i as f64);
                err_under = err_under.max(i as f64 - pred);
            }
            leaf.err_over = err_over.ceil().min(u32::MAX as f64) as u32;
            leaf.err_under = err_under.ceil().min(u32::MAX as f64) as u32;
            leaves.push(leaf);
        }

        Ok(Rmi3 { root, mids, leaves, scale1, scale2, n, _marker: std::marker::PhantomData })
    }

    /// Mid-stage fanout.
    pub fn branch1(&self) -> usize {
        self.mids.len()
    }

    /// Leaf fanout.
    pub fn branch2(&self) -> usize {
        self.leaves.len()
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        tracer.instr(self.root.instr_cost() + 3);
        let p1 = self.root.predict(key) * self.scale1;
        let b1 = if p1.is_nan() || p1 <= 0.0 { 0 } else { (p1 as usize).min(self.mids.len() - 1) };
        tracer.read(addr_of_index(&self.mids, b1), std::mem::size_of::<MidModel>());
        tracer.instr(8);
        let p2 = self.mids[b1].predict(key.to_f64()) * self.scale2;
        let b2 =
            if p2.is_nan() || p2 <= 0.0 { 0 } else { (p2 as usize).min(self.leaves.len() - 1) };
        tracer.read(addr_of_index(&self.leaves, b2), std::mem::size_of::<Leaf>());
        tracer.instr(8);
        let leaf = &self.leaves[b2];
        let p = leaf.predict(key.to_f64());
        let lo_f = p - leaf.err_over as f64 - 1.0;
        let hi_f = p + leaf.err_under as f64 + 2.0;
        let lo = if lo_f <= 0.0 { 0 } else { (lo_f as usize).min(self.n) };
        let hi = if hi_f <= 0.0 { 0 } else { (hi_f as usize).min(self.n) };
        SearchBound { lo, hi: hi.max(lo) }
    }
}

impl<K: Key> Index<K> for Rmi3<K> {
    fn name(&self) -> &'static str {
        "RMI3"
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Model>()
            + self.mids.len() * std::mem::size_of::<MidModel>()
            + self.leaves.len() * std::mem::size_of::<Leaf>()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: false, ordered: true, kind: IndexKind::Learned }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`Rmi3`].
#[derive(Debug, Clone)]
pub struct Rmi3Builder {
    /// Stage-one model family.
    pub root_kind: ModelKind,
    /// Mid-stage fanout.
    pub branch1: usize,
    /// Leaf fanout.
    pub branch2: usize,
}

impl Default for Rmi3Builder {
    fn default() -> Self {
        Rmi3Builder { root_kind: ModelKind::Cubic, branch1: 1 << 8, branch2: 1 << 16 }
    }
}

impl<K: Key> IndexBuilder<K> for Rmi3Builder {
    type Output = Rmi3<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        Rmi3::build(data, self.root_kind, self.branch1, self.branch2)
    }

    fn describe(&self) -> String {
        format!("RMI3[{},b1={},b2={}]", self.root_kind.label(), self.branch1, self.branch2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::Rmi;
    use sosd_core::util::XorShift64;

    fn validity_probes(data: &SortedData<u64>) -> Vec<u64> {
        let mut probes: Vec<u64> = data.keys().to_vec();
        probes.extend(data.keys().iter().map(|&k| k.saturating_add(1)));
        probes.extend(data.keys().iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, 1, u64::MAX, u64::MAX - 1]);
        probes
    }

    fn check_validity(keys: Vec<u64>, root: ModelKind, b1: usize, b2: usize) {
        let data = SortedData::new(keys).unwrap();
        let rmi = Rmi3::build(&data, root, b1, b2).unwrap();
        for x in validity_probes(&data) {
            let b = rmi.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "{root:?} b1={b1} b2={b2} x={x} bound={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_linear_and_quadratic_data() {
        let lin: Vec<u64> = (0..3000).map(|i| i * 11 + 3).collect();
        let quad: Vec<u64> = (0..3000u64).map(|i| i * i).collect();
        for root in ModelKind::ROOT_KINDS {
            check_validity(lin.clone(), root, 16, 256);
            check_validity(quad.clone(), root, 16, 256);
        }
    }

    #[test]
    fn valid_on_random_gaps_and_duplicates() {
        let mut rng = XorShift64::new(13);
        let mut keys = Vec::new();
        let mut x = 0u64;
        for _ in 0..5000 {
            let shift = 1 + rng.next_below(12);
            x += rng.next_below(1 << shift); // zero gaps => duplicates
            keys.push(x);
        }
        for (b1, b2) in [(1, 1), (4, 16), (64, 4096), (256, 256)] {
            check_validity(keys.clone(), ModelKind::Cubic, b1, b2);
        }
    }

    #[test]
    fn valid_with_outliers() {
        let mut keys: Vec<u64> = (0..2000).map(|i| i * 7).collect();
        keys.extend([u64::MAX - 9, u64::MAX - 1]);
        check_validity(keys, ModelKind::Linear, 32, 1024);
    }

    #[test]
    fn third_stage_tightens_bounds_over_two_stage_at_equal_size() {
        // amzn-like smooth data with curvature.
        let mut rng = XorShift64::new(7);
        let mut keys = Vec::new();
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x += 1 + (i / 1000) % 97 + rng.next_below(50);
            keys.push(x);
        }
        let data = SortedData::new(keys).unwrap();
        let two = Rmi::build(&data, ModelKind::Cubic, ModelKind::Linear, 1 << 12).unwrap();
        // Match total size: 2^12 leaves * 32B ~= 2^8 mids * 40B + ~2^11.7
        // leaves * 32B; use b2 = 2^12 - overhead comparable.
        let three = Rmi3::build(&data, ModelKind::Cubic, 1 << 8, (1 << 12) - 320).unwrap();
        let avg = |b: &dyn Index<u64>| -> f64 {
            data.keys().iter().step_by(53).map(|&k| b.search_bound(k).len() as f64).sum::<f64>()
                / (data.len() / 53) as f64
        };
        let (e2, e3) = (avg(&two), avg(&three));
        assert!(
            e3 < e2 * 1.2,
            "three stages should be at least competitive: 2-stage={e2:.1} 3-stage={e3:.1}"
        );
        assert!(
            Index::<u64>::size_bytes(&three) <= Index::<u64>::size_bytes(&two) + 4096,
            "size parity violated"
        );
    }

    #[test]
    fn traced_inference_reads_two_models() {
        use sosd_core::CountingTracer;
        let data = SortedData::new((0..50_000u64).map(|i| i * 3).collect()).unwrap();
        let rmi = Rmi3::build(&data, ModelKind::Cubic, 64, 4096).unwrap();
        let mut t = CountingTracer::default();
        rmi.search_bound_traced(75_000, &mut t);
        assert_eq!(t.reads, 2, "mid + leaf reads");
        assert_eq!(t.branches, 0, "inference is branch-free");
    }

    #[test]
    fn rejects_bad_configs() {
        let data = SortedData::new(vec![1u64, 2]).unwrap();
        assert!(Rmi3::build(&data, ModelKind::Linear, 0, 4).is_err());
        assert!(Rmi3::build(&data, ModelKind::Linear, 4, 0).is_err());
    }
}
