//! CDFShop-style auto-tuning (Marcus, Zhang, Kraska, SIGMOD 2020 demo).
//!
//! The paper tunes every RMI with CDFShop, which explores model-type and
//! branching-factor combinations and returns ~10 Pareto-optimal
//! configurations from minimum to maximum size. This module reproduces that
//! workflow: a deterministic grid sweep scored by (index size, mean log2
//! error on sampled probes), reduced to its Pareto front.

use crate::model::ModelKind;
use crate::rmi::{Rmi, RmiBuilder};
use sosd_core::stats::{log2_error_stats, pareto_front};
use sosd_core::util::XorShift64;
use sosd_core::{Index, Key, SortedData};

/// Grid and scoring parameters for [`auto_tune`].
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Stage-one model families to try.
    pub root_kinds: Vec<ModelKind>,
    /// Branching factors to try (capped at the dataset size internally).
    pub branches: Vec<usize>,
    /// Number of sampled probe keys used to score each candidate.
    pub probes: usize,
    /// Maximum number of configurations to return.
    pub max_configs: usize,
    /// Probe-sampling seed.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            root_kinds: ModelKind::ROOT_KINDS.to_vec(),
            branches: (6..=22).step_by(2).map(|b| 1usize << b).collect(),
            probes: 10_000,
            max_configs: 10,
            seed: 0xCDF_5409,
        }
    }
}

/// Explore the configuration grid and return a Pareto-optimal set of
/// builders ordered by increasing size, at most `max_configs` long.
pub fn auto_tune<K: Key>(data: &SortedData<K>, cfg: &TunerConfig) -> Vec<RmiBuilder> {
    let mut rng = XorShift64::new(cfg.seed);
    let probes: Vec<K> = (0..cfg.probes.max(1))
        .map(|_| data.key(rng.next_below(data.len() as u64) as usize))
        .collect();

    let mut candidates: Vec<(RmiBuilder, f64, f64)> = Vec::new();
    for &root_kind in &cfg.root_kinds {
        for &branch in &cfg.branches {
            let branch = branch.min(data.len().max(1));
            let builder = RmiBuilder { root_kind, leaf_kind: ModelKind::Linear, branch };
            let Ok(rmi) = Rmi::build(data, root_kind, ModelKind::Linear, branch) else {
                continue;
            };
            let stats = log2_error_stats(&rmi, data, &probes);
            candidates.push((builder, Index::<K>::size_bytes(&rmi) as f64, stats.mean_log2));
        }
    }

    let points: Vec<(f64, f64)> = candidates.iter().map(|c| (c.1, c.2)).collect();
    let front = pareto_front(&points);

    // Thin the front evenly to at most max_configs entries, keeping ends.
    let picked: Vec<usize> = if front.len() <= cfg.max_configs {
        front
    } else {
        (0..cfg.max_configs).map(|i| front[i * (front.len() - 1) / (cfg.max_configs - 1)]).collect()
    };
    picked.into_iter().map(|i| candidates[i].0.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::IndexBuilder;

    fn small_config() -> TunerConfig {
        TunerConfig {
            branches: vec![16, 64, 256, 1024],
            probes: 500,
            max_configs: 5,
            ..TunerConfig::default()
        }
    }

    #[test]
    fn returns_bounded_pareto_set() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * 17 + (i % 13)).collect();
        let data = SortedData::new(keys).unwrap();
        let configs = auto_tune(&data, &small_config());
        assert!(!configs.is_empty());
        assert!(configs.len() <= 5);
    }

    #[test]
    fn configs_span_increasing_sizes() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| (i * i) / 3 + i).collect();
        let data = SortedData::new(keys).unwrap();
        let configs = auto_tune(&data, &small_config());
        let sizes: Vec<usize> = configs
            .iter()
            .map(|b| {
                let rmi = IndexBuilder::<u64>::build(b, &data).unwrap();
                Index::<u64>::size_bytes(&rmi)
            })
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes {sizes:?}");
        assert!(sizes.last().unwrap() > sizes.first().unwrap());
    }

    #[test]
    fn tuning_is_deterministic() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
        let data = SortedData::new(keys).unwrap();
        let a = auto_tune(&data, &small_config());
        let b = auto_tune(&data, &small_config());
        let desc = |v: &[RmiBuilder]| -> Vec<String> {
            v.iter().map(IndexBuilder::<u64>::describe).collect()
        };
        assert_eq!(desc(&a), desc(&b));
    }
}
