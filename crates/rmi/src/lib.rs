//! # sosd-rmi
//!
//! A two-stage Recursive Model Index (Kraska et al., SIGMOD 2018), the
//! paper's reference learned index — this reproduction follows the
//! open-source Rust RMI the paper introduced (\[1\] in the paper).
//!
//! An RMI approximates the CDF of a sorted key array with a tree of simple
//! models: a stage-one model partitions the key space into `B` buckets, and
//! one stage-two model per bucket refines the prediction (Section 3.1). The
//! RMI is trained *top-down*: unlike PGM/RadixSpline there is no a-priori
//! error bound — instead per-leaf error envelopes are measured after
//! training and attached to each leaf, which is what makes RMI inference so
//! cheap (two model evaluations, no searching between layers) at the cost of
//! unbounded worst-case error.
//!
//! Model types are selectable per stage (linear, linear-spline, cubic,
//! log-linear, radix), and [`tuner`] provides a CDFShop-style auto-tuner
//! (Marcus et al., SIGMOD 2020 demo) that sweeps model types and branching
//! factors and returns a Pareto-optimal configuration set.

pub mod model;
pub mod rmi;
pub mod rmi3;
pub mod tuner;

pub use model::ModelKind;
pub use rmi::{Rmi, RmiBuilder};
pub use rmi3::{Rmi3, Rmi3Builder};
pub use tuner::{auto_tune, TunerConfig};
