//! The model zoo for RMI stages.
//!
//! Every model maps a key (as `f64`) to an estimated CDF position and is
//! **monotone non-decreasing** by construction — monotonicity is what lets
//! the RMI turn measured per-leaf training errors into bounds that are valid
//! for *absent* keys too (see the invariant notes on [`crate::rmi::Rmi`]).

use sosd_core::Key;

/// Selectable model families, mirroring the reference RMI's model types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Least-squares line (slope clamped non-negative).
    Linear,
    /// Line through the first and last point.
    LinearSpline,
    /// Monotone cubic Hermite segment through the end points
    /// (Fritsch-Carlson slope limiting).
    Cubic,
    /// Least-squares line in `ln(1 + x)` space.
    LogLinear,
    /// Radix bucketing on the top bits of the key (root stage only).
    Radix,
}

impl ModelKind {
    /// Every model kind.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Linear,
        ModelKind::LinearSpline,
        ModelKind::Cubic,
        ModelKind::LogLinear,
        ModelKind::Radix,
    ];

    /// Model kinds usable as the RMI root.
    pub const ROOT_KINDS: [ModelKind; 4] =
        [ModelKind::Linear, ModelKind::Cubic, ModelKind::LogLinear, ModelKind::Radix];

    /// Short label for configuration strings.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::LinearSpline => "spline",
            ModelKind::Cubic => "cubic",
            ModelKind::LogLinear => "loglinear",
            ModelKind::Radix => "radix",
        }
    }

    /// Inverse of [`ModelKind::label`] (configuration parsing).
    pub fn parse(label: &str) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// A fitted model. All variants are monotone non-decreasing in the key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Model {
    /// `y = y0 + slope * (x - x0)`; anchored at the training mean for
    /// numeric stability with 64-bit keys.
    Linear {
        /// Positions per key unit (non-negative).
        slope: f64,
        /// Anchor key.
        x0: f64,
        /// Value at the anchor.
        y0: f64,
    },
    /// `y = y0 + slope * (ln(1+x) - u0)`.
    LogLinear {
        /// Positions per log-key unit (non-negative).
        slope: f64,
        /// Anchor in `ln(1+x)` space.
        u0: f64,
        /// Value at the anchor.
        y0: f64,
    },
    /// Monotone cubic Hermite on `t = (x - x0) / dx` in `[0, 1]`:
    /// `y = h00(t) y0 + h10(t) dx m0' + h01(t) y1 + h11(t) dx m1'`.
    Cubic {
        /// Segment start key.
        x0: f64,
        /// Segment key span.
        dx: f64,
        /// Value at the start.
        y0: f64,
        /// Value at the end.
        y1: f64,
        /// Start slope (Fritsch-Carlson limited).
        m0: f64,
        /// End slope (Fritsch-Carlson limited).
        m1: f64,
    },
    /// `y = ((x >> shift) as f64) * scale`, the radix-table root.
    Radix {
        /// Bits shifted out before scaling.
        shift: u32,
        /// Output units per prefix value.
        scale: f64,
    },
}

impl Model {
    /// Evaluate the model at a key.
    #[inline]
    pub fn predict<K: Key>(&self, key: K) -> f64 {
        match *self {
            Model::Linear { slope, x0, y0 } => y0 + slope * (key.to_f64() - x0),
            Model::LogLinear { slope, u0, y0 } => y0 + slope * ((1.0 + key.to_f64()).ln() - u0),
            Model::Cubic { x0, dx, y0, y1, m0, m1 } => {
                if dx <= 0.0 {
                    return y0;
                }
                let t = ((key.to_f64() - x0) / dx).clamp(0.0, 1.0);
                let t2 = t * t;
                let t3 = t2 * t;
                let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
                let h10 = t3 - 2.0 * t2 + t;
                let h01 = -2.0 * t3 + 3.0 * t2;
                let h11 = t3 - t2;
                h00 * y0 + h10 * dx * m0 + h01 * y1 + h11 * dx * m1
            }
            Model::Radix { shift, scale } => ((key.to_u64() >> shift.min(63)) as f64) * scale,
        }
    }

    /// Rough evaluation cost in instructions, for the perf simulator.
    pub fn instr_cost(&self) -> u64 {
        match self {
            Model::Linear { .. } => 4,
            Model::LogLinear { .. } => 24, // ln dominates
            Model::Cubic { .. } => 14,
            Model::Radix { .. } => 3,
        }
    }
}

/// Fit a least-squares line over `(key, position)` pairs, with the slope
/// clamped non-negative to preserve monotonicity.
pub fn fit_linear<K: Key>(keys: &[K], positions: &[usize]) -> Model {
    debug_assert_eq!(keys.len(), positions.len());
    let n = keys.len();
    if n == 0 {
        return Model::Linear { slope: 0.0, x0: 0.0, y0: 0.0 };
    }
    let x_mean = keys.iter().map(|k| k.to_f64()).sum::<f64>() / n as f64;
    let y_mean = positions.iter().map(|&p| p as f64).sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (k, &p) in keys.iter().zip(positions) {
        let dx = k.to_f64() - x_mean;
        sxy += dx * (p as f64 - y_mean);
        sxx += dx * dx;
    }
    let slope = if sxx > 0.0 { (sxy / sxx).max(0.0) } else { 0.0 };
    Model::Linear { slope, x0: x_mean, y0: y_mean }
}

/// Fit a line through the first and last `(key, position)` pair.
pub fn fit_linear_spline<K: Key>(keys: &[K], positions: &[usize]) -> Model {
    let n = keys.len();
    if n == 0 {
        return Model::Linear { slope: 0.0, x0: 0.0, y0: 0.0 };
    }
    let x0 = keys[0].to_f64();
    let x1 = keys[n - 1].to_f64();
    let y0 = positions[0] as f64;
    let y1 = positions[n - 1] as f64;
    let slope = if x1 > x0 { ((y1 - y0) / (x1 - x0)).max(0.0) } else { 0.0 };
    Model::Linear { slope, x0, y0 }
}

/// Fit a least-squares line in `ln(1+x)` space (slope clamped `>= 0`).
pub fn fit_log_linear<K: Key>(keys: &[K], positions: &[usize]) -> Model {
    let n = keys.len();
    if n == 0 {
        return Model::LogLinear { slope: 0.0, u0: 0.0, y0: 0.0 };
    }
    let u: Vec<f64> = keys.iter().map(|k| (1.0 + k.to_f64()).ln()).collect();
    let u_mean = u.iter().sum::<f64>() / n as f64;
    let y_mean = positions.iter().map(|&p| p as f64).sum::<f64>() / n as f64;
    let mut suy = 0.0;
    let mut suu = 0.0;
    for (ui, &p) in u.iter().zip(positions) {
        let du = ui - u_mean;
        suy += du * (p as f64 - y_mean);
        suu += du * du;
    }
    let slope = if suu > 0.0 { (suy / suu).max(0.0) } else { 0.0 };
    Model::LogLinear { slope, u0: u_mean, y0: y_mean }
}

/// Fit a monotone cubic Hermite segment through the end points, with slopes
/// estimated from near-end secants and limited per Fritsch-Carlson so the
/// segment is monotone non-decreasing.
pub fn fit_cubic<K: Key>(keys: &[K], positions: &[usize]) -> Model {
    let n = keys.len();
    if n < 2 {
        return fit_linear_spline(keys, positions);
    }
    let x0 = keys[0].to_f64();
    let x1 = keys[n - 1].to_f64();
    let dx = x1 - x0;
    if dx <= 0.0 {
        return fit_linear_spline(keys, positions);
    }
    let y0 = positions[0] as f64;
    let y1 = positions[n - 1] as f64;
    let secant = (y1 - y0) / dx;
    // End slopes from ~5% inboard secants.
    let probe = (n / 20).max(1).min(n - 1);
    let slope_at = |a: usize, b: usize| -> f64 {
        let d = keys[b].to_f64() - keys[a].to_f64();
        if d > 0.0 {
            ((positions[b] as f64 - positions[a] as f64) / d).max(0.0)
        } else {
            0.0
        }
    };
    let mut m0 = slope_at(0, probe);
    let mut m1 = slope_at(n - 1 - probe, n - 1);
    if secant <= 0.0 {
        m0 = 0.0;
        m1 = 0.0;
    } else {
        // Fritsch-Carlson: limit (m0/secant, m1/secant) into the circle of
        // radius 3 to guarantee monotonicity.
        let a = m0 / secant;
        let b = m1 / secant;
        let r2 = a * a + b * b;
        if r2 > 9.0 {
            let s = 3.0 / r2.sqrt();
            m0 = s * a * secant;
            m1 = s * b * secant;
        }
    }
    Model::Cubic { x0, dx, y0, y1, m0, m1 }
}

/// Fit a radix root: `y = (x >> shift) * scale`, scaled so the largest key
/// maps to about `n`. Degrades gracefully (and realistically) when outliers
/// inflate the key range, as on the `face` dataset.
pub fn fit_radix<K: Key>(keys: &[K], positions: &[usize], out_range: f64) -> Model {
    let n = keys.len();
    if n == 0 {
        return Model::Radix { shift: 0, scale: 0.0 };
    }
    let _ = positions;
    let max_key = keys[n - 1].to_u64();
    // Keep ~20 significant bits after the shift.
    let bits = 64 - max_key.leading_zeros();
    let shift = bits.saturating_sub(20);
    let top = (max_key >> shift).max(1);
    Model::Radix { shift, scale: out_range / (top as f64 + 1.0) }
}

/// Fit a model of the requested kind.
pub fn fit<K: Key>(kind: ModelKind, keys: &[K], positions: &[usize], out_range: f64) -> Model {
    match kind {
        ModelKind::Linear => fit_linear(keys, positions),
        ModelKind::LinearSpline => fit_linear_spline(keys, positions),
        ModelKind::Cubic => fit_cubic(keys, positions),
        ModelKind::LogLinear => fit_log_linear(keys, positions),
        ModelKind::Radix => fit_radix(keys, positions, out_range),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn assert_monotone(model: &Model, keys: &[u64]) {
        let mut prev = f64::NEG_INFINITY;
        for &k in keys {
            let y = model.predict(k);
            assert!(y >= prev - 1e-9, "{model:?} not monotone at key {k}: {y} < {prev}");
            prev = y;
        }
    }

    #[test]
    fn linear_fits_exact_line() {
        let keys: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let m = fit_linear(&keys, &positions(100));
        for (i, &k) in keys.iter().enumerate() {
            assert!((m.predict(k) - i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_slope_clamped_non_negative() {
        // Degenerate positions that would yield negative slope.
        let keys: Vec<u64> = vec![1, 2, 3];
        let m = fit_linear(&keys, &[5, 3, 1]);
        match m {
            Model::Linear { slope, .. } => assert_eq!(slope, 0.0),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn spline_hits_endpoints() {
        let keys: Vec<u64> = (0..50).map(|i| i * i).collect();
        let m = fit_linear_spline(&keys, &positions(50));
        assert!((m.predict(keys[0]) - 0.0).abs() < 1e-9);
        assert!((m.predict(keys[49]) - 49.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_hits_endpoints_and_is_monotone() {
        let keys: Vec<u64> = (0..200).map(|i| i * i * 3).collect();
        let m = fit_cubic(&keys, &positions(200));
        assert!((m.predict(keys[0]) - 0.0).abs() < 1e-6);
        assert!((m.predict(keys[199]) - 199.0).abs() < 1e-6);
        // Monotonicity over a dense probe of the key range.
        let probes: Vec<u64> = (0..=keys[199]).step_by(97).collect();
        assert_monotone(&m, &probes);
    }

    #[test]
    fn cubic_on_steep_ends_stays_monotone() {
        // A CDF with a very steep start would break an unlimited Hermite fit.
        let mut keys: Vec<u64> = (0..100).collect();
        keys.extend((0..100).map(|i| 1_000_000 + i * 100_000));
        let m = fit_cubic(&keys, &positions(200));
        let probes: Vec<u64> = (0..=keys[199]).step_by(1013).collect();
        assert_monotone(&m, &probes);
    }

    #[test]
    fn loglinear_fits_exponential_data() {
        let keys: Vec<u64> = (0..100).map(|i| (1.2f64.powi(i)) as u64 + i as u64).collect();
        let m = fit_log_linear(&keys, &positions(100));
        // Should fit far better than a plain line near the high end.
        let lin = fit_linear(&keys, &positions(100));
        let err = |mm: &Model| -> f64 {
            keys.iter()
                .enumerate()
                .map(|(i, &k)| (mm.predict(k) - i as f64).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&m) < err(&lin), "loglinear {} vs linear {}", err(&m), err(&lin));
    }

    #[test]
    fn radix_is_monotone_and_spans_range() {
        let keys: Vec<u64> = (0..1000).map(|i| i << 40).collect();
        let m = fit_radix(&keys, &positions(1000), 1000.0);
        assert_monotone(&m, &keys);
        assert!(m.predict(keys[999]) <= 1000.0);
        assert!(m.predict(keys[999]) > 900.0);
    }

    #[test]
    fn all_kinds_fit_and_predict_finite() {
        let keys: Vec<u64> = (0..500).map(|i| i * 7 + 3).collect();
        for kind in [
            ModelKind::Linear,
            ModelKind::LinearSpline,
            ModelKind::Cubic,
            ModelKind::LogLinear,
            ModelKind::Radix,
        ] {
            let m = fit(kind, &keys, &positions(500), 500.0);
            for &k in &keys {
                assert!(m.predict(k).is_finite(), "{kind:?}");
            }
        }
    }

    #[test]
    fn empty_and_single_point_fits_do_not_panic() {
        let empty: Vec<u64> = vec![];
        let one = vec![42u64];
        for kind in [
            ModelKind::Linear,
            ModelKind::LinearSpline,
            ModelKind::Cubic,
            ModelKind::LogLinear,
            ModelKind::Radix,
        ] {
            let _ = fit(kind, &empty, &[], 10.0);
            let m = fit(kind, &one, &[0], 10.0);
            assert!(m.predict(42u64).is_finite());
        }
    }

    #[test]
    fn flat_keys_predict_constant() {
        let keys = vec![9u64; 10];
        let m = fit_cubic(&keys, &positions(10));
        assert!(m.predict(9u64).is_finite());
        let m2 = fit_linear(&keys, &positions(10));
        match m2 {
            Model::Linear { slope, .. } => assert_eq!(slope, 0.0),
            _ => panic!(),
        }
    }
}
