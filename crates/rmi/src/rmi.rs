//! The two-stage RMI index.
//!
//! # Validity invariant
//!
//! All stage models are monotone non-decreasing in the key (see
//! [`crate::model`]), so the composed approximation `A(x)` is monotone
//! between training keys. Per-leaf error envelopes are measured over each
//! leaf's assigned keys *plus one boundary key on each side*; together with
//! monotonicity this makes the bound
//! `[A(x) - err_down - 1, A(x) + err_up + 2]` valid for **every** possible
//! lookup key, present or absent — the property the whole benchmark contract
//! rests on, and the one our property tests hammer.

use crate::model::{self, Model, ModelKind};
use sosd_core::trace::addr_of_index;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// A compact second-stage model: an anchored line plus its error envelope.
/// 32 bytes, two per cache line.
#[derive(Debug, Clone, Copy)]
struct Leaf {
    slope: f64,
    x0: f64,
    y0: f64,
    /// Max overestimation `max(pred - y)` over the envelope set; widens the
    /// low side of the bound.
    err_over: u32,
    /// Max underestimation `max(y - pred)`; widens the high side.
    err_under: u32,
}

impl Leaf {
    #[inline]
    fn predict(&self, x: f64) -> f64 {
        self.y0 + self.slope * (x - self.x0)
    }

    fn from_model(m: &Model) -> Leaf {
        match *m {
            Model::Linear { slope, x0, y0 } => Leaf { slope, x0, y0, err_over: 0, err_under: 0 },
            _ => unreachable!("leaf models are always from the linear family"),
        }
    }
}

/// A two-stage recursive model index.
#[derive(Debug, Clone)]
pub struct Rmi<K: Key> {
    root: Model,
    leaves: Vec<Leaf>,
    /// `branch / n`, precomputed for bucket selection.
    scale: f64,
    n: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Key> Rmi<K> {
    /// Build an RMI over `data`.
    pub fn build(
        data: &SortedData<K>,
        root_kind: ModelKind,
        leaf_kind: ModelKind,
        branch: usize,
    ) -> Result<Self, BuildError> {
        if branch == 0 || branch > (1 << 26) {
            return Err(BuildError::InvalidConfig(format!(
                "branching factor must be in 1..=2^26, got {branch}"
            )));
        }
        if !matches!(leaf_kind, ModelKind::Linear | ModelKind::LinearSpline) {
            return Err(BuildError::InvalidConfig(format!(
                "leaf models must be linear or spline, got {leaf_kind:?}"
            )));
        }
        let keys = data.keys();
        let n = keys.len();
        let positions: Vec<usize> = (0..n).collect();

        // Stage one: fit on a subsample for large datasets (deterministic).
        let step = (n / (1 << 20)).max(1);
        let root = if step == 1 {
            model::fit(root_kind, keys, &positions, n as f64)
        } else {
            let ks: Vec<K> = keys.iter().copied().step_by(step).collect();
            let ps: Vec<usize> = positions.iter().copied().step_by(step).collect();
            model::fit(root_kind, &ks, &ps, n as f64)
        };
        let scale = branch as f64 / n as f64;

        // Assign keys to buckets; clamp monotone against float jitter.
        let bucket_of = |key: K| -> usize {
            let p = root.predict(key) * scale;
            if p.is_nan() || p <= 0.0 {
                0
            } else {
                (p as usize).min(branch - 1)
            }
        };
        let mut starts = vec![0usize; branch + 1];
        let mut cur = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let b = bucket_of(k).max(cur);
            while cur < b {
                cur += 1;
                starts[cur] = i;
            }
        }
        while cur < branch {
            cur += 1;
            starts[cur] = n;
        }

        // Stage two: fit one linear leaf per bucket and measure its error
        // envelope including one boundary key on each side.
        let mut leaves = Vec::with_capacity(branch);
        for b in 0..branch {
            let (s, e) = (starts[b], starts[b + 1]);
            let fitted = if e > s {
                model::fit(leaf_kind, &keys[s..e], &positions[s..e], n as f64)
            } else {
                Model::Linear { slope: 0.0, x0: 0.0, y0: s as f64 }
            };
            let mut leaf = Leaf::from_model(&fitted);
            let lo_i = s.saturating_sub(1);
            let hi_i = e.min(n - 1);
            let mut err_over = 0f64;
            let mut err_under = 0f64;
            #[allow(clippy::needless_range_loop)] // i is both index and target rank
            for i in lo_i..=hi_i {
                let pred = leaf.predict(keys[i].to_f64());
                err_over = err_over.max(pred - i as f64);
                err_under = err_under.max(i as f64 - pred);
            }
            leaf.err_over = err_over.ceil().min(u32::MAX as f64) as u32;
            leaf.err_under = err_under.ceil().min(u32::MAX as f64) as u32;
            leaves.push(leaf);
        }

        Ok(Rmi { root, leaves, scale, n, _marker: std::marker::PhantomData })
    }

    /// The branching factor (number of second-stage models).
    pub fn branching_factor(&self) -> usize {
        self.leaves.len()
    }

    /// Mean of the stored per-leaf error spans, weighted equally per leaf.
    pub fn mean_leaf_error(&self) -> f64 {
        let total: f64 = self.leaves.iter().map(|l| (l.err_over + l.err_under) as f64).sum();
        total / self.leaves.len() as f64
    }

    #[inline]
    fn bucket(&self, key: K) -> usize {
        let p = self.root.predict(key) * self.scale;
        if p.is_nan() || p <= 0.0 {
            0
        } else {
            (p as usize).min(self.leaves.len() - 1)
        }
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        tracer.instr(self.root.instr_cost() + 3);
        let b = self.bucket(key);
        tracer.read(addr_of_index(&self.leaves, b), std::mem::size_of::<Leaf>());
        let leaf = &self.leaves[b];
        tracer.instr(8);
        let p = leaf.predict(key.to_f64());
        let lo_f = p - leaf.err_over as f64 - 1.0;
        let hi_f = p + leaf.err_under as f64 + 2.0;
        let lo = if lo_f <= 0.0 { 0 } else { (lo_f as usize).min(self.n) };
        let hi = if hi_f <= 0.0 { 0 } else { (hi_f as usize).min(self.n) };
        SearchBound { lo, hi: hi.max(lo) }
    }
}

impl<K: Key> Index<K> for Rmi<K> {
    fn name(&self) -> &'static str {
        "RMI"
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Model>() + self.leaves.len() * std::mem::size_of::<Leaf>()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: false, ordered: true, kind: IndexKind::Learned }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`Rmi`]: one Figure-7 point per configuration.
#[derive(Debug, Clone)]
pub struct RmiBuilder {
    /// Stage-one model family.
    pub root_kind: ModelKind,
    /// Stage-two model family (linear family only).
    pub leaf_kind: ModelKind,
    /// Number of stage-two models.
    pub branch: usize,
}

impl Default for RmiBuilder {
    fn default() -> Self {
        RmiBuilder { root_kind: ModelKind::Cubic, leaf_kind: ModelKind::Linear, branch: 1 << 14 }
    }
}

impl<K: Key> IndexBuilder<K> for RmiBuilder {
    type Output = Rmi<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        Rmi::build(data, self.root_kind, self.leaf_kind, self.branch)
    }

    fn describe(&self) -> String {
        format!("RMI[{},{},b={}]", self.root_kind.label(), self.leaf_kind.label(), self.branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::CountingTracer;

    fn validity_probes(data: &SortedData<u64>) -> Vec<u64> {
        let mut probes: Vec<u64> = data.keys().to_vec();
        probes.extend(data.keys().iter().map(|&k| k.saturating_add(1)));
        probes.extend(data.keys().iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, 1, u64::MAX, u64::MAX - 1, u64::MAX / 2]);
        probes
    }

    fn check_validity(keys: Vec<u64>, root: ModelKind, branch: usize) {
        let data = SortedData::new(keys).unwrap();
        let rmi = Rmi::build(&data, root, ModelKind::Linear, branch).unwrap();
        for x in validity_probes(&data) {
            let b = rmi.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "{root:?} branch={branch} x={x} bound={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_linear_data_all_roots() {
        let keys: Vec<u64> = (0..2000).map(|i| i * 13 + 5).collect();
        for root in ModelKind::ROOT_KINDS {
            for branch in [1, 2, 16, 256, 4096] {
                check_validity(keys.clone(), root, branch);
            }
        }
    }

    #[test]
    fn valid_on_quadratic_data_all_roots() {
        let keys: Vec<u64> = (0..2000u64).map(|i| i * i).collect();
        for root in ModelKind::ROOT_KINDS {
            check_validity(keys.clone(), root, 64);
        }
    }

    #[test]
    fn valid_on_clustered_data() {
        let mut keys: Vec<u64> = (0..500).collect();
        keys.extend((0..500).map(|i| 1_000_000_000 + i * 3));
        keys.extend((0..500).map(|i| (1u64 << 60) + i * 1_000_000));
        for root in ModelKind::ROOT_KINDS {
            check_validity(keys.clone(), root, 128);
        }
    }

    #[test]
    fn valid_with_duplicates() {
        let mut keys = vec![7u64; 300];
        keys.extend(vec![9u64; 300]);
        keys.extend((10..500u64).map(|i| i * 2));
        keys.sort_unstable();
        for root in ModelKind::ROOT_KINDS {
            check_validity(keys.clone(), root, 32);
        }
    }

    #[test]
    fn valid_with_extreme_outliers() {
        // face-style: low bulk plus giant outliers.
        let mut keys: Vec<u64> = (0..1000).map(|i| i * 7 + 1).collect();
        keys.extend([u64::MAX - 10, u64::MAX - 5, u64::MAX - 1]);
        for root in ModelKind::ROOT_KINDS {
            check_validity(keys.clone(), root, 64);
        }
    }

    #[test]
    fn single_key_dataset() {
        check_validity(vec![42], ModelKind::Linear, 8);
    }

    #[test]
    fn branch_one_is_a_single_model() {
        let keys: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let data = SortedData::new(keys).unwrap();
        let rmi = Rmi::build(&data, ModelKind::Linear, ModelKind::Linear, 1).unwrap();
        assert_eq!(rmi.branching_factor(), 1);
        for x in validity_probes(&data) {
            assert!(rmi.search_bound(x).contains(data.lower_bound(x)));
        }
    }

    #[test]
    fn more_branches_tighter_bounds() {
        let keys: Vec<u64> = (0..20_000u64).map(|i| ((i as f64).powf(1.4)) as u64 * 3).collect();
        let mut keys = keys;
        keys.dedup();
        let data = SortedData::new(keys).unwrap();
        let small = Rmi::build(&data, ModelKind::Cubic, ModelKind::Linear, 4).unwrap();
        let large = Rmi::build(&data, ModelKind::Cubic, ModelKind::Linear, 4096).unwrap();
        let avg = |r: &Rmi<u64>| -> f64 {
            data.keys().iter().step_by(37).map(|&k| r.search_bound(k).len() as f64).sum::<f64>()
                / (data.len() / 37) as f64
        };
        assert!(avg(&large) * 4.0 < avg(&small), "large {} vs small {}", avg(&large), avg(&small));
    }

    #[test]
    fn size_scales_with_branch() {
        let data = SortedData::new((0..1000u64).collect()).unwrap();
        let a = Rmi::build(&data, ModelKind::Linear, ModelKind::Linear, 16).unwrap();
        let b = Rmi::build(&data, ModelKind::Linear, ModelKind::Linear, 1024).unwrap();
        assert!(Index::<u64>::size_bytes(&b) > Index::<u64>::size_bytes(&a) * 50);
    }

    #[test]
    fn traced_inference_is_one_leaf_read_no_branches() {
        let data = SortedData::new((0..10_000u64).map(|i| i * 5).collect()).unwrap();
        let rmi = Rmi::build(&data, ModelKind::Cubic, ModelKind::Linear, 512).unwrap();
        let mut t = CountingTracer::default();
        rmi.search_bound_traced(25_000, &mut t);
        assert_eq!(t.reads, 1, "RMI inference should read exactly one leaf");
        assert_eq!(t.branches, 0, "RMI inference is branch-free");
        assert!(t.instructions > 0);
    }

    #[test]
    fn rejects_bad_configs() {
        let data = SortedData::new(vec![1u64, 2, 3]).unwrap();
        assert!(Rmi::build(&data, ModelKind::Linear, ModelKind::Linear, 0).is_err());
        assert!(Rmi::build(&data, ModelKind::Linear, ModelKind::Cubic, 4).is_err());
        assert!(Rmi::build(&data, ModelKind::Linear, ModelKind::Linear, 1 << 27).is_err());
    }

    #[test]
    fn works_with_u32_keys() {
        let keys: Vec<u32> = (0..3000u32).map(|i| i * 11).collect();
        let data = SortedData::new(keys).unwrap();
        let rmi = Rmi::build(&data, ModelKind::Cubic, ModelKind::Linear, 64).unwrap();
        for &k in data.keys() {
            for probe in [k.saturating_sub(1), k, k.saturating_add(1)] {
                assert!(rmi.search_bound(probe).contains(data.lower_bound(probe)));
            }
        }
    }
}
