//! Radix binary search (RBS): a single radix lookup table over the data.
//!
//! For a radix width `r`, the table has `2^r + 1` entries; entry `p` holds
//! the number of keys whose `r`-bit prefix is `< p`. A lookup extracts the
//! prefix `p` of the key and returns the bound `[table[p], table[p+1]]` with
//! a single shift and two adjacent table reads — which is why RBS is so
//! competitive on prefix-uniform data and nearly useless on `face`, whose
//! ~100 giant outliers stretch the prefix space (Section 4.2).

use sosd_core::trace::addr_of_index;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// The RBS lookup table.
///
/// Prefixes are taken over the *occupied key range* (`key - min_key`,
/// shifted by the range's significant bits), like the SOSD reference: a
/// dataset spanning only 48 of 64 bits still uses the full table, while
/// outliers that inflate the range (face) degrade it — the exact behaviour
/// the paper analyzes.
#[derive(Debug, Clone)]
pub struct RadixBinarySearch<K: Key> {
    /// `table[p]` = number of keys with normalized prefix `< p`;
    /// length `2^r + 1`.
    table: Vec<u64>,
    radix_bits: u32,
    /// Subtracted from keys before prefix extraction.
    min_key: u64,
    /// Right-shift turning a normalized key into a table slot.
    shift: u32,
    n: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Key> RadixBinarySearch<K> {
    /// Build over sorted data with an `r`-bit prefix table.
    pub fn build(data: &SortedData<K>, radix_bits: u32) -> Result<Self, BuildError> {
        if radix_bits == 0 || radix_bits > K::BITS {
            return Err(BuildError::InvalidConfig(format!(
                "radix_bits must be in 1..={}, got {radix_bits}",
                K::BITS
            )));
        }
        if radix_bits > 28 {
            return Err(BuildError::InvalidConfig(format!(
                "radix_bits {radix_bits} would allocate a {}-entry table",
                1u64 << radix_bits
            )));
        }
        let min_key = data.min_key().to_u64();
        let span = data.max_key().to_u64() - min_key;
        let span_bits = 64 - span.leading_zeros().min(63);
        let shift = span_bits.saturating_sub(radix_bits);
        let slots = 1usize << radix_bits;
        let mut table = vec![0u64; slots + 1];
        // Count keys per prefix, then prefix-sum into cumulative offsets.
        for &k in data.keys() {
            let p = (((k.to_u64() - min_key) >> shift) as usize).min(slots - 1);
            table[p + 1] += 1;
        }
        for p in 1..=slots {
            table[p] += table[p - 1];
        }
        Ok(RadixBinarySearch {
            table,
            radix_bits,
            min_key,
            shift,
            n: data.len(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Configured radix width.
    pub fn radix_bits(&self) -> u32 {
        self.radix_bits
    }

    #[inline]
    fn slot_of(&self, key: K) -> usize {
        let k = key.to_u64().saturating_sub(self.min_key);
        ((k >> self.shift) as usize).min(self.table.len() - 2)
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let p = self.slot_of(key);
        tracer.instr(5); // sub, shift, min, two loads' address arithmetic
        tracer.read(addr_of_index(&self.table, p), 16); // adjacent entries
        SearchBound { lo: self.table[p] as usize, hi: (self.table[p + 1] as usize).min(self.n) }
    }
}

impl<K: Key> Index<K> for RadixBinarySearch<K> {
    fn name(&self) -> &'static str {
        "RBS"
    }

    fn size_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: false, ordered: true, kind: IndexKind::LookupTable }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`RadixBinarySearch`]; sweep `radix_bits` for Figure 7.
#[derive(Debug, Clone)]
pub struct RbsBuilder {
    /// Prefix width in bits (table has `2^radix_bits + 1` entries).
    pub radix_bits: u32,
}

impl<K: Key> IndexBuilder<K> for RbsBuilder {
    type Output = RadixBinarySearch<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        RadixBinarySearch::build(data, self.radix_bits)
    }

    fn describe(&self) -> String {
        format!("RBS[r={}]", self.radix_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::CountingTracer;

    fn check_validity(keys: Vec<u64>, radix_bits: u32) {
        let data = SortedData::new(keys).unwrap();
        let idx = RadixBinarySearch::build(&data, radix_bits).unwrap();
        // Probe present keys, midpoints, and extremes.
        let mut probes: Vec<u64> = data.keys().to_vec();
        probes.extend(data.keys().iter().map(|&k| k.saturating_add(1)));
        probes.extend([0, u64::MAX, u64::MAX / 2]);
        for x in probes {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "r={radix_bits} x={x} bound={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_spread_out_keys() {
        check_validity(vec![1u64 << 10, 1 << 20, 1 << 40, 1 << 60, u64::MAX - 5], 8);
    }

    #[test]
    fn valid_on_dense_keys() {
        check_validity((0..1000u64).collect(), 8);
        check_validity((0..1000u64).map(|i| i * 3 + 7).collect(), 12);
    }

    #[test]
    fn valid_with_duplicates() {
        check_validity(vec![5, 5, 5, 9, 9, 1 << 50, 1 << 50], 6);
    }

    #[test]
    fn tight_bounds_on_prefix_uniform_data() {
        // Keys evenly spread over the full u64 space: each 8-bit prefix
        // bucket holds ~4 keys, so bounds should be ~4 wide.
        let n = 1024u64;
        let keys: Vec<u64> = (0..n).map(|i| i << 54).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = RadixBinarySearch::build(&data, 8).unwrap();
        let avg: f64 =
            data.keys().iter().map(|&k| idx.search_bound(k).len() as f64).sum::<f64>() / n as f64;
        assert!(avg <= 5.0, "avg bound {avg}");
    }

    #[test]
    fn outliers_ruin_the_table() {
        // face-style: everything in a narrow low range plus one huge key
        // makes every prefix collapse into bucket 0.
        let mut keys: Vec<u64> = (0..1000u64).map(|i| i + 1).collect();
        keys.push(u64::MAX - 1);
        let data = SortedData::new(keys).unwrap();
        let idx = RadixBinarySearch::build(&data, 8).unwrap();
        let b = idx.search_bound(500);
        assert!(b.len() >= 1000, "bound should be near-useless, got {b:?}");
    }

    #[test]
    fn rejects_bad_config() {
        let data = SortedData::new(vec![1u64, 2]).unwrap();
        assert!(RadixBinarySearch::build(&data, 0).is_err());
        assert!(RadixBinarySearch::build(&data, 65).is_err());
        assert!(RadixBinarySearch::build(&data, 29).is_err());
    }

    #[test]
    fn size_grows_with_radix_bits() {
        let data = SortedData::new((0..100u64).collect()).unwrap();
        let small = RadixBinarySearch::build(&data, 4).unwrap();
        let large = RadixBinarySearch::build(&data, 12).unwrap();
        assert!(Index::<u64>::size_bytes(&large) > Index::<u64>::size_bytes(&small));
        assert_eq!(Index::<u64>::size_bytes(&small), (16 + 1) * 8);
    }

    #[test]
    fn traced_lookup_reports_one_table_read() {
        let data = SortedData::new((0..100u64).map(|i| i << 40).collect()).unwrap();
        let idx = RadixBinarySearch::build(&data, 8).unwrap();
        let mut t = CountingTracer::default();
        let b = idx.search_bound_traced(5u64 << 40, &mut t);
        assert_eq!(t.reads, 1);
        assert!(b.contains(data.lower_bound(5u64 << 40)));
    }

    #[test]
    fn works_for_u32_keys() {
        let keys: Vec<u32> = (0..500u32).map(|i| i * 1000).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = RadixBinarySearch::build(&data, 8).unwrap();
        for &k in data.keys() {
            assert!(idx.search_bound(k).contains(data.lower_bound(k)));
        }
    }
}
