//! Binary search: the size-zero baseline (the black horizontal line in
//! Figure 7).

use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, SearchBound, SortedData, Tracer,
};

/// An "index" that performs no indexing: every lookup gets the full-array
/// bound and the last-mile search does all the work.
#[derive(Debug, Clone)]
pub struct BinarySearchIndex {
    n: usize,
}

impl BinarySearchIndex {
    /// Create over an array of `n` keys.
    pub fn new(n: usize) -> Self {
        BinarySearchIndex { n }
    }
}

impl<K: Key> Index<K> for BinarySearchIndex {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn size_bytes(&self) -> usize {
        0
    }

    #[inline]
    fn search_bound(&self, _key: K) -> SearchBound {
        SearchBound::full(self.n)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: false, ordered: true, kind: IndexKind::BinarySearch }
    }

    fn search_bound_traced(&self, _key: K, tracer: &mut dyn Tracer) -> SearchBound {
        tracer.instr(1);
        SearchBound::full(self.n)
    }
}

/// Builder for [`BinarySearchIndex`] (no knobs).
#[derive(Debug, Clone, Default)]
pub struct BsBuilder;

impl<K: Key> IndexBuilder<K> for BsBuilder {
    type Output = BinarySearchIndex;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        Ok(BinarySearchIndex::new(data.len()))
    }

    fn describe(&self) -> String {
        "BS".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::search::binary_search;

    #[test]
    fn full_bound_always_valid() {
        let data = SortedData::new(vec![2u64, 4, 8, 16]).unwrap();
        let idx = <BsBuilder as IndexBuilder<u64>>::build(&BsBuilder, &data).unwrap();
        for x in 0..20u64 {
            let b = Index::<u64>::search_bound(&idx, x);
            assert_eq!(binary_search(data.keys(), x, b), data.lower_bound(x));
        }
        assert_eq!(Index::<u64>::size_bytes(&idx), 0);
    }
}
