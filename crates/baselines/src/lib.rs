//! # sosd-baselines
//!
//! The two naive baselines of the paper: plain binary search (`BS`, size
//! zero) and radix binary search (`RBS`), the lookup-table-only technique of
//! Kipf et al. (SOSD, 2019). RBS stores just the radix table that
//! RadixSpline would build over its spline points, but built directly over
//! the data — a `2^r`-entry prefix table mapping each `r`-bit key prefix to
//! the range of positions holding that prefix.

pub mod bs;
pub mod rbs;

pub use bs::{BinarySearchIndex, BsBuilder};
pub use rbs::{RadixBinarySearch, RbsBuilder};
