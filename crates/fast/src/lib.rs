//! # sosd-fast
//!
//! FAST-style architecture-sensitive tree (Kim et al., SIGMOD 2010).
//!
//! FAST lays a binary search tree out in breadth-first order, blocked to
//! cache lines and SIMD registers, so descent is branch-free and
//! memory-streaming. The original uses AVX-512 16-way comparisons; this
//! reproduction keeps the architecture-sensitive *layout* — a 1-based
//! Eytzinger (BFS) array whose hot top levels stay resident in cache — with
//! branch-free conditional-move descent, which is the property driving the
//! paper's comparisons (few branch misses, high instruction throughput).
//! The SIMD-width substitution is documented in DESIGN.md.
//!
//! Like the other trees, size/accuracy trades via the sampling stride.

use sosd_core::stride::Stride;
use sosd_core::trace::addr_of_index;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// FAST-style branch-free BFS-layout tree over every `stride`-th key.
#[derive(Debug, Clone)]
pub struct FastIndex<K: Key> {
    /// Sampled keys in Eytzinger order; element 0 is a filler so the tree is
    /// 1-based (`children of i` = `2i`, `2i+1`).
    eytzinger: Vec<K>,
    /// Sorted-order slot of each Eytzinger element (parallel array).
    slots: Vec<u32>,
    geometry: Stride,
}

/// Fill `out[1..]` with the Eytzinger permutation of `sorted`.
fn eytzingerize<K: Key>(sorted: &[K], out: &mut [K], slots: &mut [u32], i: usize, pos: &mut usize) {
    if i < out.len() {
        eytzingerize(sorted, out, slots, 2 * i, pos);
        out[i] = sorted[*pos];
        slots[i] = *pos as u32;
        *pos += 1;
        eytzingerize(sorted, out, slots, 2 * i + 1, pos);
    }
}

impl<K: Key> FastIndex<K> {
    /// Build with the given sampling stride.
    pub fn build(data: &SortedData<K>, stride: usize) -> Result<Self, BuildError> {
        let geometry = Stride::new(stride, data.len());
        let sampled = geometry.sample(data.keys());
        let m = sampled.len();
        let mut eytzinger = vec![K::MIN_KEY; m + 1];
        let mut slots = vec![0u32; m + 1];
        let mut pos = 0usize;
        eytzingerize(&sampled, &mut eytzinger, &mut slots, 1, &mut pos);
        debug_assert_eq!(pos, m);
        Ok(FastIndex { eytzinger, slots, geometry })
    }

    /// Number of indexed (sampled) keys.
    pub fn num_keys(&self) -> usize {
        self.eytzinger.len() - 1
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let a = &self.eytzinger;
        let m = a.len();
        let mut i = 1usize;
        // Branch-free descent: the comparison feeds the index arithmetic.
        while i < m {
            tracer.read(addr_of_index(a, i), std::mem::size_of::<K>());
            tracer.instr(4); // cmp + lea-style index update, no jcc
            i = 2 * i + usize::from(a[i] < key);
        }
        // Undo the final descents that ran off the tree: shift out the
        // trailing ones plus the leading step.
        i >>= (i.trailing_ones() + 1).min(63);
        tracer.instr(3);
        let rank = if i == 0 {
            // Every sampled key is < lookup key.
            self.num_keys()
        } else {
            self.slots[i] as usize
        };
        self.geometry.bound_for_pred_slot(rank.checked_sub(1))
    }
}

impl<K: Key> Index<K> for FastIndex<K> {
    fn name(&self) -> &'static str {
        "FAST"
    }

    fn size_bytes(&self) -> usize {
        self.eytzinger.len() * std::mem::size_of::<K>() + self.slots.len() * 4
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: false, ordered: true, kind: IndexKind::Tree }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`FastIndex`].
#[derive(Debug, Clone)]
pub struct FastBuilder {
    /// Index every `stride`-th key.
    pub stride: usize,
}

impl Default for FastBuilder {
    fn default() -> Self {
        FastBuilder { stride: 1 }
    }
}

impl FastBuilder {
    /// Ten-configuration size sweep for Figure 7.
    pub fn size_sweep() -> Vec<FastBuilder> {
        [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512]
            .into_iter()
            .map(|stride| FastBuilder { stride })
            .collect()
    }
}

impl<K: Key> IndexBuilder<K> for FastBuilder {
    type Output = FastIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        FastIndex::build(data, self.stride)
    }

    fn describe(&self) -> String {
        format!("FAST[stride={}]", self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::util::XorShift64;

    fn check_validity(keys: Vec<u64>, stride: usize) {
        let data = SortedData::new(keys.clone()).unwrap();
        let idx = FastIndex::build(&data, stride).unwrap();
        let mut probes: Vec<u64> = keys.clone();
        probes.extend(keys.iter().map(|&k| k.saturating_add(1)));
        probes.extend(keys.iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, u64::MAX]);
        for x in probes {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "stride={stride} x={x} bound={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_dense_and_sparse() {
        check_validity((0..1000u64).collect(), 1);
        check_validity((0..1000u64).map(|i| i * 1_000_003).collect(), 1);
    }

    #[test]
    fn valid_across_strides() {
        for stride in [1, 2, 3, 7, 64, 10_000] {
            check_validity((0..500u64).map(|i| i * 5 + 2).collect(), stride);
        }
    }

    #[test]
    fn valid_with_duplicates() {
        let mut keys = vec![4u64; 50];
        keys.extend(vec![9u64; 50]);
        keys.extend((10..200u64).map(|i| i * 2));
        keys.sort_unstable();
        check_validity(keys.clone(), 1);
        check_validity(keys, 4);
    }

    #[test]
    fn valid_on_random_sizes() {
        // Exercise non-power-of-two tree sizes (the rank-recovery shift is
        // the classic source of off-by-ones).
        let mut rng = XorShift64::new(3);
        for _ in 0..30 {
            let n = 1 + rng.next_below(300) as usize;
            let mut keys: Vec<u64> = (0..n as u64).map(|i| i * (1 + rng.next_below(50))).collect();
            keys.sort_unstable();
            check_validity(keys, 1);
        }
    }

    #[test]
    fn eytzinger_rank_matches_partition_point() {
        let keys: Vec<u64> = (0..777u64).map(|i| i * 3).collect();
        let data = SortedData::new(keys.clone()).unwrap();
        let idx = FastIndex::build(&data, 1).unwrap();
        for x in 0..2400u64 {
            let b = idx.search_bound(x);
            let lb = keys.partition_point(|&k| k < x);
            assert!(b.contains(lb), "x={x} b={b:?} lb={lb}");
            assert!(b.len() <= 1, "stride-1 bounds should be tight");
        }
    }

    #[test]
    fn traced_descent_is_branch_free() {
        use sosd_core::CountingTracer;
        let data = SortedData::new((0..4096u64).collect()).unwrap();
        let idx = FastIndex::build(&data, 1).unwrap();
        let mut t = CountingTracer::default();
        idx.search_bound_traced(2048u64, &mut t);
        assert_eq!(t.branches, 0, "FAST descent uses conditional moves");
        assert_eq!(t.reads, 12, "log2(4096) probes");
    }
}
