//! An insertable in-memory B+Tree — the "insert-optimized traditional"
//! baseline the paper's conclusion measures learned structures against.
//!
//! Section 4.6 of the paper observes that "BTrees, FST, and Wormhole provide
//! the fastest build times, as these structures were designed to support fast
//! updates". The static [`crate::tree::BTreeIndex`] cannot demonstrate that
//! property, so this module implements a textbook B+Tree: sorted keys in
//! every node, payloads only in leaves, leaves chained for range scans, and
//! top-down splits on overflow. It implements
//! [`sosd_core::DynamicOrderedIndex`], making it the traditional yardstick
//! for the updatable learned indexes (ALEX, dynamic PGM, FITing-Tree).

use sosd_core::dynamic::{BulkLoad, DynamicOrderedIndex};
use sosd_core::{Capabilities, IndexKind, Key};

/// Maximum number of keys per node. 32 eight-byte keys = 256 bytes = four
/// cache lines, matching the paper's STX-style node sizing.
const MAX_KEYS: usize = 32;
/// Minimum keys after a split (half of max, rounded down).
const SPLIT_POINT: usize = MAX_KEYS / 2;

/// Index of a node in the arena. `u32` keeps parent/child links compact.
type NodeId = u32;
const NO_NODE: NodeId = u32::MAX;

/// An inner node: router keys and child pointers (`children.len() ==
/// keys.len() + 1`). `keys[i]` is the smallest key reachable under
/// `children[i + 1]`.
struct InnerNode<K> {
    keys: Vec<K>,
    children: Vec<NodeId>,
}

/// A leaf node: sorted key/payload pairs plus a link to the next leaf.
struct LeafNode<K> {
    keys: Vec<K>,
    payloads: Vec<u64>,
    next: NodeId,
}

enum Node<K> {
    Inner(InnerNode<K>),
    Leaf(LeafNode<K>),
}

/// An insertable B+Tree mapping keys to 8-byte payloads.
///
/// Nodes live in an arena (`Vec<Node>`); child links are arena indexes. This
/// avoids both `unsafe` pointer plumbing and per-node allocations, and makes
/// [`DynamicOrderedIndex::size_bytes`] straightforward to compute.
pub struct DynamicBTree<K: Key> {
    nodes: Vec<Node<K>>,
    root: NodeId,
    len: usize,
    /// Height of the tree (1 = root is a leaf); lets insert pre-allocate its
    /// descent stack without touching the heap in the common case.
    height: usize,
}

impl<K: Key> Default for DynamicBTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> DynamicBTree<K> {
    /// An empty tree whose root is a leaf.
    pub fn new() -> Self {
        let root_leaf =
            Node::Leaf(LeafNode { keys: Vec::new(), payloads: Vec::new(), next: NO_NODE });
        DynamicBTree { nodes: vec![root_leaf], root: 0, len: 0, height: 1 }
    }

    /// Descend from the root to the leaf that should contain `key`,
    /// recording the path of (inner node, child slot) pairs.
    fn descend(&self, key: K, path: &mut Vec<(NodeId, usize)>) -> NodeId {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Inner(inner) => {
                    // First router key > `key` selects the child: keys equal
                    // to the router go right (routers are copies of leaf
                    // separator keys).
                    let slot = inner.keys.partition_point(|&k| k <= key);
                    path.push((id, slot));
                    id = inner.children[slot];
                }
                Node::Leaf(_) => return id,
            }
        }
    }

    fn leaf(&self, id: NodeId) -> &LeafNode<K> {
        match &self.nodes[id as usize] {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("leaf id points at inner node"),
        }
    }

    fn leaf_mut(&mut self, id: NodeId) -> &mut LeafNode<K> {
        match &mut self.nodes[id as usize] {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("leaf id points at inner node"),
        }
    }

    fn alloc(&mut self, node: Node<K>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        id
    }

    /// Split the overflowing leaf `id`, returning `(separator, new_leaf)`.
    /// The separator is the first key of the new (right) leaf.
    fn split_leaf(&mut self, id: NodeId) -> (K, NodeId) {
        let (right_keys, right_payloads, old_next) = {
            let leaf = self.leaf_mut(id);
            let right_keys: Vec<K> = leaf.keys.split_off(SPLIT_POINT);
            let right_payloads: Vec<u64> = leaf.payloads.split_off(SPLIT_POINT);
            (right_keys, right_payloads, leaf.next)
        };
        let sep = right_keys[0];
        let new_id = self.alloc(Node::Leaf(LeafNode {
            keys: right_keys,
            payloads: right_payloads,
            next: old_next,
        }));
        self.leaf_mut(id).next = new_id;
        (sep, new_id)
    }

    /// Split the overflowing inner node `id`, returning `(separator,
    /// new_node)`. The separator moves up; it is *not* retained in either
    /// half (standard B-Tree inner split).
    fn split_inner(&mut self, id: NodeId) -> (K, NodeId) {
        let (sep, right_keys, right_children) = {
            let inner = match &mut self.nodes[id as usize] {
                Node::Inner(i) => i,
                Node::Leaf(_) => unreachable!("inner id points at leaf"),
            };
            let mut right_keys = inner.keys.split_off(SPLIT_POINT);
            let right_children = inner.children.split_off(SPLIT_POINT + 1);
            let sep = right_keys.remove(0);
            (sep, right_keys, right_children)
        };
        let new_id =
            self.alloc(Node::Inner(InnerNode { keys: right_keys, children: right_children }));
        (sep, new_id)
    }

    /// Insert, splitting any node that overflows along the path back up.
    fn insert_impl(&mut self, key: K, payload: u64) -> Option<u64> {
        let mut path = Vec::with_capacity(self.height);
        let leaf_id = self.descend(key, &mut path);

        // Insert into the leaf.
        {
            let leaf = self.leaf_mut(leaf_id);
            match leaf.keys.binary_search(&key) {
                Ok(i) => return Some(std::mem::replace(&mut leaf.payloads[i], payload)),
                Err(i) => {
                    leaf.keys.insert(i, key);
                    leaf.payloads.insert(i, payload);
                    self.len += 1;
                }
            }
        }

        // Propagate splits upward.
        if self.leaf(leaf_id).keys.len() <= MAX_KEYS {
            return None;
        }
        let (mut sep, mut new_child) = self.split_leaf(leaf_id);
        let mut child_id = leaf_id;
        loop {
            match path.pop() {
                Some((parent_id, slot)) => {
                    let overflow = {
                        let parent = match &mut self.nodes[parent_id as usize] {
                            Node::Inner(i) => i,
                            Node::Leaf(_) => unreachable!("path entry points at leaf"),
                        };
                        debug_assert_eq!(parent.children[slot], child_id);
                        parent.keys.insert(slot, sep);
                        parent.children.insert(slot + 1, new_child);
                        parent.keys.len() > MAX_KEYS
                    };
                    if !overflow {
                        return None;
                    }
                    let (s, n) = self.split_inner(parent_id);
                    sep = s;
                    new_child = n;
                    child_id = parent_id;
                }
                None => {
                    // Root split: grow the tree by one level.
                    let old_root = self.root;
                    debug_assert_eq!(old_root, child_id);
                    let new_root = self.alloc(Node::Inner(InnerNode {
                        keys: vec![sep],
                        children: vec![old_root, new_child],
                    }));
                    self.root = new_root;
                    self.height += 1;
                    return None;
                }
            }
        }
    }

    /// Leaf and in-leaf position of the smallest key `>= key`, if any.
    fn lower_bound_pos(&self, key: K) -> Option<(NodeId, usize)> {
        let mut path = Vec::with_capacity(self.height);
        let leaf_id = self.descend(key, &mut path);
        let leaf = self.leaf(leaf_id);
        let i = leaf.keys.partition_point(|&k| k < key);
        if i < leaf.keys.len() {
            return Some((leaf_id, i));
        }
        // The answer, if it exists, is the first key of a later leaf;
        // deletions can leave empty leaves in the chain, so skip them.
        let mut next = leaf.next;
        while next != NO_NODE {
            let next_leaf = self.leaf(next);
            if !next_leaf.keys.is_empty() {
                return Some((next, 0));
            }
            next = next_leaf.next;
        }
        None
    }

    /// Iterate entries in `[lo, hi)` via the leaf chain, applying `f`.
    fn scan<F: FnMut(K, u64)>(&self, lo: K, hi: K, mut f: F) {
        let Some((mut leaf_id, mut i)) = self.lower_bound_pos(lo) else {
            return;
        };
        loop {
            let leaf = self.leaf(leaf_id);
            while i < leaf.keys.len() {
                let k = leaf.keys[i];
                if k >= hi {
                    return;
                }
                f(k, leaf.payloads[i]);
                i += 1;
            }
            if leaf.next == NO_NODE {
                return;
            }
            leaf_id = leaf.next;
            i = 0;
        }
    }

    /// Number of levels (1 = the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Validate structural invariants (sorted nodes, router consistency,
    /// leaf-chain order). Used by tests; O(n).
    pub fn check_invariants(&self) {
        self.check_node(self.root, None, None);
        // Leaf chain must yield globally sorted keys.
        let mut prev: Option<K> = None;
        let mut leaf_id = self.leftmost_leaf();
        while leaf_id != NO_NODE {
            let leaf = self.leaf(leaf_id);
            for &k in &leaf.keys {
                if let Some(p) = prev {
                    assert!(p < k, "leaf chain out of order: {p} !< {k}");
                }
                prev = Some(k);
            }
            leaf_id = leaf.next;
        }
    }

    fn leftmost_leaf(&self) -> NodeId {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Inner(inner) => id = inner.children[0],
                Node::Leaf(_) => return id,
            }
        }
    }

    fn check_node(&self, id: NodeId, lo: Option<K>, hi: Option<K>) {
        match &self.nodes[id as usize] {
            Node::Leaf(leaf) => {
                assert_eq!(leaf.keys.len(), leaf.payloads.len());
                for w in leaf.keys.windows(2) {
                    assert!(w[0] < w[1], "leaf keys not strictly sorted");
                }
                for &k in &leaf.keys {
                    if let Some(lo) = lo {
                        assert!(k >= lo, "leaf key {k} below router bound {lo}");
                    }
                    if let Some(hi) = hi {
                        assert!(k < hi, "leaf key {k} not below router bound {hi}");
                    }
                }
            }
            Node::Inner(inner) => {
                assert_eq!(inner.children.len(), inner.keys.len() + 1);
                for w in inner.keys.windows(2) {
                    assert!(w[0] < w[1], "inner keys not strictly sorted");
                }
                for (i, &child) in inner.children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(inner.keys[i - 1]) };
                    let child_hi = if i == inner.keys.len() { hi } else { Some(inner.keys[i]) };
                    self.check_node(child, child_lo, child_hi);
                }
            }
        }
    }
}

impl<K: Key> BulkLoad<K> for DynamicBTree<K> {
    /// Build bottom-up from sorted pairs: pack leaves to ~87% fill (so early
    /// inserts don't immediately split every leaf), then build inner levels
    /// over the leaf separators.
    fn bulk_load(keys: &[K], payloads: &[u64]) -> Self {
        assert_eq!(keys.len(), payloads.len());
        if keys.is_empty() {
            return DynamicBTree::new();
        }
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "bulk_load requires strictly sorted keys"
        );

        let per_leaf = (MAX_KEYS * 7) / 8;
        let mut nodes: Vec<Node<K>> = Vec::new();
        // (first key, node id) for the level currently being built.
        let mut level: Vec<(K, NodeId)> = Vec::new();

        for chunk_start in (0..keys.len()).step_by(per_leaf) {
            let chunk_end = (chunk_start + per_leaf).min(keys.len());
            let id = nodes.len() as NodeId;
            nodes.push(Node::Leaf(LeafNode {
                keys: keys[chunk_start..chunk_end].to_vec(),
                payloads: payloads[chunk_start..chunk_end].to_vec(),
                next: NO_NODE,
            }));
            level.push((keys[chunk_start], id));
        }
        // Chain the leaves.
        for i in 0..level.len().saturating_sub(1) {
            let next_id = level[i + 1].1;
            match &mut nodes[level[i].1 as usize] {
                Node::Leaf(l) => l.next = next_id,
                Node::Inner(_) => unreachable!(),
            }
        }

        let mut height = 1;
        while level.len() > 1 {
            let per_inner = MAX_KEYS; // children per inner node
            let mut next_level: Vec<(K, NodeId)> = Vec::new();
            for chunk in level.chunks(per_inner) {
                let children: Vec<NodeId> = chunk.iter().map(|&(_, id)| id).collect();
                let inner_keys: Vec<K> = chunk[1..].iter().map(|&(k, _)| k).collect();
                let id = nodes.len() as NodeId;
                nodes.push(Node::Inner(InnerNode { keys: inner_keys, children }));
                next_level.push((chunk[0].0, id));
            }
            level = next_level;
            height += 1;
        }

        DynamicBTree { root: level[0].1, nodes, len: keys.len(), height }
    }
}

impl<K: Key> DynamicOrderedIndex<K> for DynamicBTree<K> {
    fn name(&self) -> &'static str {
        "B+Tree(dyn)"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        let mut total =
            std::mem::size_of::<Self>() + self.nodes.capacity() * std::mem::size_of::<Node<K>>();
        for node in &self.nodes {
            total += match node {
                Node::Inner(i) => {
                    i.keys.capacity() * std::mem::size_of::<K>() + i.children.capacity() * 4
                }
                Node::Leaf(l) => {
                    l.keys.capacity() * std::mem::size_of::<K>() + l.payloads.capacity() * 8
                }
            };
        }
        total
    }

    fn insert(&mut self, key: K, payload: u64) -> Option<u64> {
        self.insert_impl(key, payload)
    }

    /// Erase from the leaf without rebalancing (the strategy of several
    /// production B-Trees, e.g. PostgreSQL's nbtree, which only recycles
    /// fully empty pages): underfull leaves are tolerated and empty leaves
    /// are skipped by the chain walkers.
    fn remove(&mut self, key: K) -> Option<u64> {
        let mut path = Vec::with_capacity(self.height);
        let leaf_id = self.descend(key, &mut path);
        let leaf = self.leaf_mut(leaf_id);
        match leaf.keys.binary_search(&key) {
            Ok(i) => {
                leaf.keys.remove(i);
                let payload = leaf.payloads.remove(i);
                self.len -= 1;
                Some(payload)
            }
            Err(_) => None,
        }
    }

    fn get(&self, key: K) -> Option<u64> {
        let mut path = Vec::with_capacity(self.height);
        let leaf_id = self.descend(key, &mut path);
        let leaf = self.leaf(leaf_id);
        leaf.keys.binary_search(&key).ok().map(|i| leaf.payloads[i])
    }

    fn lower_bound_entry(&self, key: K) -> Option<(K, u64)> {
        self.lower_bound_pos(key).map(|(leaf_id, i)| {
            let leaf = self.leaf(leaf_id);
            (leaf.keys[i], leaf.payloads[i])
        })
    }

    fn range_sum(&self, lo: K, hi: K) -> u64 {
        let mut sum = 0u64;
        self.scan(lo, hi, |_, v| sum = sum.wrapping_add(v));
        sum
    }

    /// One descent plus a walk along the chained leaves — `O(log n + m)`,
    /// versus the trait default's one descent *per visited entry*. This is
    /// the primitive that makes wide scans through
    /// [`sosd_core::DynamicEngine`] and write-behind delta drains cheap.
    fn for_each_in(&self, lo: K, hi: K, f: &mut dyn FnMut(K, u64)) {
        self.scan(lo, hi, f);
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Tree }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_tree_has_no_entries() {
        let t = DynamicBTree::<u64>::new();
        assert_eq!(t.get(42), None);
        assert_eq!(t.lower_bound_entry(0), None);
        assert_eq!(t.range_sum(0, u64::MAX), 0);
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut t = DynamicBTree::new();
        for k in 0..10_000u64 {
            assert_eq!(t.insert(k, k * 3), None);
        }
        t.check_invariants();
        assert_eq!(t.len(), 10_000);
        assert!(t.height() > 1, "10k sequential inserts must split the root");
        for k in (0..10_000u64).step_by(97) {
            assert_eq!(t.get(k), Some(k * 3));
        }
        assert_eq!(t.get(10_000), None);
    }

    #[test]
    fn random_inserts_match_btreemap() {
        let mut t = DynamicBTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..20_000u64 {
            let k = splitmix(i) % 5_000; // force duplicates/overwrites
            let v = splitmix(i ^ 0xdead);
            assert_eq!(t.insert(k, v), oracle.insert(k, v), "insert #{i} key {k}");
        }
        t.check_invariants();
        assert_eq!(t.len(), oracle.len());
        for k in 0..5_000u64 {
            assert_eq!(t.get(k), oracle.get(&k).copied(), "get {k}");
        }
    }

    #[test]
    fn lower_bound_matches_btreemap_range() {
        let mut t = DynamicBTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..3_000u64 {
            let k = splitmix(i) % 100_000;
            t.insert(k, i);
            oracle.insert(k, i);
        }
        for probe in (0..100_500u64).step_by(113) {
            let expect = oracle.range(probe..).next().map(|(&k, &v)| (k, v));
            assert_eq!(t.lower_bound_entry(probe), expect, "lb {probe}");
        }
    }

    #[test]
    fn range_sum_matches_oracle() {
        let mut t = DynamicBTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..5_000u64 {
            let k = splitmix(i) % 50_000;
            let v = i;
            t.insert(k, v);
            oracle.insert(k, v);
        }
        for i in 0..50u64 {
            let lo = splitmix(i * 7) % 50_000;
            let hi = lo + splitmix(i * 13) % 10_000;
            let expect: u64 = oracle.range(lo..hi).fold(0u64, |a, (_, &v)| a.wrapping_add(v));
            assert_eq!(t.range_sum(lo, hi), expect, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let keys: Vec<u64> = (0..7_777).map(|i| i * 5).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k ^ 0xffff).collect();
        let bulk = DynamicBTree::bulk_load(&keys, &payloads);
        bulk.check_invariants();
        assert_eq!(bulk.len(), keys.len());
        for (&k, &v) in keys.iter().zip(&payloads) {
            assert_eq!(bulk.get(k), Some(v));
        }
        assert_eq!(bulk.get(1), None); // absent key between 0 and 5
        assert_eq!(bulk.lower_bound_entry(6), Some((10, 10 ^ 0xffff)));
    }

    #[test]
    fn bulk_load_then_insert_interleaves() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 10).collect();
        let payloads = vec![1u64; keys.len()];
        let mut t = DynamicBTree::bulk_load(&keys, &payloads);
        for i in 0..1000u64 {
            t.insert(i * 10 + 5, 2);
        }
        t.check_invariants();
        assert_eq!(t.len(), 2000);
        assert_eq!(t.range_sum(0, u64::MAX), 1000 + 2000);
    }

    #[test]
    fn bulk_load_empty_is_usable() {
        let t = DynamicBTree::<u64>::bulk_load(&[], &[]);
        assert_eq!(t.len(), 0);
        let mut t = t;
        t.insert(1, 1);
        assert_eq!(t.get(1), Some(1));
    }

    #[test]
    fn size_bytes_grows_with_content() {
        let mut t = DynamicBTree::new();
        let empty = t.size_bytes();
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        assert!(t.size_bytes() > empty);
        // Owns its data: at least 16 bytes/entry.
        assert!(t.size_bytes() >= 10_000 * 16);
    }

    #[test]
    fn u32_keys_work() {
        let mut t = DynamicBTree::<u32>::new();
        for k in (0..1000u32).rev() {
            t.insert(k, k as u64);
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.lower_bound_entry(500), Some((500, 500)));
    }
    #[test]
    fn remove_matches_btreemap_and_tolerates_empty_leaves() {
        let mut t = DynamicBTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..10_000u64 {
            t.insert(i, i * 2);
            oracle.insert(i, i * 2);
        }
        // Drain a whole contiguous band of leaves, leaving them empty.
        for i in 2_000..6_000u64 {
            assert_eq!(t.remove(i), oracle.remove(&i), "remove {i}");
        }
        t.check_invariants();
        assert_eq!(t.len(), oracle.len());
        // Lower bound must skip the emptied band.
        assert_eq!(t.lower_bound_entry(2_000), Some((6_000, 12_000)));
        // Range sum across the hole.
        let expect: u64 = oracle.range(1_990..6_010).fold(0u64, |a, (_, &v)| a.wrapping_add(v));
        assert_eq!(t.range_sum(1_990, 6_010), expect);
        assert_eq!(t.remove(3_000), None, "already removed");
    }

    #[test]
    fn for_each_in_walks_leaves_in_order_across_holes() {
        let mut t = DynamicBTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..8_000u64 {
            let k = splitmix(i) % 40_000;
            t.insert(k, i);
            oracle.insert(k, i);
        }
        // Punch a hole so the walk must skip emptied leaves.
        for k in 10_000..20_000u64 {
            t.remove(k);
            oracle.remove(&k);
        }
        let mut got = Vec::new();
        t.for_each_in(5_000, 30_000, &mut |k, v| got.push((k, v)));
        let want: Vec<(u64, u64)> = oracle.range(5_000..30_000).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_then_reinsert_round_trips() {
        let mut t = DynamicBTree::new();
        for i in 0..1_000u64 {
            t.insert(i, i);
        }
        for i in 0..1_000u64 {
            assert_eq!(t.remove(i), Some(i));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.lower_bound_entry(0), None);
        for i in 0..1_000u64 {
            assert_eq!(t.insert(i, i + 7), None);
        }
        t.check_invariants();
        assert_eq!(t.get(500), Some(507));
    }
}
