//! The static B+Tree index (STX-style) with the sampling-stride tradeoff.

use crate::layered::{LayeredTree, NodeSearch};
use sosd_core::stride::Stride;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// Static B+Tree over every `stride`-th key of the data.
#[derive(Debug, Clone)]
pub struct BTreeIndex<K: Key> {
    tree: LayeredTree<K>,
    geometry: Stride,
}

impl<K: Key> BTreeIndex<K> {
    /// Build with the given sampling stride and node fanout.
    pub fn build(data: &SortedData<K>, stride: usize, fanout: usize) -> Result<Self, BuildError> {
        let geometry = Stride::new(stride, data.len());
        let sampled = geometry.sample(data.keys());
        Ok(BTreeIndex { tree: LayeredTree::build(sampled, fanout)?, geometry })
    }

    /// Tree height in levels.
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let cnt = self.tree.rank(key, NodeSearch::Binary, tracer);
        self.geometry.bound_for_pred_slot(cnt.checked_sub(1))
    }
}

impl<K: Key> Index<K> for BTreeIndex<K> {
    fn name(&self) -> &'static str {
        "BTree"
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Tree }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`BTreeIndex`].
#[derive(Debug, Clone)]
pub struct BTreeBuilder {
    /// Index every `stride`-th key (1 = all keys, larger = smaller tree).
    pub stride: usize,
    /// Keys per node; 16 matches a 128-byte node of u64 keys.
    pub fanout: usize,
}

impl Default for BTreeBuilder {
    fn default() -> Self {
        BTreeBuilder { stride: 1, fanout: 16 }
    }
}

impl BTreeBuilder {
    /// The size sweep used for the paper's Figure 7 (ten configurations
    /// from maximum size down).
    pub fn size_sweep() -> Vec<BTreeBuilder> {
        [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512]
            .into_iter()
            .map(|stride| BTreeBuilder { stride, fanout: 16 })
            .collect()
    }
}

impl<K: Key> IndexBuilder<K> for BTreeBuilder {
    type Output = BTreeIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        BTreeIndex::build(data, self.stride, self.fanout)
    }

    fn describe(&self) -> String {
        format!("BTree[stride={},fanout={}]", self.stride, self.fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::CountingTracer;

    fn check_all_probes(keys: Vec<u64>, stride: usize) {
        let data = SortedData::new(keys).unwrap();
        let idx = BTreeIndex::build(&data, stride, 4).unwrap();
        let max = data.max_key();
        for x in 0..=max.saturating_add(2) {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "stride={stride} x={x} b={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_at_stride_1() {
        check_all_probes((0..200u64).map(|i| i * 2).collect(), 1);
    }

    #[test]
    fn valid_at_larger_strides() {
        for stride in [2, 3, 7, 16, 100, 1000] {
            check_all_probes((0..300u64).map(|i| i * 3 + 1).collect(), stride);
        }
    }

    #[test]
    fn valid_with_duplicates() {
        check_all_probes(vec![4, 4, 4, 4, 9, 9, 9, 15, 15, 22], 2);
        check_all_probes(vec![7; 50], 4);
    }

    #[test]
    fn stride_1_bounds_are_tight() {
        let data = SortedData::new((0..1000u64).collect()).unwrap();
        let idx = BTreeIndex::build(&data, 1, 16).unwrap();
        for x in [0u64, 17, 500, 999] {
            assert!(idx.search_bound(x).len() <= 1);
        }
    }

    #[test]
    fn larger_stride_means_smaller_index() {
        let data = SortedData::new((0..10_000u64).collect()).unwrap();
        let s1 = Index::<u64>::size_bytes(&BTreeIndex::build(&data, 1, 16).unwrap());
        let s16 = Index::<u64>::size_bytes(&BTreeIndex::build(&data, 16, 16).unwrap());
        assert!(s16 * 10 < s1, "s1={s1} s16={s16}");
    }

    #[test]
    fn traced_lookup_touches_each_level_once() {
        let data = SortedData::new((0..4096u64).collect()).unwrap();
        let idx = BTreeIndex::build(&data, 1, 16).unwrap();
        let mut t = CountingTracer::default();
        idx.search_bound_traced(2000u64, &mut t);
        // Three levels -> three node reads (a descent never revisits nodes).
        assert_eq!(t.reads, 3);
        assert!(t.branches > 0);
    }

    #[test]
    fn builder_describe_mentions_knobs() {
        let d =
            <BTreeBuilder as IndexBuilder<u64>>::describe(&BTreeBuilder { stride: 8, fanout: 16 });
        assert!(d.contains("stride=8"));
    }
}
