//! # sosd-btree
//!
//! Tree-structured baselines: a cache-optimized static B+Tree (modeled on
//! the STX B+Tree the paper uses) and an interpolating B-Tree (IBTree,
//! Graefe 2006) that replaces in-node binary search with interpolation.
//!
//! Both are *static* read-optimized trees laid out as contiguous per-level
//! key arrays (no pointers: child positions are implicit from the fanout),
//! and both trade size for accuracy by indexing only every `stride`-th key,
//! exactly the technique described in Section 2.1 / 4.1.1 of the paper.

pub mod dynamic;
pub mod ibtree;
pub mod layered;
pub mod tree;

pub use dynamic::DynamicBTree;
pub use ibtree::{IbTreeBuilder, IbTreeIndex};
pub use layered::LayeredTree;
pub use tree::{BTreeBuilder, BTreeIndex};
