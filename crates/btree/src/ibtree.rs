//! The interpolating B-Tree (IBTree): identical layout to the B+Tree, but
//! nodes are searched by interpolation (Graefe, DaMoN 2006). On smooth key
//! distributions the in-node search converges in O(1) probes; on erratic
//! ones it degrades toward a linear scan.

use crate::layered::{LayeredTree, NodeSearch};
use sosd_core::stride::Stride;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// Interpolating B-Tree over every `stride`-th key.
#[derive(Debug, Clone)]
pub struct IbTreeIndex<K: Key> {
    tree: LayeredTree<K>,
    geometry: Stride,
}

impl<K: Key> IbTreeIndex<K> {
    /// Build with the given sampling stride and node fanout.
    pub fn build(data: &SortedData<K>, stride: usize, fanout: usize) -> Result<Self, BuildError> {
        let geometry = Stride::new(stride, data.len());
        let sampled = geometry.sample(data.keys());
        Ok(IbTreeIndex { tree: LayeredTree::build(sampled, fanout)?, geometry })
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let cnt = self.tree.rank(key, NodeSearch::Interpolation, tracer);
        self.geometry.bound_for_pred_slot(cnt.checked_sub(1))
    }
}

impl<K: Key> Index<K> for IbTreeIndex<K> {
    fn name(&self) -> &'static str {
        "IBTree"
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Tree }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`IbTreeIndex`].
#[derive(Debug, Clone)]
pub struct IbTreeBuilder {
    /// Index every `stride`-th key.
    pub stride: usize,
    /// Keys per node. IBTree benefits from wider nodes than the B+Tree
    /// because interpolation replaces the in-node binary search; 64 keys
    /// (512 bytes of u64) is the default.
    pub fanout: usize,
}

impl Default for IbTreeBuilder {
    fn default() -> Self {
        IbTreeBuilder { stride: 1, fanout: 64 }
    }
}

impl IbTreeBuilder {
    /// Ten-configuration size sweep for Figure 7.
    pub fn size_sweep() -> Vec<IbTreeBuilder> {
        [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512]
            .into_iter()
            .map(|stride| IbTreeBuilder { stride, fanout: 64 })
            .collect()
    }
}

impl<K: Key> IndexBuilder<K> for IbTreeBuilder {
    type Output = IbTreeIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        IbTreeIndex::build(data, self.stride, self.fanout)
    }

    fn describe(&self) -> String {
        format!("IBTree[stride={},fanout={}]", self.stride, self.fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_probes(keys: Vec<u64>, stride: usize, fanout: usize) {
        let data = SortedData::new(keys).unwrap();
        let idx = IbTreeIndex::build(&data, stride, fanout).unwrap();
        let max = data.max_key();
        for x in 0..=max.saturating_add(2) {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "stride={stride} x={x} b={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_linear_keys() {
        check_all_probes((0..500u64).map(|i| i * 2).collect(), 1, 8);
        check_all_probes((0..500u64).map(|i| i * 2).collect(), 4, 8);
    }

    #[test]
    fn valid_on_quadratic_keys() {
        check_all_probes((0..200u64).map(|i| i * i).collect(), 3, 16);
    }

    #[test]
    fn valid_with_duplicates_and_flat_nodes() {
        check_all_probes(vec![9; 100], 2, 8);
        check_all_probes(vec![1, 1, 2, 2, 2, 2, 2, 2, 3, 100], 2, 4);
    }

    #[test]
    fn agrees_with_btree_bounds() {
        use crate::tree::BTreeIndex;
        let keys: Vec<u64> = (0..997u64).map(|i| i.wrapping_mul(2654435761) % 100_000).collect();
        let mut sorted = keys;
        sorted.sort_unstable();
        let data = SortedData::new(sorted).unwrap();
        let bt = BTreeIndex::build(&data, 4, 16).unwrap();
        let ib = IbTreeIndex::build(&data, 4, 16).unwrap();
        for x in (0..100_000u64).step_by(97) {
            assert_eq!(ib.search_bound(x), bt.search_bound(x), "x={x}");
        }
    }
}
