//! The shared static layered-tree structure.
//!
//! Level 0 holds the (sampled) keys; level `l+1` holds every `fanout`-th key
//! of level `l`. A lookup descends from the top level, searching a window of
//! at most `fanout` keys per level — the contiguous layout means each node
//! visit is one or two cache lines, like a packed B+Tree node.

use sosd_core::trace::addr_of_index;
use sosd_core::{BuildError, Key, Tracer};

/// How a node's key window is searched during descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSearch {
    /// Binary search within the window (STX-style B+Tree).
    Binary,
    /// Interpolation between the window's end keys, then a linear fix-up
    /// (interpolating B-Tree).
    Interpolation,
}

/// A static, pointer-free multi-level tree over a sorted key array.
#[derive(Debug, Clone)]
pub struct LayeredTree<K: Key> {
    /// `levels[0]` are the leaf keys; the last level has `<= fanout` keys.
    levels: Vec<Vec<K>>,
    fanout: usize,
}

impl<K: Key> LayeredTree<K> {
    /// Build over `keys` (must be sorted; typically the sampled key set).
    pub fn build(keys: Vec<K>, fanout: usize) -> Result<Self, BuildError> {
        if fanout < 2 {
            return Err(BuildError::InvalidConfig(format!("fanout must be >= 2, got {fanout}")));
        }
        if keys.is_empty() {
            return Err(BuildError::InvalidConfig("cannot build over zero keys".into()));
        }
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut levels = vec![keys];
        while levels.last().expect("non-empty").len() > fanout {
            let below = levels.last().expect("non-empty");
            let next: Vec<K> = below.iter().copied().step_by(fanout).collect();
            levels.push(next);
        }
        Ok(LayeredTree { levels, fanout })
    }

    /// Number of leaf keys.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.levels[0].len()
    }

    /// Number of levels including the leaf level.
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Total bytes across all levels (leaf keys included: the tree owns its
    /// sampled copy of the keys).
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * std::mem::size_of::<K>()).sum()
    }

    /// The leaf key array.
    #[inline]
    pub fn leaves(&self) -> &[K] {
        &self.levels[0]
    }

    /// `partition_point` over the leaf keys: the number of leaf keys `< x`,
    /// computed by tree descent. Emits one node read per level plus the
    /// comparison branches to `tracer`.
    pub fn rank<T: Tracer>(&self, x: K, mode: NodeSearch, tracer: &mut T) -> usize {
        let top = self.levels.last().expect("non-empty");
        let mut p = window_search(top, 0, top.len(), x, mode, tracer);
        for level in self.levels[..self.levels.len() - 1].iter().rev() {
            if p == 0 {
                // Every key of the upper level (hence this one) is >= x.
                continue;
            }
            let start = (p - 1) * self.fanout;
            let end = (p * self.fanout).min(level.len());
            p = window_search(level, start, end, x, mode, tracer);
        }
        p
    }
}

/// `start + partition_point(level[start..end], < x)`, with tracing.
fn window_search<K: Key, T: Tracer>(
    level: &[K],
    start: usize,
    end: usize,
    x: K,
    mode: NodeSearch,
    tracer: &mut T,
) -> usize {
    debug_assert!(start <= end && end <= level.len());
    if start == end {
        return start;
    }
    // One node visit: the window is contiguous, so model it as a single read
    // spanning the touched keys (the cache simulator splits it into lines).
    tracer.read(addr_of_index(level, start), (end - start) * std::mem::size_of::<K>());
    let site = level.as_ptr() as usize ^ start;
    match mode {
        NodeSearch::Binary => {
            let mut lo = start;
            let mut hi = end;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                tracer.instr(5);
                let less = level[mid] < x;
                tracer.branch(site, less);
                if less {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        }
        NodeSearch::Interpolation => {
            let kl = level[start].to_f64();
            let kr = level[end - 1].to_f64();
            tracer.instr(12); // two converts, sub, div, mul, round, clamp
            let guess = if kr > kl {
                let frac = ((x.to_f64() - kl) / (kr - kl)).clamp(0.0, 1.0);
                start + (frac * (end - 1 - start) as f64) as usize
            } else {
                start
            };
            let mut i = guess.clamp(start, end - 1);
            // Linear fix-up from the interpolated guess.
            if level[i] < x {
                tracer.branch(site, true);
                while i < end && level[i] < x {
                    tracer.read(addr_of_index(level, i), std::mem::size_of::<K>());
                    tracer.instr(3);
                    i += 1;
                }
            } else {
                tracer.branch(site, false);
                while i > start && level[i - 1] >= x {
                    tracer.read(addr_of_index(level, i - 1), std::mem::size_of::<K>());
                    tracer.instr(3);
                    i -= 1;
                }
            }
            i
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::NullTracer;

    fn ranks_match(keys: Vec<u64>, fanout: usize, mode: NodeSearch) {
        let tree = LayeredTree::build(keys.clone(), fanout).unwrap();
        let probes: Vec<u64> = (0..=keys.last().copied().unwrap_or(0).saturating_add(2)).collect();
        for x in probes {
            assert_eq!(
                tree.rank(x, mode, &mut NullTracer),
                keys.partition_point(|&k| k < x),
                "fanout={fanout} mode={mode:?} x={x}"
            );
        }
    }

    #[test]
    fn rank_matches_partition_point_binary() {
        ranks_match((0..100u64).map(|i| i * 3).collect(), 4, NodeSearch::Binary);
        ranks_match((0..1000u64).map(|i| i * 2 + 1).collect(), 16, NodeSearch::Binary);
        ranks_match(vec![5, 5, 5, 7, 7, 20], 2, NodeSearch::Binary);
    }

    #[test]
    fn rank_matches_partition_point_interpolation() {
        ranks_match((0..100u64).map(|i| i * 3).collect(), 4, NodeSearch::Interpolation);
        ranks_match((0..500u64).map(|i| i * i).collect(), 16, NodeSearch::Interpolation);
        ranks_match(vec![5, 5, 5, 7, 7, 20], 2, NodeSearch::Interpolation);
    }

    #[test]
    fn single_key_tree() {
        let tree = LayeredTree::build(vec![42u64], 16).unwrap();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.rank(41, NodeSearch::Binary, &mut NullTracer), 0);
        assert_eq!(tree.rank(42, NodeSearch::Binary, &mut NullTracer), 0);
        assert_eq!(tree.rank(43, NodeSearch::Binary, &mut NullTracer), 1);
    }

    #[test]
    fn height_grows_logarithmically() {
        let tree = LayeredTree::build((0..4096u64).collect(), 16).unwrap();
        // 4096 -> 256 -> 16: three levels.
        assert_eq!(tree.height(), 3);
        let tree2 = LayeredTree::build((0..4097u64).collect(), 16).unwrap();
        assert_eq!(tree2.height(), 4);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(LayeredTree::build(Vec::<u64>::new(), 16).is_err());
        assert!(LayeredTree::build(vec![1u64], 1).is_err());
    }

    #[test]
    fn size_includes_all_levels() {
        let tree = LayeredTree::build((0..256u64).collect(), 16).unwrap();
        // 256 + 16 keys * 8 bytes.
        assert_eq!(tree.size_bytes(), (256 + 16) * 8);
    }
}
