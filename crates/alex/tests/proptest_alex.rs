//! Property tests for the ALEX tree and its gapped arrays: arbitrary
//! operation sequences must match `BTreeMap`, and structural invariants must
//! survive any insert order.

use proptest::prelude::*;
use sosd_alex::{AlexTree, GappedArray};
use sosd_core::dynamic::{BulkLoad, DynamicOrderedIndex};
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gapped_array_matches_btreemap(
        ops in prop::collection::vec((0u64..2_000, any::<u64>()), 1..600),
    ) {
        let mut ga = GappedArray::new();
        let mut oracle = BTreeMap::new();
        for &(k, v) in &ops {
            if ga.at_max_density() {
                ga.expand();
            }
            let out = ga.insert(k, v);
            let prev = oracle.insert(k, v);
            match prev {
                Some(p) => prop_assert_eq!(out, sosd_alex::gapped::InsertOutcome::Replaced(p)),
                None => prop_assert_eq!(out, sosd_alex::gapped::InsertOutcome::Inserted),
            }
        }
        ga.check_invariants();
        prop_assert_eq!(ga.len(), oracle.len());
        for (&k, &v) in &oracle {
            prop_assert_eq!(ga.get(k), Some(v));
        }
    }

    #[test]
    fn tree_matches_btreemap_with_extreme_keys(
        ops in prop::collection::vec(
            prop_oneof![
                5 => (0u64..10_000, any::<u64>()),
                1 => (any::<u64>(), any::<u64>()),
                1 => (Just(0u64), any::<u64>()),
                1 => (Just(u64::MAX), any::<u64>()),
            ],
            1..500,
        ),
    ) {
        let mut t = AlexTree::new();
        let mut oracle = BTreeMap::new();
        for (j, &(k, v)) in ops.iter().enumerate() {
            if j % 4 == 3 {
                prop_assert_eq!(t.remove(k), oracle.remove(&k), "remove {}", k);
            } else {
                prop_assert_eq!(t.insert(k, v), oracle.insert(k, v), "key {}", k);
            }
        }
        t.check_invariants();
        for &(k, _) in &ops {
            prop_assert_eq!(t.get(k), oracle.get(&k).copied());
            let probe = k.saturating_add(1);
            let want = oracle.range(probe..).next().map(|(&k2, &v2)| (k2, v2));
            prop_assert_eq!(t.lower_bound_entry(probe), want);
        }
    }

    #[test]
    fn bulk_load_preserves_every_entry(
        seed in prop::collection::btree_set(any::<u64>(), 1..400),
    ) {
        let keys: Vec<u64> = seed.iter().copied().collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k.wrapping_mul(31)).collect();
        let t = AlexTree::bulk_load(&keys, &payloads);
        t.check_invariants();
        prop_assert_eq!(t.len(), keys.len());
        for (&k, &v) in keys.iter().zip(&payloads) {
            prop_assert_eq!(t.get(k), Some(v));
        }
    }

    #[test]
    fn range_sums_match_oracle(
        seed in prop::collection::btree_set(0u64..100_000, 1..300),
        ranges in prop::collection::vec((0u64..100_000, 0u64..50_000), 1..20),
    ) {
        let keys: Vec<u64> = seed.iter().copied().collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k ^ 0x55).collect();
        let t = AlexTree::bulk_load(&keys, &payloads);
        let oracle: BTreeMap<u64, u64> = keys.iter().zip(&payloads).map(|(&k, &v)| (k, v)).collect();
        for &(lo, w) in &ranges {
            let hi = lo.saturating_add(w);
            let want: u64 = oracle.range(lo..hi).fold(0u64, |a, (_, &v)| a.wrapping_add(v));
            prop_assert_eq!(t.range_sum(lo, hi), want, "range [{}, {})", lo, hi);
        }
    }
}

#[test]
fn bulk_load_from_dataset_generator() {
    // Smoke the integration with the dataset crate: a realistic CDF shape.
    let data = sosd_datasets::generate_u64(sosd_datasets::DatasetId::Amzn, 30_000, 9);
    let mut keys: Vec<u64> = data.keys().to_vec();
    keys.dedup();
    let payloads: Vec<u64> = keys.to_vec();
    let t = AlexTree::bulk_load(&keys, &payloads);
    t.check_invariants();
    for &k in keys.iter().step_by(173) {
        assert_eq!(t.get(k), Some(k));
    }
}
