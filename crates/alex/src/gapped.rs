//! The gapped model array: ALEX's leaf node structure.
//!
//! ALEX (ref. \[11\]) departs from the paper's read-only RMI in one key way:
//! data nodes store records in a *gapped array* — an array larger than its
//! contents, with gaps left at model-predicted positions — so inserts can
//! usually be satisfied by dropping the record into a nearby gap instead of
//! shifting half the node. A per-node linear model predicts the slot of a
//! key directly; an exponential search around the prediction corrects it.
//!
//! Following ALEX, gap slots hold a *copy* of a neighboring key (the
//! predecessor's, or the successor's for leading gaps): the key array is
//! then totally sorted and search needs no bitmap checks; only the
//! occupancy bitmap distinguishes a real entry from a copy.

use sosd_core::Key;

/// Fraction of slots occupied after a (re)build.
const BUILD_DENSITY: f64 = 0.7;
/// Expansion (or split, decided by the tree layer) triggers above this.
const MAX_DENSITY: f64 = 0.85;
/// Smallest capacity we bother allocating.
const MIN_CAPACITY: usize = 16;

/// A fixed-size occupancy bitmap.
#[derive(Debug, Clone)]
struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    fn new(bits: usize) -> Self {
        Bitmap { words: vec![0; bits.div_ceil(64)] }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// First set bit at or after `i`, if any.
    fn next_set(&self, i: usize, len: usize) -> Option<usize> {
        if i >= len {
            return None;
        }
        let mut w = i / 64;
        let mut word = self.words[w] & (!0u64 << (i % 64));
        loop {
            if word != 0 {
                let bit = w * 64 + word.trailing_zeros() as usize;
                return (bit < len).then_some(bit);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Last set bit at or before `i`, if any.
    fn prev_set(&self, i: usize) -> Option<usize> {
        let mut w = i / 64;
        let shift = 63 - (i % 64);
        let mut word = self.words[w] << shift >> shift;
        loop {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = self.words[w];
        }
    }

    /// First *clear* bit in `lo..hi`, scanning forward.
    fn next_clear(&self, lo: usize, hi: usize) -> Option<usize> {
        (lo..hi).find(|&i| !self.get(i))
    }

    /// Last clear bit in `lo..hi`, scanning backward.
    fn prev_clear(&self, lo: usize, hi: usize) -> Option<usize> {
        (lo..hi).rev().find(|&i| !self.get(i))
    }
}

/// A linear model mapping keys to slot positions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinearModel {
    pub slope: f64,
    pub intercept: f64,
    /// Key the model is anchored at (deltas keep `f64` exact for huge keys).
    pub anchor: u64,
}

impl LinearModel {
    /// Least-squares fit of `rank -> target slot` over sorted keys, scaled
    /// so the last key maps near `target_max`.
    pub(crate) fn fit<K: Key>(keys: &[K], target_max: f64) -> LinearModel {
        let n = keys.len();
        if n == 0 {
            return LinearModel { slope: 0.0, intercept: 0.0, anchor: 0 };
        }
        let anchor = keys[0].to_u64();
        if n == 1 {
            return LinearModel { slope: 0.0, intercept: 0.0, anchor };
        }
        // Least squares over (dx_i, y_i) with y_i = i * target_max / (n-1).
        let scale = target_max / (n - 1) as f64;
        let mut sx = 0.0f64;
        let mut sy = 0.0f64;
        let mut sxx = 0.0f64;
        let mut sxy = 0.0f64;
        for (i, &k) in keys.iter().enumerate() {
            let x = (k.to_u64() - anchor) as f64;
            let y = i as f64 * scale;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let denom = nf * sxx - sx * sx;
        let slope =
            if denom.abs() < f64::EPSILON { 0.0 } else { ((nf * sxy - sx * sy) / denom).max(0.0) };
        let intercept = (sy - slope * sx) / nf;
        LinearModel { slope, intercept, anchor }
    }

    #[inline]
    pub(crate) fn predict<K: Key>(&self, key: K) -> f64 {
        let dx = key.to_u64() as i128 - self.anchor as i128;
        self.slope * dx as f64 + self.intercept
    }
}

/// The outcome of [`GappedArray::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Key was new and placed.
    Inserted,
    /// Key existed; previous payload returned.
    Replaced(u64),
    /// The node is at maximum density; the caller must expand or split.
    NeedsExpand,
}

/// ALEX's gapped model array over sorted unique keys.
#[derive(Debug, Clone)]
pub struct GappedArray<K: Key> {
    keys: Vec<K>,
    payloads: Vec<u64>,
    occ: Bitmap,
    num_entries: usize,
    model: LinearModel,
    /// Lifetime count of slots shifted by inserts (cost observability: ALEX
    /// uses expected shifts in its cost model).
    shifts: u64,
}

impl<K: Key> GappedArray<K> {
    /// An empty node.
    pub fn new() -> Self {
        Self::from_sorted(&[], &[])
    }

    /// Model-based bulk build from sorted unique keys at `BUILD_DENSITY`.
    ///
    /// Each key is placed at its model-predicted slot (pushed right past
    /// collisions), exactly ALEX's bulk-load placement: gaps end up where
    /// the model expects future keys.
    pub fn from_sorted(keys: &[K], payloads: &[u64]) -> Self {
        assert_eq!(keys.len(), payloads.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted and unique");
        let n = keys.len();
        let capacity = ((n as f64 / BUILD_DENSITY) as usize).max(MIN_CAPACITY);
        let model = LinearModel::fit(keys, (capacity - 1) as f64);

        let mut ga = GappedArray {
            keys: vec![K::MIN_KEY; capacity],
            payloads: vec![0; capacity],
            occ: Bitmap::new(capacity),
            num_entries: n,
            model,
            shifts: 0,
        };
        let mut next_free = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let pred = ga.model.predict(k).round().max(0.0) as usize;
            // Keep placement feasible: enough room for the remaining keys.
            let slot = pred.max(next_free).min(capacity - (n - i));
            ga.keys[slot] = k;
            ga.payloads[slot] = payloads[i];
            ga.occ.set(slot);
            // Backfill the gap copies behind this entry.
            for g in next_free..slot {
                ga.keys[g] = if next_free == 0 && g < slot {
                    // Leading gaps copy the successor.
                    k
                } else {
                    ga.keys[g.saturating_sub(1)]
                };
            }
            next_free = slot + 1;
        }
        // Trailing gaps copy the last key.
        if n > 0 {
            for g in next_free..capacity {
                ga.keys[g] = ga.keys[g - 1];
            }
        }
        ga
    }

    /// Number of real entries.
    pub fn len(&self) -> usize {
        self.num_entries
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Occupied fraction.
    pub fn density(&self) -> f64 {
        self.num_entries as f64 / self.capacity() as f64
    }

    /// Whether the next insert should expand/split instead.
    pub fn at_max_density(&self) -> bool {
        (self.num_entries + 1) as f64 > MAX_DENSITY * self.capacity() as f64
    }

    /// Total slots shifted by inserts so far.
    pub fn shift_count(&self) -> u64 {
        self.shifts
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<K>()
            + self.payloads.capacity() * 8
            + self.occ.words.capacity() * 8
    }

    /// Smallest real key, if any.
    pub fn min_key(&self) -> Option<K> {
        self.occ.next_set(0, self.capacity()).map(|i| self.keys[i])
    }

    /// First slot whose key is `>= key` (may be a gap copy), found by
    /// exponential search around the model prediction — ALEX's lookup path.
    #[inline]
    fn lower_bound_slot(&self, key: K) -> usize {
        let cap = self.capacity();
        if cap == 0 {
            return 0;
        }
        let hint = (self.model.predict(key).round().max(0.0) as usize).min(cap - 1);
        // Exponential widening until the window brackets `key`.
        let mut lo;
        let mut hi;
        if self.keys[hint] < key {
            let mut step = 1usize;
            lo = hint + 1;
            hi = hint + 1;
            while hi < cap && self.keys[hi] < key {
                lo = hi + 1;
                hi = (hi + step).min(cap);
                step *= 2;
            }
            if hi < cap {
                hi += 1; // make exclusive end cover the bracketing slot
            }
        } else {
            let mut step = 1usize;
            hi = hint;
            lo = hint;
            while lo > 0 && self.keys[lo - 1] >= key {
                hi = lo;
                lo = lo.saturating_sub(step);
                step *= 2;
            }
        }
        lo + self.keys[lo..hi.min(cap)].partition_point(|&k| k < key)
    }

    /// Payload of `key`, if present.
    pub fn get(&self, key: K) -> Option<u64> {
        let slot = self.lower_bound_slot(key);
        // Advance over gap copies to the first real entry.
        let real = self.occ.next_set(slot, self.capacity())?;
        (self.keys[real] == key).then(|| self.payloads[real])
    }

    /// Smallest real entry with key `>= key`.
    pub fn lower_bound_entry(&self, key: K) -> Option<(K, u64)> {
        let slot = self.lower_bound_slot(key);
        let real = self.occ.next_set(slot, self.capacity())?;
        Some((self.keys[real], self.payloads[real]))
    }

    /// Sum payloads of real entries with `lo <= key < hi` (one
    /// [`GappedArray::for_each_in`] walk).
    pub fn range_sum(&self, lo: K, hi: K) -> u64 {
        let mut sum = 0u64;
        self.for_each_in(lo, hi, &mut |_, p| sum = sum.wrapping_add(p));
        sum
    }

    /// Visit real entries with `lo <= key < hi` in key order — one
    /// lower-bound probe plus an occupancy-bit slot walk, so the tree's
    /// `for_each_in` override can scan leaves without one descent per
    /// visited entry.
    pub fn for_each_in(&self, lo: K, hi: K, f: &mut dyn FnMut(K, u64)) {
        if hi <= lo || self.num_entries == 0 {
            return;
        }
        let mut slot = self.lower_bound_slot(lo);
        while let Some(real) = self.occ.next_set(slot, self.capacity()) {
            if self.keys[real] >= hi {
                break;
            }
            f(self.keys[real], self.payloads[real]);
            slot = real + 1;
        }
    }

    /// All real entries in key order.
    pub fn entries(&self) -> Vec<(K, u64)> {
        let mut out = Vec::with_capacity(self.num_entries);
        let mut slot = 0usize;
        while let Some(real) = self.occ.next_set(slot, self.capacity()) {
            out.push((self.keys[real], self.payloads[real]));
            slot = real + 1;
        }
        out
    }

    /// Model-based insert: place at (or shift toward) the corrected
    /// position. Returns [`InsertOutcome::NeedsExpand`] without inserting
    /// when the node is at maximum density.
    pub fn insert(&mut self, key: K, payload: u64) -> InsertOutcome {
        let cap = self.capacity();
        let slot = self.lower_bound_slot(key);
        // `j`: first real entry with key >= `key` (insertion goes before it).
        let j = self.occ.next_set(slot, cap);
        if let Some(j) = j {
            if self.keys[j] == key {
                return InsertOutcome::Replaced(std::mem::replace(&mut self.payloads[j], payload));
            }
        }
        if self.at_max_density() {
            return InsertOutcome::NeedsExpand;
        }

        // `i_prev`: last real entry with key < `key`. All slots in
        // (i_prev, j) are gaps.
        let i_prev = match j {
            Some(j) if j > 0 => self.occ.prev_set(j - 1),
            Some(_) => None,
            None => self.occ.prev_set(cap - 1),
        };
        let gap_lo = i_prev.map_or(0, |p| p + 1);
        let gap_hi = j.unwrap_or(cap);

        if gap_lo < gap_hi {
            // A gap exists exactly where the key belongs: take its right
            // edge so no copies to its right need fixing.
            let g = gap_hi - 1;
            self.place(g, key, payload);
            return InsertOutcome::Inserted;
        }

        // No gap at the insertion point (gap_lo == gap_hi == j): shift
        // toward the nearest free slot.
        let ins = gap_hi; // the slot the key should occupy after shifting
        let right_free = self.occ.next_clear(ins, cap);
        let left_free = if ins > 0 { self.occ.prev_clear(0, ins) } else { None };
        match (left_free, right_free) {
            (Some(l), Some(r)) => {
                if ins - l <= r - ins + 1 {
                    self.shift_left(l, ins, key, payload);
                } else {
                    self.shift_right(ins, r, key, payload);
                }
            }
            (Some(l), None) => self.shift_left(l, ins, key, payload),
            (None, Some(r)) => self.shift_right(ins, r, key, payload),
            (None, None) => return InsertOutcome::NeedsExpand, // full
        }
        InsertOutcome::Inserted
    }

    /// Write a new entry into gap slot `g` and fix copies to its left.
    fn place(&mut self, g: usize, key: K, payload: u64) {
        debug_assert!(!self.occ.get(g));
        self.keys[g] = key;
        self.payloads[g] = payload;
        self.occ.set(g);
        self.num_entries += 1;
        // Gap copies left of `g` down to the previous real entry must stay
        // <= key; they hold the predecessor's value already, so only leading
        // gaps (which copy the successor) can now exceed: they copied the
        // old successor which is >= key... they must be lowered to `key`.
        let mut i = g;
        while i > 0 && !self.occ.get(i - 1) && self.keys[i - 1] > key {
            self.keys[i - 1] = key;
            i -= 1;
        }
    }

    /// Move entries `[ins, r)` one slot right into free slot `r`; place the
    /// new entry at `ins`.
    fn shift_right(&mut self, ins: usize, r: usize, key: K, payload: u64) {
        for i in (ins..r).rev() {
            self.keys[i + 1] = self.keys[i];
            self.payloads[i + 1] = self.payloads[i];
            if self.occ.get(i) {
                self.occ.set(i + 1);
            } else {
                self.occ.clear(i + 1);
            }
        }
        self.shifts += (r - ins) as u64;
        self.occ.clear(ins);
        self.place(ins, key, payload);
    }

    /// Move entries `(l, ins)` one slot left into free slot `l`; place the
    /// new entry at `ins - 1`.
    fn shift_left(&mut self, l: usize, ins: usize, key: K, payload: u64) {
        for i in l..ins - 1 {
            self.keys[i] = self.keys[i + 1];
            self.payloads[i] = self.payloads[i + 1];
            if self.occ.get(i + 1) {
                self.occ.set(i);
            } else {
                self.occ.clear(i);
            }
        }
        self.shifts += (ins - 1 - l) as u64;
        self.occ.clear(ins - 1);
        self.place(ins - 1, key, payload);
    }

    /// Remove `key`, returning its payload.
    ///
    /// Deletion is O(1) in a gapped array: clearing the occupancy bit turns
    /// the slot into a gap whose retained key value is its own valid copy
    /// (the array stays totally sorted), exactly ALEX's delete path.
    pub fn remove(&mut self, key: K) -> Option<u64> {
        let slot = self.lower_bound_slot(key);
        let real = self.occ.next_set(slot, self.capacity())?;
        if self.keys[real] != key {
            return None;
        }
        self.occ.clear(real);
        self.num_entries -= 1;
        Some(self.payloads[real])
    }

    /// Rebuild at `BUILD_DENSITY` with a retrained model (ALEX's node
    /// expansion).
    pub fn expand(&mut self) {
        let entries = self.entries();
        let keys: Vec<K> = entries.iter().map(|e| e.0).collect();
        let payloads: Vec<u64> = entries.iter().map(|e| e.1).collect();
        *self = GappedArray::from_sorted(&keys, &payloads);
    }

    /// Split into two halves by median rank (ALEX's sideways split),
    /// consuming `self`. Both halves are rebuilt at `BUILD_DENSITY`.
    pub fn split(self) -> (GappedArray<K>, GappedArray<K>) {
        let entries = self.entries();
        let mid = entries.len() / 2;
        let (a, b) = entries.split_at(mid);
        let build = |part: &[(K, u64)]| {
            let keys: Vec<K> = part.iter().map(|e| e.0).collect();
            let payloads: Vec<u64> = part.iter().map(|e| e.1).collect();
            GappedArray::from_sorted(&keys, &payloads)
        };
        (build(a), build(b))
    }

    /// Check structural invariants (tests only): keys totally sorted, real
    /// entries strictly increasing, gap copies equal to a neighbor.
    pub fn check_invariants(&self) {
        assert!(self.keys.windows(2).all(|w| w[0] <= w[1]), "slot keys must be non-decreasing");
        let mut prev: Option<K> = None;
        let mut count = 0;
        for i in 0..self.capacity() {
            if self.occ.get(i) {
                if let Some(p) = prev {
                    assert!(p < self.keys[i], "real keys must be strictly increasing");
                }
                prev = Some(self.keys[i]);
                count += 1;
            }
        }
        assert_eq!(count, self.num_entries, "occupancy count mismatch");
    }
}

impl<K: Key> Default for GappedArray<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn bitmap_next_prev() {
        let mut b = Bitmap::new(200);
        b.set(3);
        b.set(130);
        assert_eq!(b.next_set(0, 200), Some(3));
        assert_eq!(b.next_set(4, 200), Some(130));
        assert_eq!(b.next_set(131, 200), None);
        assert_eq!(b.prev_set(199), Some(130));
        assert_eq!(b.prev_set(129), Some(3));
        assert_eq!(b.prev_set(2), None);
        b.clear(3);
        assert_eq!(b.next_set(0, 200), Some(130));
    }

    #[test]
    fn bulk_build_round_trips() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 7 + 1).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k * 2).collect();
        let ga = GappedArray::from_sorted(&keys, &payloads);
        ga.check_invariants();
        assert_eq!(ga.len(), 1000);
        assert!(ga.density() > 0.6 && ga.density() <= 0.75, "density {}", ga.density());
        for &k in &keys {
            assert_eq!(ga.get(k), Some(k * 2));
        }
        assert_eq!(ga.get(0), None);
        assert_eq!(ga.get(2), None);
    }

    #[test]
    fn model_predictions_leave_few_shifts() {
        // Near-linear keys: model-based inserts should rarely shift.
        let keys: Vec<u64> = (0..10_000).map(|i| i * 13).collect();
        let payloads = vec![0u64; keys.len()];
        let mut ga = GappedArray::from_sorted(&keys, &payloads);
        for i in 0..500u64 {
            let k = i * 260 + 1; // lands between existing keys
            if ga.at_max_density() {
                ga.expand();
            }
            assert_eq!(ga.insert(k, 1), InsertOutcome::Inserted);
        }
        ga.check_invariants();
        let shifts_per_insert = ga.shift_count() as f64 / 500.0;
        assert!(shifts_per_insert < 4.0, "too many shifts: {shifts_per_insert}");
    }

    #[test]
    fn insert_matches_btreemap() {
        let mut ga = GappedArray::new();
        let mut oracle = BTreeMap::new();
        for i in 0..5_000u64 {
            let k = splitmix(i) % 2_000;
            let v = splitmix(i ^ 0xff);
            if ga.at_max_density() {
                ga.expand();
            }
            let out = ga.insert(k, v);
            let prev = oracle.insert(k, v);
            match prev {
                Some(p) => assert_eq!(out, InsertOutcome::Replaced(p), "insert {i} key {k}"),
                None => assert_eq!(out, InsertOutcome::Inserted, "insert {i} key {k}"),
            }
        }
        ga.check_invariants();
        assert_eq!(ga.len(), oracle.len());
        for k in 0..2_000u64 {
            assert_eq!(ga.get(k), oracle.get(&k).copied(), "get {k}");
        }
    }

    #[test]
    fn lower_bound_and_range_sum_match_oracle() {
        let mut ga = GappedArray::new();
        let mut oracle = BTreeMap::new();
        for i in 0..3_000u64 {
            let k = splitmix(i) % 100_000;
            if ga.at_max_density() {
                ga.expand();
            }
            ga.insert(k, i);
            oracle.insert(k, i);
        }
        for probe in (0..100_500u64).step_by(271) {
            let expect = oracle.range(probe..).next().map(|(&k, &v)| (k, v));
            assert_eq!(ga.lower_bound_entry(probe), expect, "lb {probe}");
        }
        for i in 0..30u64 {
            let lo = splitmix(i) % 100_000;
            let hi = lo + splitmix(i * 3) % 40_000;
            let expect: u64 = oracle.range(lo..hi).fold(0u64, |a, (_, &v)| a.wrapping_add(v));
            assert_eq!(ga.range_sum(lo, hi), expect, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn needs_expand_at_max_density() {
        let mut ga = GappedArray::<u64>::new();
        let mut k = 0u64;
        loop {
            match ga.insert(k, 0) {
                InsertOutcome::Inserted => k += 1,
                InsertOutcome::NeedsExpand => break,
                InsertOutcome::Replaced(_) => unreachable!(),
            }
        }
        let before = ga.capacity();
        ga.expand();
        assert!(ga.capacity() > before, "expand must grow capacity");
        assert_eq!(ga.insert(k, 0), InsertOutcome::Inserted);
        ga.check_invariants();
    }

    #[test]
    fn split_partitions_by_rank() {
        let keys: Vec<u64> = (0..1001).map(|i| i * 3).collect();
        let payloads = vec![7u64; keys.len()];
        let ga = GappedArray::from_sorted(&keys, &payloads);
        let (a, b) = ga.split();
        a.check_invariants();
        b.check_invariants();
        assert_eq!(a.len() + b.len(), 1001);
        assert!(a.len().abs_diff(b.len()) <= 1);
        let a_max = a.entries().last().unwrap().0;
        let b_min = b.min_key().unwrap();
        assert!(a_max < b_min);
    }

    #[test]
    fn empty_array_behaves() {
        let ga = GappedArray::<u64>::new();
        assert!(ga.is_empty());
        assert_eq!(ga.get(5), None);
        assert_eq!(ga.lower_bound_entry(0), None);
        assert_eq!(ga.range_sum(0, u64::MAX), 0);
        assert_eq!(ga.min_key(), None);
    }

    #[test]
    fn descending_then_ascending_inserts() {
        let mut ga = GappedArray::new();
        for k in (0..500u64).rev() {
            if ga.at_max_density() {
                ga.expand();
            }
            assert_eq!(ga.insert(k * 2, k), InsertOutcome::Inserted);
        }
        for k in 0..500u64 {
            if ga.at_max_density() {
                ga.expand();
            }
            assert_eq!(ga.insert(k * 2 + 1, k), InsertOutcome::Inserted);
        }
        ga.check_invariants();
        assert_eq!(ga.len(), 1000);
        for k in 0..1000u64 {
            assert!(ga.get(k).is_some(), "missing {k}");
        }
    }

    #[test]
    fn extreme_keys_do_not_overflow_model() {
        let keys: Vec<u64> = vec![0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        let payloads = vec![1, 2, 3, 4, 5];
        let ga = GappedArray::from_sorted(&keys, &payloads);
        ga.check_invariants();
        for (&k, &v) in keys.iter().zip(&payloads) {
            assert_eq!(ga.get(k), Some(v));
        }
        assert_eq!(ga.lower_bound_entry(2), Some((u64::MAX / 2, 3)));
    }
}
