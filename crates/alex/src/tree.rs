//! The ALEX tree: a model-routed directory of gapped-array leaves.
//!
//! ALEX (ref. \[11\]) routes lookups through internal nodes whose linear
//! models pick a child directly. This implementation keeps one such level: a
//! linear model over the sorted leaf-boundary keys predicts the leaf index,
//! and a measured error window corrects it — the same model-plus-bound
//! pattern every learned structure in this workspace uses, so routing cost
//! is comparable to one RMI stage. Leaves are [`GappedArray`]s: inserts are
//! model-based, occasionally shifting toward a gap.
//!
//! Adaptivity follows ALEX's two escape hatches: a leaf that reaches its
//! density limit *expands* in place (retraining its model) while it is
//! small, and *splits sideways* into two leaves once it outgrows
//! [`MAX_LEAF_ENTRIES`]; splits retrain the root model over the new
//! boundary set.

use crate::gapped::{GappedArray, InsertOutcome, LinearModel};
use sosd_core::dynamic::{BulkLoad, DynamicOrderedIndex};
use sosd_core::{Capabilities, IndexKind, Key};

/// Default maximum leaf size: a leaf that would expand beyond this many
/// entries splits instead. Tune with [`AlexTree::with_max_leaf`].
pub const MAX_LEAF_ENTRIES: usize = 8192;

/// An ALEX-style updatable adaptive learned index.
pub struct AlexTree<K: Key> {
    /// `boundaries[i]` = smallest routable key of leaf `i`;
    /// `boundaries[0] == K::MIN_KEY` so every key routes somewhere.
    boundaries: Vec<K>,
    leaves: Vec<GappedArray<K>>,
    root_model: LinearModel,
    /// Measured max |predicted leaf - actual leaf| over the boundaries.
    root_err: usize,
    len: usize,
    splits: u64,
    expansions: u64,
    /// Split threshold: leaves at or above this size split instead of
    /// expanding in place.
    max_leaf_entries: usize,
}

impl<K: Key> Default for AlexTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> AlexTree<K> {
    /// An empty tree with a single empty leaf and the default leaf size.
    pub fn new() -> Self {
        Self::with_max_leaf(MAX_LEAF_ENTRIES)
    }

    /// An empty tree whose leaves split at `max_leaf_entries`. Bigger
    /// leaves mean fewer root-level hops but costlier expansions and worse
    /// local models on erratic data — ALEX's node-size tradeoff, swept by
    /// the `ext04` ablation.
    pub fn with_max_leaf(max_leaf_entries: usize) -> Self {
        let mut t = AlexTree {
            boundaries: vec![K::MIN_KEY],
            leaves: vec![GappedArray::new()],
            root_model: LinearModel::fit::<K>(&[], 0.0),
            root_err: 0,
            len: 0,
            splits: 0,
            expansions: 0,
            max_leaf_entries: max_leaf_entries.max(64),
        };
        t.retrain_root();
        t
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Sideways splits performed so far.
    pub fn split_count(&self) -> u64 {
        self.splits
    }

    /// In-place leaf expansions performed so far.
    pub fn expansion_count(&self) -> u64 {
        self.expansions
    }

    /// Total slots shifted by leaf inserts (ALEX's insert-cost signal).
    pub fn shift_count(&self) -> u64 {
        self.leaves.iter().map(GappedArray::shift_count).sum()
    }

    /// Measured root-model error window (leaves).
    pub fn root_error(&self) -> usize {
        self.root_err
    }

    /// Rebuild every leaf at build density with a retrained model and
    /// retrain the root — reclaims the gaps left by deletes (ALEX's node
    /// contraction, done eagerly for the whole tree).
    pub fn compact(&mut self) {
        for leaf in &mut self.leaves {
            leaf.expand(); // rebuild at BUILD_DENSITY (shrinks after deletes)
        }
        self.retrain_root();
    }

    fn retrain_root(&mut self) {
        let n = self.boundaries.len();
        self.root_model = LinearModel::fit(&self.boundaries, (n - 1) as f64);
        let mut err = 0usize;
        for (i, &b) in self.boundaries.iter().enumerate() {
            let pred = self.root_model.predict(b).round().clamp(0.0, (n - 1) as f64) as usize;
            err = err.max(pred.abs_diff(i));
        }
        self.root_err = err;
    }

    /// Leaf index whose domain contains `key`: model prediction corrected
    /// within the measured error window.
    #[inline]
    fn route(&self, key: K) -> usize {
        let n = self.boundaries.len();
        let pred = self.root_model.predict(key).round().clamp(0.0, (n - 1) as f64) as usize;
        let lo = pred.saturating_sub(self.root_err + 1);
        let hi = (pred + self.root_err + 2).min(n);
        // Floor search: last boundary <= key within the guaranteed window.
        let w = &self.boundaries[lo..hi];
        let i = lo + w.partition_point(|&b| b <= key);
        i.saturating_sub(1).min(n - 1)
    }

    /// Insert into leaf `li`, expanding or splitting as needed.
    fn insert_into_leaf(&mut self, mut li: usize, key: K, payload: u64) -> Option<u64> {
        loop {
            match self.leaves[li].insert(key, payload) {
                InsertOutcome::Inserted => {
                    self.len += 1;
                    return None;
                }
                InsertOutcome::Replaced(prev) => return Some(prev),
                InsertOutcome::NeedsExpand => {
                    if self.leaves[li].len() < self.max_leaf_entries {
                        self.leaves[li].expand();
                        self.expansions += 1;
                    } else {
                        // Sideways split: replace leaf li with two halves.
                        let old = std::mem::take(&mut self.leaves[li]);
                        let (a, b) = old.split();
                        let b_min = b.min_key().expect("split halves are non-empty");
                        self.leaves[li] = a;
                        self.leaves.insert(li + 1, b);
                        self.boundaries.insert(li + 1, b_min);
                        self.splits += 1;
                        self.retrain_root();
                        if key >= b_min {
                            li += 1;
                        }
                    }
                }
            }
        }
    }

    /// Validate routing and leaf invariants (tests only; O(n)).
    pub fn check_invariants(&self) {
        assert_eq!(self.boundaries.len(), self.leaves.len());
        assert_eq!(self.boundaries[0], K::MIN_KEY);
        assert!(self.boundaries.windows(2).all(|w| w[0] < w[1]), "boundaries must be sorted");
        let mut total = 0usize;
        for (i, leaf) in self.leaves.iter().enumerate() {
            leaf.check_invariants();
            total += leaf.len();
            for (k, _) in leaf.entries() {
                assert!(k >= self.boundaries[i], "leaf {i} holds key below its boundary");
                if i + 1 < self.boundaries.len() {
                    assert!(k < self.boundaries[i + 1], "leaf {i} holds key beyond its domain");
                }
                assert_eq!(self.route(k), i, "routing must find the owning leaf for {k}");
            }
        }
        assert_eq!(total, self.len);
    }
}

impl<K: Key> BulkLoad<K> for AlexTree<K> {
    /// Chunk the sorted input into half-max-size leaves (so bulk-loaded
    /// leaves have room to grow before splitting), each model-built at
    /// build density, then fit the root over the boundaries.
    fn bulk_load(keys: &[K], payloads: &[u64]) -> Self {
        assert_eq!(keys.len(), payloads.len());
        if keys.is_empty() {
            return AlexTree::new();
        }
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "bulk_load requires strictly sorted keys"
        );
        let mut boundaries = Vec::new();
        let mut leaves = Vec::new();
        let per_leaf = MAX_LEAF_ENTRIES / 2;
        for start in (0..keys.len()).step_by(per_leaf) {
            let end = (start + per_leaf).min(keys.len());
            boundaries.push(if start == 0 { K::MIN_KEY } else { keys[start] });
            leaves.push(GappedArray::from_sorted(&keys[start..end], &payloads[start..end]));
        }
        let mut t = AlexTree {
            boundaries,
            leaves,
            root_model: LinearModel::fit::<K>(&[], 0.0),
            root_err: 0,
            len: keys.len(),
            splits: 0,
            expansions: 0,
            max_leaf_entries: MAX_LEAF_ENTRIES,
        };
        t.retrain_root();
        t
    }
}

impl<K: Key> DynamicOrderedIndex<K> for AlexTree<K> {
    fn name(&self) -> &'static str {
        "ALEX"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.boundaries.capacity() * std::mem::size_of::<K>()
            + self.leaves.iter().map(GappedArray::size_bytes).sum::<usize>()
    }

    fn insert(&mut self, key: K, payload: u64) -> Option<u64> {
        let li = self.route(key);
        self.insert_into_leaf(li, key, payload)
    }

    /// O(1) per ALEX's delete path: the owning leaf clears the slot's
    /// occupancy bit. Leaves are not contracted on shrink (ALEX's optional
    /// contraction is future work here); a delete-heavy leaf simply keeps
    /// extra gaps, which later inserts reuse.
    fn remove(&mut self, key: K) -> Option<u64> {
        let li = self.route(key);
        let removed = self.leaves[li].remove(key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn get(&self, key: K) -> Option<u64> {
        self.leaves[self.route(key)].get(key)
    }

    fn lower_bound_entry(&self, key: K) -> Option<(K, u64)> {
        let mut li = self.route(key);
        loop {
            if let Some(e) = self.leaves[li].lower_bound_entry(key) {
                return Some(e);
            }
            li += 1;
            if li >= self.leaves.len() {
                return None;
            }
        }
    }

    /// One [`AlexTree::for_each_in`] leaf walk, summing as it goes.
    fn range_sum(&self, lo: K, hi: K) -> u64 {
        let mut sum = 0u64;
        self.for_each_in(lo, hi, &mut |_, p| sum = sum.wrapping_add(p));
        sum
    }

    /// Leaf-walk override: one root routing for `lo`, then each in-range
    /// leaf is scanned with its occupancy-bit slot walk — `O(route + m)`
    /// over the trait's `O(m log n)` lower-bound bridge. Leaf domains are
    /// contiguous and sorted, so visiting leaves left to right emits keys
    /// in ascending order.
    fn for_each_in(&self, lo: K, hi: K, f: &mut dyn FnMut(K, u64)) {
        if hi <= lo {
            return;
        }
        let mut li = self.route(lo);
        while li < self.leaves.len() && self.boundaries[li] < hi {
            self.leaves[li].for_each_in(lo, hi, f);
            li += 1;
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Learned }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_tree_answers_nothing() {
        let t = AlexTree::<u64>::new();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(0), None);
        assert_eq!(t.lower_bound_entry(0), None);
        assert_eq!(t.range_sum(0, u64::MAX), 0);
    }

    #[test]
    fn inserts_split_into_multiple_leaves() {
        let mut t = AlexTree::new();
        for i in 0..50_000u64 {
            t.insert(splitmix(i), i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 50_000);
        assert!(t.num_leaves() > 1, "50k inserts must split leaves");
        assert!(t.split_count() > 0);
        for i in (0..50_000u64).step_by(97) {
            assert_eq!(t.get(splitmix(i)), Some(i));
        }
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let mut t = AlexTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..40_000u64 {
            let k = splitmix(i) % 15_000;
            let v = splitmix(i ^ 0x1234);
            assert_eq!(t.insert(k, v), oracle.insert(k, v), "insert #{i} key {k}");
        }
        t.check_invariants();
        assert_eq!(t.len(), oracle.len());
        for k in 0..15_000u64 {
            assert_eq!(t.get(k), oracle.get(&k).copied(), "get {k}");
        }
    }

    #[test]
    fn lower_bound_crosses_leaves() {
        let keys: Vec<u64> = (0..20_000).map(|i| i * 5).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 1).collect();
        let t = AlexTree::bulk_load(&keys, &payloads);
        assert!(t.num_leaves() > 1);
        let oracle: BTreeMap<u64, u64> =
            keys.iter().zip(&payloads).map(|(&k, &v)| (k, v)).collect();
        for probe in (0..100_010u64).step_by(487) {
            let expect = oracle.range(probe..).next().map(|(&k, &v)| (k, v));
            assert_eq!(t.lower_bound_entry(probe), expect, "lb {probe}");
        }
        assert_eq!(t.lower_bound_entry(u64::MAX), None);
    }

    #[test]
    fn range_sum_matches_oracle() {
        let mut t = AlexTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..20_000u64 {
            let k = splitmix(i) % 500_000;
            t.insert(k, i);
            oracle.insert(k, i);
        }
        for i in 0..50u64 {
            let lo = splitmix(i * 7) % 500_000;
            let hi = lo + splitmix(i * 3) % 100_000;
            let expect: u64 = oracle.range(lo..hi).fold(0u64, |a, (_, &v)| a.wrapping_add(v));
            assert_eq!(t.range_sum(lo, hi), expect, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn bulk_load_then_mixed_ops() {
        let keys: Vec<u64> = (0..100_000).map(|i| i * 10).collect();
        let payloads = vec![1u64; keys.len()];
        let mut t = AlexTree::bulk_load(&keys, &payloads);
        let mut oracle: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, 1)).collect();
        t.check_invariants();
        for i in 0..30_000u64 {
            let k = splitmix(i) % 1_000_000;
            assert_eq!(t.insert(k, 2), oracle.insert(k, 2), "insert {k}");
        }
        assert_eq!(t.len(), oracle.len());
        for probe in (0..1_000_000u64).step_by(7919) {
            assert_eq!(t.get(probe), oracle.get(&probe).copied(), "get {probe}");
        }
    }

    #[test]
    fn sequential_append_workload() {
        // The classic ALEX stress: monotonically increasing inserts hammer
        // the rightmost leaf.
        let mut t = AlexTree::new();
        for k in 0..30_000u64 {
            assert_eq!(t.insert(k, k), None);
        }
        t.check_invariants();
        assert_eq!(t.len(), 30_000);
        assert!(t.num_leaves() > 1);
        assert_eq!(t.range_sum(0, 30_000), (0..30_000u64).sum::<u64>());
    }

    #[test]
    fn model_based_inserts_shift_little_on_uniform_data() {
        let keys: Vec<u64> = (0..50_000).map(|i| i * 1000).collect();
        let payloads = vec![0u64; keys.len()];
        let mut t = AlexTree::bulk_load(&keys, &payloads);
        for i in 0..10_000u64 {
            t.insert(splitmix(i) % 50_000_000, 1);
        }
        let shifts_per_insert = t.shift_count() as f64 / 10_000.0;
        assert!(shifts_per_insert < 8.0, "gapped inserts shifting too much: {shifts_per_insert}");
    }

    #[test]
    fn size_bytes_counts_leaves() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 2).collect();
        let payloads = vec![0u64; keys.len()];
        let t = AlexTree::bulk_load(&keys, &payloads);
        // Gapped arrays intentionally over-allocate (1/density).
        assert!(t.size_bytes() >= 10_000 * 16);
    }

    #[test]
    fn u32_keys_supported() {
        let mut t = AlexTree::<u32>::new();
        let mut oracle = BTreeMap::new();
        for i in 0..10_000u32 {
            let k = (splitmix(i as u64) % 1_000_000) as u32;
            let v = i as u64;
            assert_eq!(t.insert(k, v), oracle.insert(k, v));
        }
        t.check_invariants();
        for k in (0..1_000_000u32).step_by(3331) {
            assert_eq!(t.get(k), oracle.get(&k).copied());
        }
    }
    #[test]
    fn for_each_in_walks_leaves_in_order() {
        let mut t = AlexTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..30_000u64 {
            let k = splitmix(i) % 90_000;
            let v = splitmix(i ^ 0x51);
            t.insert(k, v);
            oracle.insert(k, v);
        }
        assert!(t.num_leaves() > 1, "walk must cross leaves");
        for (lo, hi) in [(0u64, 90_000), (5_000, 70_000), (33_333, 33_334)] {
            let mut got = Vec::new();
            t.for_each_in(lo, hi, &mut |k, v| got.push((k, v)));
            let want: Vec<(u64, u64)> = oracle.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "range [{lo}, {hi})");
        }
        // Inverted and empty windows visit nothing.
        for (lo, hi) in [(70_000u64, 5_000u64), (400, 400)] {
            t.for_each_in(lo, hi, &mut |k, _| panic!("visited {k} in [{lo}, {hi})"));
        }
    }

    #[test]
    fn for_each_in_skips_deleted_slots_and_honors_extreme_keys() {
        let keys: Vec<u64> = (0..20_000).map(|i| i * 3).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 1).collect();
        let mut t = AlexTree::bulk_load(&keys, &payloads);
        let mut oracle: BTreeMap<u64, u64> =
            keys.iter().zip(&payloads).map(|(&k, &v)| (k, v)).collect();
        // Punch a hole so the walk must skip emptied gapped slots.
        for k in (9_000..30_000u64).step_by(3) {
            t.remove(k);
            oracle.remove(&k);
        }
        t.insert(u64::MAX, 7);
        oracle.insert(u64::MAX, 7);
        let mut got = Vec::new();
        t.for_each_in(0, u64::MAX, &mut |k, v| got.push((k, v)));
        let want: Vec<(u64, u64)> = oracle.range(..u64::MAX).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "hi is exclusive; deleted slots skipped");
    }

    #[test]
    fn remove_clears_slots_and_reuses_gaps() {
        let keys: Vec<u64> = (0..20_000).map(|i| i * 4).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 3).collect();
        let mut t = AlexTree::bulk_load(&keys, &payloads);
        for i in 0..10_000u64 {
            assert_eq!(t.remove(i * 8), Some(i * 8 + 3), "remove {i}");
        }
        t.check_invariants();
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(4), Some(7));
        assert_eq!(t.lower_bound_entry(0), Some((4, 7)));
        // Reinsert into the freed gaps; shifts should be rare.
        let shifts_before = t.shift_count();
        for i in 0..10_000u64 {
            assert_eq!(t.insert(i * 8, i), None, "reinsert {i}");
        }
        t.check_invariants();
        assert_eq!(t.len(), 20_000);
        let shifts = t.shift_count() - shifts_before;
        assert!(
            (shifts as f64) / 10_000.0 < 1.0,
            "reinserts into freed slots should barely shift: {shifts}"
        );
    }

    #[test]
    fn remove_matches_btreemap_interleaved() {
        let mut t = AlexTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..30_000u64 {
            let k = splitmix(i) % 8_000;
            if i % 3 == 0 {
                assert_eq!(t.remove(k), oracle.remove(&k), "remove {k}");
            } else {
                let v = splitmix(i ^ 0x77);
                assert_eq!(t.insert(k, v), oracle.insert(k, v), "insert {k}");
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), oracle.len());
        for k in 0..8_000u64 {
            assert_eq!(t.get(k), oracle.get(&k).copied(), "get {k}");
        }
    }

    #[test]
    fn compact_shrinks_after_heavy_deletes() {
        let keys: Vec<u64> = (0..50_000).map(|i| i * 2).collect();
        let payloads = vec![9u64; keys.len()];
        let mut t = AlexTree::bulk_load(&keys, &payloads);
        for i in 0..45_000u64 {
            t.remove(i * 2);
        }
        let before = t.size_bytes();
        t.compact();
        t.check_invariants();
        assert!(t.size_bytes() < before / 2, "90% deletes must shrink the tree substantially");
        assert_eq!(t.len(), 5_000);
        assert_eq!(t.get(45_000 * 2), Some(9));
        assert_eq!(t.lower_bound_entry(0), Some((90_000, 9)));
    }
}
