//! # sosd-alex
//!
//! An ALEX-style updatable adaptive learned index (Ding et al. — ref. \[11\]
//! of the paper), the structure the paper's conclusion points to for "the
//! next generation of learned index structures which supports writes".

pub mod gapped;
pub mod tree;

pub use gapped::{GappedArray, InsertOutcome};
pub use tree::{AlexTree, MAX_LEAF_ENTRIES};
