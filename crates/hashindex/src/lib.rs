//! # sosd-hash
//!
//! Hash-table baselines: a RobinHood open-addressing table and a bucketized
//! two-choice cuckoo map (Section 4.1.1, Table 2).
//!
//! Hash tables answer *point* lookups in O(1) but do not support ordered
//! (lower-bound) queries; for present keys they return an exact single-
//! position bound, for absent keys they fall back to the full-array bound.
//! The paper evaluates them only on present-key workloads, where they hold
//! the latency record at a massive memory cost — our Table 2 reproduces
//! exactly that tradeoff. Load factors follow the paper's tuning: 0.25 for
//! RobinHood, 0.99 for the cuckoo map.

pub mod cuckoo;
pub mod robinhood;

pub use cuckoo::{CuckooBuilder, CuckooMap};
pub use robinhood::{RobinHoodBuilder, RobinHoodMap};
