//! Bucketized two-choice cuckoo hashing with packed 4-slot buckets.
//!
//! Mirrors the SIMD cuckoo map the paper benchmarks (Stanford
//! index-baselines): every key lives in one of two buckets of four slots;
//! a lookup compares all four slots of a bucket at once (here: branch-free
//! unrolled scalar compares over one 64-byte bucket — one cache line).
//! The paper's implementation supports 32-bit keys only; ours is generic
//! but Table 2 uses it with `u32` just like the paper.

use sosd_core::trace::addr_of_index;
use sosd_core::util::{splitmix64, XorShift64};
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// Slots per bucket (one cache line of key/pos pairs).
const BUCKET_SLOTS: usize = 4;
/// Random-walk eviction budget per insert before growing the table.
const MAX_KICKS: usize = 500;

/// A 4-slot bucket: keys and positions in parallel arrays, empty slots
/// marked by `pos == u32::MAX`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    keys: [u64; BUCKET_SLOTS],
    pos: [u32; BUCKET_SLOTS],
}

const EMPTY_POS: u32 = u32::MAX;

impl Bucket {
    fn empty() -> Bucket {
        Bucket { keys: [0; BUCKET_SLOTS], pos: [EMPTY_POS; BUCKET_SLOTS] }
    }

    /// Branch-free 4-way compare; returns the matching position if any.
    #[inline]
    fn find(&self, k: u64) -> Option<u32> {
        let mut found = EMPTY_POS;
        for i in 0..BUCKET_SLOTS {
            let hit = (self.keys[i] == k) & (self.pos[i] != EMPTY_POS);
            found = if hit { self.pos[i] } else { found };
        }
        (found != EMPTY_POS).then_some(found)
    }

    fn insert_free(&mut self, k: u64, p: u32) -> bool {
        for i in 0..BUCKET_SLOTS {
            if self.pos[i] == EMPTY_POS {
                self.keys[i] = k;
                self.pos[i] = p;
                return true;
            }
        }
        false
    }
}

/// The cuckoo map from key to first-occurrence position.
pub struct CuckooMap<K: Key> {
    buckets: Vec<Bucket>,
    mask: usize,
    n: usize,
    _marker: std::marker::PhantomData<K>,
}

#[inline]
fn hash1(k: u64) -> u64 {
    splitmix64(k)
}

#[inline]
fn hash2(k: u64) -> u64 {
    splitmix64(k ^ 0x9E37_79B9_7F4A_7C15)
}

impl<K: Key> CuckooMap<K> {
    /// Build at the given load factor (the paper tunes to 0.99).
    pub fn build(data: &SortedData<K>, load_factor: f64) -> Result<Self, BuildError> {
        if !(0.05..=0.99).contains(&load_factor) {
            return Err(BuildError::InvalidConfig(format!(
                "load factor must be in [0.05, 0.99], got {load_factor}"
            )));
        }
        if data.len() >= EMPTY_POS as usize {
            return Err(BuildError::Unbuildable("dataset too large for u32 positions".into()));
        }
        let mut num_buckets = ((data.len() as f64 / (BUCKET_SLOTS as f64 * load_factor)) as usize)
            .next_power_of_two()
            .max(2);
        // Retry with a bigger table if the random walk fails to place a key.
        for _attempt in 0..4 {
            match Self::try_build(data, num_buckets) {
                Some(map) => return Ok(map),
                None => num_buckets *= 2,
            }
        }
        Err(BuildError::Unbuildable("cuckoo insertion kept failing after 4 growth rounds".into()))
    }

    fn try_build(data: &SortedData<K>, num_buckets: usize) -> Option<CuckooMap<K>> {
        let mut buckets = vec![Bucket::empty(); num_buckets];
        let mask = num_buckets - 1;
        let mut rng = XorShift64::new(0xC0C0_0C0C ^ num_buckets as u64);
        let mut prev: Option<u64> = None;
        for (i, &key) in data.keys().iter().enumerate() {
            let k = key.to_u64();
            if prev == Some(k) {
                continue;
            }
            prev = Some(k);
            let mut cur_key = k;
            let mut cur_pos = i as u32;
            let b1 = hash1(cur_key) as usize & mask;
            let b2 = hash2(cur_key) as usize & mask;
            if buckets[b1].insert_free(cur_key, cur_pos)
                || buckets[b2].insert_free(cur_key, cur_pos)
            {
                continue;
            }
            // Random-walk eviction.
            let mut victim_bucket = if rng.next_u64() & 1 == 0 { b1 } else { b2 };
            let mut placed = false;
            for _ in 0..MAX_KICKS {
                let slot = rng.next_below(BUCKET_SLOTS as u64) as usize;
                let b = &mut buckets[victim_bucket];
                std::mem::swap(&mut cur_key, &mut b.keys[slot]);
                std::mem::swap(&mut cur_pos, &mut b.pos[slot]);
                // Move the evicted key to its alternate bucket.
                let h1 = hash1(cur_key) as usize & mask;
                let h2 = hash2(cur_key) as usize & mask;
                let alt = if victim_bucket == h1 { h2 } else { h1 };
                if buckets[alt].insert_free(cur_key, cur_pos) {
                    placed = true;
                    break;
                }
                victim_bucket = alt;
            }
            if !placed {
                return None;
            }
        }
        Some(CuckooMap { buckets, mask, n: data.len(), _marker: std::marker::PhantomData })
    }

    /// Point lookup: position of the key's first occurrence.
    #[inline]
    pub fn get<T: Tracer>(&self, key: K, tracer: &mut T) -> Option<u32> {
        let k = key.to_u64();
        let b1 = hash1(k) as usize & self.mask;
        tracer.instr(8);
        tracer.read(addr_of_index(&self.buckets, b1), std::mem::size_of::<Bucket>());
        if let Some(p) = self.buckets[b1].find(k) {
            return Some(p);
        }
        let b2 = hash2(k) as usize & self.mask;
        tracer.instr(8);
        tracer.read(addr_of_index(&self.buckets, b2), std::mem::size_of::<Bucket>());
        self.buckets[b2].find(k)
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        match self.get(key, tracer) {
            Some(pos) => SearchBound { lo: pos as usize, hi: pos as usize + 1 },
            None => SearchBound::full(self.n),
        }
    }
}

impl<K: Key> Index<K> for CuckooMap<K> {
    fn name(&self) -> &'static str {
        "CuckooMap"
    }

    fn size_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Bucket>()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: false, kind: IndexKind::Hash }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`CuckooMap`].
#[derive(Debug, Clone)]
pub struct CuckooBuilder {
    /// Target load factor (paper: 0.99 maximizes lookup performance).
    pub load_factor: f64,
}

impl Default for CuckooBuilder {
    fn default() -> Self {
        CuckooBuilder { load_factor: 0.99 }
    }
}

impl<K: Key> IndexBuilder<K> for CuckooBuilder {
    type Output = CuckooMap<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        CuckooMap::build(data, self.load_factor)
    }

    fn describe(&self) -> String {
        format!("CuckooMap[lf={}]", self.load_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn finds_every_key_even_at_high_load() {
        let mut rng = XorShift64::new(17);
        let mut keys: Vec<u64> = (0..20_000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        let data = SortedData::new(keys.clone()).unwrap();
        for lf in [0.5, 0.9, 0.99] {
            let map = CuckooMap::build(&data, lf).unwrap();
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(map.get(k, &mut NullTracer), Some(i as u32), "lf={lf}");
            }
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 2).collect();
        let data = SortedData::new(keys).unwrap();
        let map = CuckooMap::build(&data, 0.9).unwrap();
        for i in 0..2000u64 {
            assert_eq!(map.get(i * 2 + 1, &mut NullTracer), None);
        }
    }

    #[test]
    fn agrees_with_std_hashmap_under_duplicates() {
        let mut rng = XorShift64::new(23);
        let mut keys: Vec<u64> = (0..3000).map(|_| rng.next_below(5_000)).collect();
        keys.sort_unstable();
        let data = SortedData::new(keys.clone()).unwrap();
        let map = CuckooMap::build(&data, 0.8).unwrap();
        let mut oracle: HashMap<u64, u32> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            oracle.entry(k).or_insert(i as u32);
        }
        for probe in 0..5_000u64 {
            assert_eq!(map.get(probe, &mut NullTracer), oracle.get(&probe).copied());
        }
    }

    #[test]
    fn lookup_reads_at_most_two_buckets() {
        use sosd_core::CountingTracer;
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 7 + 1).collect();
        let data = SortedData::new(keys.clone()).unwrap();
        let map = CuckooMap::build(&data, 0.95).unwrap();
        for &k in keys.iter().step_by(53) {
            let mut t = CountingTracer::default();
            assert!(map.get(k, &mut t).is_some());
            assert!(t.reads <= 2, "cuckoo lookups touch <= 2 buckets");
        }
    }

    #[test]
    fn works_with_u32_keys_like_the_paper() {
        let keys: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut sorted = keys;
        sorted.sort_unstable();
        sorted.dedup();
        let data = SortedData::new(sorted.clone()).unwrap();
        let map = CuckooMap::build(&data, 0.99).unwrap();
        for (i, &k) in sorted.iter().enumerate() {
            assert_eq!(map.get(k, &mut NullTracer), Some(i as u32));
        }
    }

    #[test]
    fn high_load_factor_is_compact() {
        let keys: Vec<u64> = (0..40_000u64).collect();
        let data = SortedData::new(keys).unwrap();
        let tight = CuckooMap::build(&data, 0.99).unwrap();
        // 40k keys * 16 bytes/slot at ~99% load in power-of-two buckets.
        let bytes = Index::<u64>::size_bytes(&tight);
        assert!(bytes <= 40_000 * 16 * 2, "size {bytes}");
    }

    #[test]
    fn rejects_bad_load_factor() {
        let data = SortedData::new(vec![1u64]).unwrap();
        assert!(CuckooMap::build(&data, 0.0).is_err());
        assert!(CuckooMap::build(&data, 1.5).is_err());
    }
}
