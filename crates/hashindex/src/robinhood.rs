//! RobinHood hashing: linear probing where rich entries (short probe
//! distances) yield their slots to poor ones, keeping the probe-length
//! variance tiny even at high load.

use sosd_core::trace::addr_of_index;
use sosd_core::util::splitmix64;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// A table entry; `pos == u32::MAX` marks an empty slot (positions are
/// bounded far below that by construction).
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    pos: u32,
}

const EMPTY_POS: u32 = u32::MAX;

/// RobinHood hash map from key to first-occurrence position.
pub struct RobinHoodMap<K: Key> {
    slots: Vec<Entry>,
    mask: usize,
    n: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Key> RobinHoodMap<K> {
    /// Build at the given load factor (the paper tunes to 0.25).
    pub fn build(data: &SortedData<K>, load_factor: f64) -> Result<Self, BuildError> {
        if !(0.05..=0.97).contains(&load_factor) {
            return Err(BuildError::InvalidConfig(format!(
                "load factor must be in [0.05, 0.97], got {load_factor}"
            )));
        }
        if data.len() >= EMPTY_POS as usize {
            return Err(BuildError::Unbuildable("dataset too large for u32 positions".into()));
        }
        let cap = ((data.len() as f64 / load_factor) as usize).next_power_of_two().max(8);
        let mut slots = vec![Entry { key: 0, pos: EMPTY_POS }; cap];
        let mask = cap - 1;

        let mut prev: Option<u64> = None;
        for (i, &k) in data.keys().iter().enumerate() {
            let k = k.to_u64();
            if prev == Some(k) {
                continue; // keep the first occurrence of duplicate keys
            }
            prev = Some(k);
            // RobinHood insert: displace entries with shorter probe distance.
            let mut entry = Entry { key: k, pos: i as u32 };
            let mut idx = splitmix64(k) as usize & mask;
            let mut dist = 0usize;
            loop {
                if slots[idx].pos == EMPTY_POS {
                    slots[idx] = entry;
                    break;
                }
                let their_dist = idx.wrapping_sub(splitmix64(slots[idx].key) as usize) & mask;
                if their_dist < dist {
                    std::mem::swap(&mut entry, &mut slots[idx]);
                    dist = their_dist;
                }
                idx = (idx + 1) & mask;
                dist += 1;
            }
        }
        Ok(RobinHoodMap { slots, mask, n: data.len(), _marker: std::marker::PhantomData })
    }

    /// Point lookup: position of the key's first occurrence.
    #[inline]
    pub fn get<T: Tracer>(&self, key: K, tracer: &mut T) -> Option<u32> {
        let k = key.to_u64();
        let mut idx = splitmix64(k) as usize & self.mask;
        let mut dist = 0usize;
        tracer.instr(6);
        loop {
            tracer.read(addr_of_index(&self.slots, idx), std::mem::size_of::<Entry>());
            let e = self.slots[idx];
            if e.pos == EMPTY_POS {
                return None;
            }
            if e.key == k {
                return Some(e.pos);
            }
            // RobinHood invariant: once our distance exceeds the resident's,
            // the key cannot be further along.
            let their_dist = idx.wrapping_sub(splitmix64(e.key) as usize) & self.mask;
            if their_dist < dist {
                return None;
            }
            idx = (idx + 1) & self.mask;
            dist += 1;
            tracer.instr(8);
        }
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        match self.get(key, tracer) {
            Some(pos) => SearchBound { lo: pos as usize, hi: pos as usize + 1 },
            None => SearchBound::full(self.n),
        }
    }
}

impl<K: Key> Index<K> for RobinHoodMap<K> {
    fn name(&self) -> &'static str {
        "RobinHash"
    }

    fn size_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Entry>()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: false, kind: IndexKind::Hash }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`RobinHoodMap`].
#[derive(Debug, Clone)]
pub struct RobinHoodBuilder {
    /// Target load factor (paper: 0.25 maximizes lookup performance).
    pub load_factor: f64,
}

impl Default for RobinHoodBuilder {
    fn default() -> Self {
        RobinHoodBuilder { load_factor: 0.25 }
    }
}

impl<K: Key> IndexBuilder<K> for RobinHoodBuilder {
    type Output = RobinHoodMap<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        RobinHoodMap::build(data, self.load_factor)
    }

    fn describe(&self) -> String {
        format!("RobinHash[lf={}]", self.load_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::util::XorShift64;
    use std::collections::HashMap;

    #[test]
    fn finds_every_key_at_various_load_factors() {
        let mut rng = XorShift64::new(3);
        let mut keys: Vec<u64> = (0..5000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        let data = SortedData::new(keys.clone()).unwrap();
        for lf in [0.1, 0.25, 0.5, 0.9] {
            let map = RobinHoodMap::build(&data, lf).unwrap();
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(map.get(k, &mut NullTracer), Some(i as u32), "lf={lf} key={k}");
            }
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 2).collect();
        let data = SortedData::new(keys).unwrap();
        let map = RobinHoodMap::build(&data, 0.25).unwrap();
        for i in 0..1000u64 {
            assert_eq!(map.get(i * 2 + 1, &mut NullTracer), None);
        }
    }

    #[test]
    fn agrees_with_std_hashmap() {
        let mut rng = XorShift64::new(11);
        let mut keys: Vec<u64> = (0..3000).map(|_| rng.next_below(10_000)).collect();
        keys.sort_unstable();
        let data = SortedData::new(keys.clone()).unwrap();
        let map = RobinHoodMap::build(&data, 0.4).unwrap();
        let mut oracle: HashMap<u64, u32> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            oracle.entry(k).or_insert(i as u32); // first occurrence
        }
        for probe in 0..10_000u64 {
            assert_eq!(map.get(probe, &mut NullTracer), oracle.get(&probe).copied());
        }
    }

    #[test]
    fn duplicates_map_to_first_occurrence() {
        let keys = vec![5u64, 5, 5, 9, 9, 12];
        let data = SortedData::new(keys).unwrap();
        let map = RobinHoodMap::build(&data, 0.25).unwrap();
        assert_eq!(map.get(5u64, &mut NullTracer), Some(0));
        assert_eq!(map.get(9u64, &mut NullTracer), Some(3));
    }

    #[test]
    fn search_bound_is_exact_for_present_keys() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let data = SortedData::new(keys).unwrap();
        let map = RobinHoodMap::build(&data, 0.25).unwrap();
        let b = map.search_bound(300u64);
        assert_eq!(b, SearchBound { lo: 100, hi: 101 });
        assert_eq!(map.search_bound(301u64), SearchBound::full(500));
    }

    #[test]
    fn lower_load_factor_means_bigger_table() {
        let keys: Vec<u64> = (0..4096u64).collect();
        let data = SortedData::new(keys).unwrap();
        let dense = RobinHoodMap::build(&data, 0.9).unwrap();
        let sparse = RobinHoodMap::build(&data, 0.1).unwrap();
        assert!(Index::<u64>::size_bytes(&sparse) > 4 * Index::<u64>::size_bytes(&dense));
    }

    #[test]
    fn rejects_bad_load_factor() {
        let data = SortedData::new(vec![1u64]).unwrap();
        assert!(RobinHoodMap::build(&data, 0.0).is_err());
        assert!(RobinHoodMap::build(&data, 0.99).is_err());
    }

    #[test]
    fn probe_lengths_stay_short() {
        use sosd_core::CountingTracer;
        let mut rng = XorShift64::new(5);
        let mut keys: Vec<u64> = (0..20_000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        let data = SortedData::new(keys.clone()).unwrap();
        let map = RobinHoodMap::build(&data, 0.25).unwrap();
        let mut total_reads = 0u64;
        for &k in keys.iter().step_by(37) {
            let mut t = CountingTracer::default();
            map.get(k, &mut t);
            total_reads += t.reads;
        }
        let avg = total_reads as f64 / (keys.len() / 37) as f64;
        assert!(avg < 1.6, "avg probes {avg} too long at load 0.25");
    }
}
