//! Gshare branch prediction (2-bit saturating counters indexed by
//! global-history XOR branch site).

/// A gshare predictor.
#[derive(Debug, Clone)]
pub struct Gshare {
    /// 2-bit saturating counters (0-1 predict not-taken, 2-3 taken).
    table: Vec<u8>,
    mask: usize,
    history: u64,
    history_bits: u32,
    /// Branches observed.
    pub branches: u64,
    /// Mispredictions observed.
    pub misses: u64,
}

impl Gshare {
    /// Create with `2^index_bits` counters and `history_bits` of global
    /// history (defaults comparable to a modest modern predictor).
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!((4..=24).contains(&index_bits));
        Gshare {
            table: vec![1u8; 1 << index_bits], // weakly not-taken
            mask: (1 << index_bits) - 1,
            history: 0,
            history_bits: history_bits.min(index_bits),
            branches: 0,
            misses: 0,
        }
    }

    /// A 4096-entry predictor with 12 bits of history.
    pub fn default_predictor() -> Self {
        Gshare::new(12, 12)
    }

    /// Record one executed branch; returns true when predicted correctly.
    #[inline]
    pub fn record(&mut self, site: usize, taken: bool) -> bool {
        // Hash the site a little so adjacent branch sites spread out.
        let site_sig = (site as u64 >> 2) ^ (site as u64 >> 13);
        let idx = ((self.history ^ site_sig) as usize) & self.mask;
        let counter = &mut self.table[idx];
        let predicted_taken = *counter >= 2;
        let correct = predicted_taken == taken;
        self.branches += 1;
        if !correct {
            self.misses += 1;
        }
        *counter = match (taken, *counter) {
            (true, c) if c < 3 => c + 1,
            (false, c) if c > 0 => c - 1,
            (_, c) => c,
        };
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
        correct
    }

    /// Misprediction ratio so far.
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.misses as f64 / self.branches as f64
        }
    }

    /// Reset counters but keep learned state.
    pub fn reset_counters(&mut self) {
        self.branches = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = Gshare::default_predictor();
        for _ in 0..1000 {
            p.record(0x400123, true);
        }
        assert!(p.miss_rate() < 0.05, "rate {}", p.miss_rate());
    }

    #[test]
    fn learns_short_periodic_pattern() {
        // T T N repeated: history correlation should pick it up.
        let mut p = Gshare::default_predictor();
        for i in 0..600 {
            p.record(0x400200, i % 3 != 2);
        }
        p.reset_counters();
        for i in 600..1200 {
            p.record(0x400200, i % 3 != 2);
        }
        assert!(p.miss_rate() < 0.10, "rate {}", p.miss_rate());
    }

    #[test]
    fn random_outcomes_mispredict_about_half() {
        let mut p = Gshare::default_predictor();
        let mut state = 0x1234_5678u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.record(0x400300, (state >> 62) & 1 == 1);
        }
        let r = p.miss_rate();
        assert!((0.35..0.65).contains(&r), "rate {r}");
    }

    #[test]
    fn distinct_sites_do_not_destructively_collide() {
        let mut p = Gshare::new(16, 8);
        for _ in 0..2000 {
            p.record(0x1000, true);
            p.record(0x2000, false);
        }
        assert!(p.miss_rate() < 0.2, "rate {}", p.miss_rate());
    }

    #[test]
    fn counters_saturate() {
        let mut p = Gshare::new(8, 0);
        for _ in 0..10 {
            p.record(64, true);
        }
        // One not-taken after strong taken training: exactly one miss, and
        // the counter recovers quickly.
        p.reset_counters();
        p.record(64, false);
        assert_eq!(p.misses, 1);
        p.record(64, true);
        assert_eq!(p.misses, 1);
    }
}
