//! The simulator-backed [`Tracer`] and per-experiment statistics.

use crate::branch::Gshare;
use crate::cache::CacheHierarchy;
use sosd_core::{Index, Key};
use sosd_core::{SearchBound, SortedData, Tracer};

/// Counter snapshot, in absolute event counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimStats {
    /// Lookups measured.
    pub lookups: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// Last-level cache misses (the paper's "cache misses").
    pub llc_misses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// Instructions retired (estimate).
    pub instructions: u64,
    /// Memory reads issued.
    pub reads: u64,
}

impl SimStats {
    /// Per-lookup averages `(llc_misses, branch_misses, instructions)`.
    pub fn per_lookup(&self) -> (f64, f64, f64) {
        let n = self.lookups.max(1) as f64;
        (self.llc_misses as f64 / n, self.branch_misses as f64 / n, self.instructions as f64 / n)
    }
}

/// A [`Tracer`] backed by the cache hierarchy and branch predictor.
pub struct SimTracer {
    /// The simulated cache hierarchy.
    pub caches: CacheHierarchy,
    /// The simulated branch predictor.
    pub predictor: Gshare,
    /// Instruction count accumulator.
    pub instructions: u64,
    reads: u64,
}

impl SimTracer {
    /// Simulator with the laptop-scaled hierarchy.
    pub fn scaled_default() -> Self {
        SimTracer::new(CacheHierarchy::scaled_default())
    }

    /// Simulator with an explicit hierarchy.
    pub fn new(caches: CacheHierarchy) -> Self {
        SimTracer { caches, predictor: Gshare::default_predictor(), instructions: 0, reads: 0 }
    }

    /// Flush the simulated caches (Figure 14 cold-cache mode).
    pub fn flush_caches(&mut self) {
        self.caches.flush();
    }

    /// Zero all counters, keeping cache and predictor state (warm-up).
    pub fn reset_counters(&mut self) {
        self.caches.reset_counters();
        self.predictor.reset_counters();
        self.instructions = 0;
        self.reads = 0;
    }

    /// Snapshot the counters, attributing them to `lookups` lookups.
    pub fn stats(&self, lookups: u64) -> SimStats {
        SimStats {
            lookups,
            l1_misses: self.caches.l1.misses,
            llc_misses: self.caches.llc_misses(),
            branches: self.predictor.branches,
            branch_misses: self.predictor.misses,
            instructions: self.instructions,
            reads: self.reads,
        }
    }
}

impl Tracer for SimTracer {
    #[inline]
    fn read(&mut self, addr: usize, bytes: usize) {
        self.reads += 1;
        self.caches.access(addr, bytes);
    }

    #[inline]
    fn branch(&mut self, site: usize, taken: bool) {
        self.predictor.record(site, taken);
    }

    #[inline]
    fn instr(&mut self, count: u64) {
        self.instructions += count;
    }
}

/// Run a traced lookup loop over `probes`: index inference plus a traced
/// last-mile binary search over the data, optionally flushing caches
/// between lookups (cold mode). Counters are warmed with `warmup` lookups
/// first. Returns per-loop statistics.
pub fn measure_lookups<K: Key, I: Index<K> + ?Sized>(
    index: &I,
    data: &SortedData<K>,
    probes: &[K],
    tracer: &mut SimTracer,
    cold: bool,
    warmup: usize,
) -> SimStats {
    let run = |t: &mut SimTracer, keys: &[K]| {
        for &x in keys {
            if cold {
                t.flush_caches();
            }
            let bound: SearchBound = index.search_bound_traced(x, t);
            let pos = sosd_core::search::binary_search_traced(data.keys(), x, bound, t);
            // Touch the payload like the real harness does.
            if pos < data.len() {
                t.read(data.payloads().as_ptr() as usize + pos * 8, 8);
            }
        }
    };
    let warmup = warmup.min(probes.len());
    run(tracer, &probes[..warmup]);
    tracer.reset_counters();
    run(tracer, &probes[warmup..]);
    tracer.stats((probes.len() - warmup) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::NullTracer;

    struct NarrowIndex;

    impl Index<u64> for NarrowIndex {
        fn name(&self) -> &'static str {
            "narrow"
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn search_bound(&self, key: u64) -> SearchBound {
            let est = (key / 2) as usize;
            SearchBound::from_estimate(est, 2, 2, 10_000)
        }
        fn capabilities(&self) -> sosd_core::Capabilities {
            sosd_core::Capabilities {
                updates: false,
                ordered: true,
                kind: sosd_core::IndexKind::Learned,
            }
        }
    }

    fn data() -> SortedData<u64> {
        SortedData::new((0..10_000u64).map(|i| i * 2).collect()).unwrap()
    }

    #[test]
    fn cold_mode_incurs_more_misses_than_warm() {
        let data = data();
        // Re-probe a small key set so the warm run can actually reuse lines.
        let probes: Vec<u64> = (0..500u64).map(|i| (i % 50) * 40).collect();
        let mut warm = SimTracer::scaled_default();
        let warm_stats = measure_lookups(&NarrowIndex, &data, &probes, &mut warm, false, 100);
        let mut cold = SimTracer::scaled_default();
        let cold_stats = measure_lookups(&NarrowIndex, &data, &probes, &mut cold, true, 100);
        assert!(
            cold_stats.llc_misses > warm_stats.llc_misses,
            "cold {} <= warm {}",
            cold_stats.llc_misses,
            warm_stats.llc_misses
        );
    }

    #[test]
    fn narrow_bounds_mean_fewer_misses_than_full_search() {
        struct FullIndex;
        impl Index<u64> for FullIndex {
            fn name(&self) -> &'static str {
                "full"
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn search_bound(&self, _key: u64) -> SearchBound {
                SearchBound::full(10_000)
            }
            fn capabilities(&self) -> sosd_core::Capabilities {
                sosd_core::Capabilities {
                    updates: false,
                    ordered: true,
                    kind: sosd_core::IndexKind::BinarySearch,
                }
            }
        }
        let data = data();
        let probes: Vec<u64> = (0..400u64).map(|i| (i * 97) % 20_000).collect();
        let mut a = SimTracer::scaled_default();
        let narrow = measure_lookups(&NarrowIndex, &data, &probes, &mut a, false, 50);
        let mut b = SimTracer::scaled_default();
        let full = measure_lookups(&FullIndex, &data, &probes, &mut b, false, 50);
        assert!(narrow.llc_misses < full.llc_misses);
        assert!(narrow.branches < full.branches);
        assert!(narrow.instructions < full.instructions);
    }

    #[test]
    fn stats_per_lookup_normalizes() {
        let s = SimStats {
            lookups: 10,
            llc_misses: 30,
            branch_misses: 20,
            instructions: 1000,
            ..Default::default()
        };
        assert_eq!(s.per_lookup(), (3.0, 2.0, 100.0));
    }

    #[test]
    fn tracer_counts_reads() {
        let mut t = SimTracer::scaled_default();
        t.read(0x1000, 8);
        t.read(0x2000, 8);
        assert_eq!(t.stats(1).reads, 2);
        let _ = NullTracer; // silence unused import in some cfgs
    }
}
