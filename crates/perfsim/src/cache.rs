//! Set-associative LRU cache simulation.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (64 everywhere in practice).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.ways * self.line_bytes)).max(1)
    }
}

/// One cache level: per-set LRU stacks of line tags.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    config: CacheConfig,
    /// `sets[s]` holds up to `ways` tags, most recently used first.
    sets: Vec<Vec<u64>>,
    /// Hits observed at this level.
    pub hits: u64,
    /// Misses observed at this level (forwarded to the next level).
    pub misses: u64,
}

impl CacheLevel {
    /// Create an empty level.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.ways); config.num_sets()];
        CacheLevel { config, sets, hits: 0, misses: 0 }
    }

    /// Access one line; true = hit. Misses install the line (inclusive).
    #[inline]
    pub fn access_line(&mut self, line: u64) -> bool {
        let num_sets = self.sets.len() as u64;
        let set = &mut self.sets[(line % num_sets) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // LRU bump.
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Drop all cached lines (the Figure 14 cold-cache mode).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// This level's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

/// A three-level inclusive hierarchy (L1 → L2 → LLC).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// L1 data cache.
    pub l1: CacheLevel,
    /// Private L2.
    pub l2: CacheLevel,
    /// Last-level cache; its misses are the paper's "cache misses".
    pub llc: CacheLevel,
    line_bytes: usize,
    /// Total line accesses issued.
    pub accesses: u64,
}

impl CacheHierarchy {
    /// Build from three per-level configurations (line sizes must agree).
    pub fn new(l1: CacheConfig, l2: CacheConfig, llc: CacheConfig) -> Self {
        assert!(
            l1.line_bytes == l2.line_bytes && l2.line_bytes == llc.line_bytes,
            "line sizes must agree"
        );
        CacheHierarchy {
            line_bytes: l1.line_bytes,
            l1: CacheLevel::new(l1),
            l2: CacheLevel::new(l2),
            llc: CacheLevel::new(llc),
            accesses: 0,
        }
    }

    /// The paper's machine: Xeon Gold 6230 (32 KiB L1d, 1 MiB L2,
    /// 27.5 MiB shared LLC — per-core slice ~1.375 MiB; we model a private
    /// 2 MiB slice).
    pub fn xeon_6230() -> Self {
        CacheHierarchy::new(
            CacheConfig { size_bytes: 32 << 10, ways: 8, line_bytes: 64 },
            CacheConfig { size_bytes: 1 << 20, ways: 16, line_bytes: 64 },
            CacheConfig { size_bytes: 2 << 20, ways: 11, line_bytes: 64 },
        )
    }

    /// Laptop-scale default: the Xeon hierarchy scaled by the same ~100x
    /// factor as the datasets, preserving the index-size : LLC ratio that
    /// drives the paper's cache analysis.
    pub fn scaled_default() -> Self {
        CacheHierarchy::new(
            CacheConfig { size_bytes: 8 << 10, ways: 8, line_bytes: 64 },
            CacheConfig { size_bytes: 64 << 10, ways: 16, line_bytes: 64 },
            CacheConfig { size_bytes: 256 << 10, ways: 8, line_bytes: 64 },
        )
    }

    /// Access `bytes` bytes starting at `addr`, touching every spanned line.
    #[inline]
    pub fn access(&mut self, addr: usize, bytes: usize) {
        let first = addr as u64 / self.line_bytes as u64;
        let last = (addr + bytes.max(1) - 1) as u64 / self.line_bytes as u64;
        for line in first..=last {
            self.accesses += 1;
            if self.l1.access_line(line) {
                continue;
            }
            if self.l2.access_line(line) {
                continue;
            }
            self.llc.access_line(line);
        }
    }

    /// LLC misses — the headline "cache misses" metric of Figure 12.
    pub fn llc_misses(&self) -> u64 {
        self.llc.misses
    }

    /// Flush every level (cold-cache mode).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.llc.flush();
    }

    /// Reset counters but keep cache contents (for warm-up phases).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        for lvl in [&mut self.l1, &mut self.l2, &mut self.llc] {
            lvl.hits = 0;
            lvl.misses = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        // 4 lines direct-ish L1, 16-line L2, 64-line LLC.
        CacheHierarchy::new(
            CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64 },
            CacheConfig { size_bytes: 1024, ways: 4, line_bytes: 64 },
            CacheConfig { size_bytes: 4096, ways: 8, line_bytes: 64 },
        )
    }

    #[test]
    fn repeat_access_hits_l1() {
        let mut c = tiny();
        c.access(0x1000, 8);
        assert_eq!(c.l1.misses, 1);
        c.access(0x1000, 8);
        c.access(0x1008, 8); // same line
        assert_eq!(c.l1.hits, 2);
        assert_eq!(c.llc_misses(), 1);
    }

    #[test]
    fn straddling_read_touches_two_lines() {
        let mut c = tiny();
        c.access(0x1000 + 60, 8); // crosses a 64B boundary
        assert_eq!(c.accesses, 2);
        assert_eq!(c.l1.misses, 2);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // line * 64 reads as the address map
    fn lru_evicts_least_recent() {
        // L1: 2 ways, 2 sets. Lines 0,2,4 map to set 0 (line % 2 == 0).
        let mut c = tiny();
        c.access(0 * 64, 1); // set 0: [0]
        c.access(2 * 64, 1); // set 0: [2, 0]
        c.access(0 * 64, 1); // hit, set 0: [0, 2]
        c.access(4 * 64, 1); // evicts 2, set 0: [4, 0]
        assert_eq!(c.l1.hits, 1);
        c.access(2 * 64, 1); // miss in L1 (was evicted), hit in L2
        assert_eq!(c.l1.misses, 4);
        assert_eq!(c.l2.hits, 1);
    }

    #[test]
    fn flush_forces_misses() {
        let mut c = tiny();
        c.access(0x4000, 8);
        c.flush();
        c.access(0x4000, 8);
        assert_eq!(c.llc_misses(), 2);
    }

    #[test]
    fn working_set_larger_than_llc_thrashes() {
        let mut c = tiny(); // LLC = 64 lines
                            // Stream 256 distinct lines twice: second pass still misses.
        for round in 0..2 {
            for i in 0..256usize {
                c.access(i * 64, 1);
            }
            if round == 0 {
                c.reset_counters();
            }
        }
        assert!(
            c.llc_misses() > 200,
            "streaming working set should thrash: {} misses",
            c.llc_misses()
        );
    }

    #[test]
    fn working_set_fitting_in_llc_stops_missing() {
        let mut c = tiny();
        for _ in 0..4 {
            for i in 0..32usize {
                c.access(i * 64, 1);
            }
        }
        c.reset_counters();
        for i in 0..32usize {
            c.access(i * 64, 1);
        }
        assert_eq!(c.llc_misses(), 0);
    }

    #[test]
    fn presets_have_sane_geometry() {
        let x = CacheHierarchy::xeon_6230();
        assert_eq!(x.l1.config().num_sets(), 64);
        let s = CacheHierarchy::scaled_default();
        assert!(s.llc.config().size_bytes < x.llc.config().size_bytes);
    }
}
