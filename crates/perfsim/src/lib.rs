//! # sosd-perfsim
//!
//! A deterministic hardware-counter simulator standing in for `perf`
//! (Sections 4.3-4.5 of the paper analyze cache misses, branch
//! mispredictions, and instruction counts).
//!
//! Index lookups emit events through [`sosd_core::Tracer`]; this crate's
//! [`SimTracer`] feeds them into a three-level set-associative LRU [`cache`]
//! hierarchy and a gshare [`branch`] predictor. Addresses are the *real*
//! in-memory addresses of the index structures, so layout effects (packed
//! nodes, adjacent table entries) are faithfully modelled.
//!
//! The default hierarchy scales the paper's Xeon Gold 6230 down by the same
//! factor as the datasets (200M keys → laptop-size), keeping the
//! index-size-to-LLC ratio — the quantity the paper's analysis depends on —
//! in the same regime. `xeon_6230` is available for full-size runs.

pub mod branch;
pub mod cache;
pub mod tracer;

pub use branch::Gshare;
pub use cache::{CacheConfig, CacheHierarchy, CacheLevel};
pub use tracer::{SimStats, SimTracer};
