//! # sosd-succinct
//!
//! Succinct bit vector with constant-time rank and near-constant-time select
//! — the substrate for the LOUDS-encoded fast succinct trie (FST) baseline.
//!
//! Layout: raw `u64` words plus one cumulative rank sample per 512-bit
//! superblock (rank9-style, 6.25% overhead), with select answered by a
//! binary search over superblocks followed by word scans.

/// A plain append-only bit vector.
#[derive(Debug, Clone, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Create an empty bit vector.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Create with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitVec { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// Append a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Read the bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes used by the raw bits.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Rank/select directory over a [`BitVec`].
#[derive(Debug, Clone)]
pub struct RankSelect {
    bits: BitVec,
    /// `super_ranks[s]` = number of ones before superblock `s` (8 words).
    super_ranks: Vec<u64>,
    ones: u64,
}

const WORDS_PER_SUPER: usize = 8; // 512-bit superblocks

impl RankSelect {
    /// Build the directory (one pass over the words).
    pub fn new(bits: BitVec) -> Self {
        let mut super_ranks = Vec::with_capacity(bits.words.len() / WORDS_PER_SUPER + 1);
        let mut acc = 0u64;
        for (w, word) in bits.words.iter().enumerate() {
            if w % WORDS_PER_SUPER == 0 {
                super_ranks.push(acc);
            }
            acc += word.count_ones() as u64;
        }
        if bits.words.is_empty() {
            super_ranks.push(0);
        }
        RankSelect { bits, super_ranks, ones: acc }
    }

    /// The underlying bit vector.
    #[inline]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u64 {
        self.ones
    }

    /// Number of ones in `[0, i)`. `i` may equal `len`.
    #[inline]
    pub fn rank1(&self, i: usize) -> u64 {
        debug_assert!(i <= self.bits.len);
        let word = i / 64;
        let sb = word / WORDS_PER_SUPER;
        let mut r = self.super_ranks[sb];
        for w in sb * WORDS_PER_SUPER..word {
            r += self.bits.words[w].count_ones() as u64;
        }
        if !i.is_multiple_of(64) {
            r += (self.bits.words[word] & ((1u64 << (i % 64)) - 1)).count_ones() as u64;
        }
        r
    }

    /// Number of zeros in `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> u64 {
        i as u64 - self.rank1(i)
    }

    /// Position of the `k`-th one (0-indexed); `None` when out of range.
    pub fn select1(&self, k: u64) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        // Superblock binary search: last superblock with rank <= k.
        let sb = self.super_ranks.partition_point(|&r| r <= k) - 1;
        let mut remaining = k - self.super_ranks[sb];
        let start = sb * WORDS_PER_SUPER;
        for w in start..self.bits.words.len() {
            let pop = self.bits.words[w].count_ones() as u64;
            if remaining < pop {
                return Some(w * 64 + select_in_word(self.bits.words[w], remaining as u32));
            }
            remaining -= pop;
        }
        None
    }

    /// Position of the `k`-th zero (0-indexed); `None` when out of range.
    pub fn select0(&self, k: u64) -> Option<usize> {
        let zeros = self.bits.len as u64 - self.ones;
        if k >= zeros {
            return None;
        }
        // Zeros before superblock s = s*512 - super_ranks[s] (clamped by len).
        let zero_rank = |s: usize| (s * WORDS_PER_SUPER * 64) as u64 - self.super_ranks[s];
        let mut lo = 0usize;
        let mut hi = self.super_ranks.len();
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if zero_rank(mid) <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut remaining = k - zero_rank(lo);
        for w in lo * WORDS_PER_SUPER..self.bits.words.len() {
            let valid = (self.bits.len - w * 64).min(64);
            let inv =
                !self.bits.words[w] & if valid == 64 { u64::MAX } else { (1u64 << valid) - 1 };
            let pop = inv.count_ones() as u64;
            if remaining < pop {
                return Some(w * 64 + select_in_word(inv, remaining as u32));
            }
            remaining -= pop;
        }
        None
    }
}

/// Position of the `k`-th set bit within a word (0-indexed; must exist).
#[inline]
fn select_in_word(mut word: u64, mut k: u32) -> usize {
    debug_assert!(word.count_ones() > k);
    loop {
        let tz = word.trailing_zeros();
        if k == 0 {
            return tz as usize;
        }
        word &= word - 1; // clear lowest set bit
        k -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(pattern: impl Iterator<Item = bool>) -> RankSelect {
        let mut bv = BitVec::new();
        for b in pattern {
            bv.push(b);
        }
        RankSelect::new(bv)
    }

    /// Simple deterministic pseudo-random bit stream.
    fn noise(n: usize, seed: u64) -> Vec<bool> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 62) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn push_get_round_trip() {
        let pat = noise(1000, 5);
        let mut bv = BitVec::new();
        for &b in &pat {
            bv.push(b);
        }
        assert_eq!(bv.len(), 1000);
        for (i, &b) in pat.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn rank1_matches_naive_on_noise() {
        let pat = noise(5000, 9);
        let rs = make(pat.iter().copied());
        let mut naive = 0u64;
        for i in 0..=pat.len() {
            assert_eq!(rs.rank1(i), naive, "rank1({i})");
            if i < pat.len() && pat[i] {
                naive += 1;
            }
        }
    }

    #[test]
    fn select1_inverts_rank1() {
        let pat = noise(5000, 13);
        let rs = make(pat.iter().copied());
        let mut k = 0u64;
        for (i, &b) in pat.iter().enumerate() {
            if b {
                assert_eq!(rs.select1(k), Some(i), "select1({k})");
                k += 1;
            }
        }
        assert_eq!(rs.select1(k), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let pat = noise(3000, 21);
        let rs = make(pat.iter().copied());
        let mut k = 0u64;
        for (i, &b) in pat.iter().enumerate() {
            if !b {
                assert_eq!(rs.select0(k), Some(i), "select0({k})");
                k += 1;
            }
        }
        assert_eq!(rs.select0(k), None);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = make((0..700).map(|_| true));
        assert_eq!(ones.rank1(700), 700);
        assert_eq!(ones.select1(699), Some(699));
        assert_eq!(ones.select0(0), None);
        let zeros = make((0..700).map(|_| false));
        assert_eq!(zeros.rank1(700), 0);
        assert_eq!(zeros.select0(699), Some(699));
        assert_eq!(zeros.select1(0), None);
    }

    #[test]
    fn empty_bitvec() {
        let rs = RankSelect::new(BitVec::new());
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(0), None);
        assert_eq!(rs.select0(0), None);
    }

    #[test]
    fn superblock_boundaries() {
        // Exactly one superblock (512 bits) of alternating bits plus spill.
        let pat: Vec<bool> = (0..600).map(|i| i % 2 == 0).collect();
        let rs = make(pat.iter().copied());
        assert_eq!(rs.rank1(512), 256);
        assert_eq!(rs.rank1(513), 257);
        assert_eq!(rs.select1(256), Some(512));
    }

    #[test]
    fn select_in_word_all_positions() {
        let w: u64 = 0b1011_0100_1111_0001;
        let positions: Vec<usize> = (0..64).filter(|&i| (w >> i) & 1 == 1).collect();
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(select_in_word(w, k as u32), p);
        }
    }
}
