//! Offline shim for the `serde_json` crate (see `crates/shims/README.md`).
//!
//! Renders and parses the [`Value`] tree defined by the sibling `serde`
//! shim. Supports everything the workspace writes: derived row structs,
//! `json!` object literals, and round-tripping primitive vectors in tests.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_value(&value)
}

/// Build a [`Value`] from a JSON-ish literal. Supports objects with string
/// keys, arrays, `null`, and arbitrary serializable expressions as values —
/// the shapes the experiment binaries use.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$val)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats recognizable as numbers with a fraction,
            // matching serde_json's `1.0` rendering.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        // JSON has no Inf/NaN; serde_json errors here, we emit null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Recursive-descent JSON parser over bytes (input is valid UTF-8 by
/// construction, and strings are re-assembled from parsed chars).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_literal("null", Value::Null),
            b't' => self.eat_literal("true", Value::Bool(true)),
            b'f' => self.eat_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b =
                *self.bytes.get(self.pos).ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::custom)?,
                                16,
                            )
                            .map_err(Error::custom)?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(Error::custom)?);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if text.is_empty() {
            return Err(Error::custom("expected a JSON value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(Error::custom)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.eat(b':')?;
            fields.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_round_trips_vec() {
        let json = to_string_pretty(&vec![1i32, 2, 3]).unwrap();
        let back: Vec<i32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "name": "rmi", "size": 128usize, "err": 1.5f64 });
        assert_eq!(v.get_field("name").and_then(Value::as_str), Some("rmi"));
        assert_eq!(v.get_field("size").and_then(Value::as_u64), Some(128));
        assert_eq!(v.get_field("err").and_then(Value::as_f64), Some(1.5));
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn u64_checksums_round_trip_exactly() {
        let v = u64::MAX - 3;
        let json = to_string(&v).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_and_float_numbers_parse() {
        let back: Vec<i64> = from_str("[-5, 7]").unwrap();
        assert_eq!(back, vec![-5, 7]);
        let f: f64 = from_str("2.5e3").unwrap();
        assert_eq!(f, 2500.0);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = json!({ "rows": vec![("a".to_string(), 1.0f64), ("b".to_string(), 2.0)] });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
