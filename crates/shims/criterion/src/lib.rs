//! Offline shim for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Implements the benchmark-definition API the workspace's `benches/` use
//! and a simple measurement loop: each benchmark body is warmed up once,
//! then timed over `sample_size` samples; the median ns/iteration is
//! printed. No statistics, plots, or baselines — just honest wall clock.

use std::fmt::Display;
use std::time::Instant;

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Time `f`, storing the median ns per call over the sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { sample_size: self.sample_size, median_ns: 0.0 };
        f(&mut b);
        println!("{}/{}: median {:.1} ns/iter", self.name, id.0, b.median_ns);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { sample_size: self.sample_size, median_ns: 0.0 };
        f(&mut b, input);
        println!("{}/{}: median {:.1} ns/iter", self.name, id.0, b.median_ns);
        self
    }

    /// Finish the group (prints a separator for readability).
    pub fn finish(&mut self) {
        println!();
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup { name, sample_size: self.sample_size }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Define a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }
}
