//! Offline shim for the `serde` crate (see `crates/shims/README.md`).
//!
//! Serialization is modelled as conversion to and from an in-memory JSON
//! [`Value`] tree; `serde_json` (the sibling shim) renders and parses that
//! tree. This covers the workspace's needs — derived row structs written to
//! JSON result files and read back in tests — with a fraction of real
//! serde's machinery.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON value. Object fields keep insertion order (enough for stable
/// result files; the workspace never relies on map semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; `u64` checksums round-trip).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered field list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field of an object by name, if this is an object containing it.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Construct an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a JSON [`Value`].
pub trait Serialize {
    /// Convert to a JSON value.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Convert from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| Error::custom("expected number"))
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        assert_eq!(Vec::<u32>::from_value(&vec![1u32, 2].to_value()), Ok(vec![1, 2]));
    }

    #[test]
    fn u64_extremes_stay_exact() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
    }

    #[test]
    fn object_field_access() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get_field("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get_field("b"), None);
    }

    #[test]
    fn tuples_serialize_as_arrays() {
        let v = ("x".to_string(), 0.5f64).to_value();
        assert_eq!(v.get_index(0).and_then(Value::as_str), Some("x"));
        assert_eq!(v.get_index(1).and_then(Value::as_f64), Some(0.5));
    }
}
