//! Offline shim for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Provides the subset of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map`, range/tuple/`Just`/`any` strategies, weighted
//! unions via [`prop_oneof!`], collection strategies, and the [`proptest!`]
//! test-runner macro. Generation is deterministic (seeded from the test
//! name) and there is **no shrinking** — a failing case reports the
//! generated inputs as-is via the standard assertion message.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic split-mix/xorshift RNG used by all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the macro passes the test path) so
    /// every test gets a distinct, stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Configuration accepted by `proptest!`; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values — proptest's core abstraction, minus
/// shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (needed to mix branch types in
    /// [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] for boxing.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range generation for primitive types (the shim's `Arbitrary`).
pub trait ArbitraryValue {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T` (`any::<u64>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Weighted choice between type-erased branches — built by [`prop_oneof!`].
pub struct WeightedUnion<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> WeightedUnion<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        WeightedUnion { arms, total }
    }
}

impl<V> Strategy for WeightedUnion<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `element`; sizes may fall short of the
    /// target when the element domain is small (same as real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.generate(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so tiny domains terminate.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 4 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// Namespace mirror of proptest's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Weighted (`w => strategy`) or unweighted choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Shim mapping of `prop_assert!` onto `assert!` (no shrinking, so a plain
/// panic is the right failure mode).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim mapping of `prop_assert_eq!` onto `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim mapping of `prop_assert_ne!` onto `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The proptest test-runner macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_weighted_arm() {
        let strat = prop_oneof![
            1 => Just(1u32),
            1 => Just(2u32),
            2 => Just(3u32),
        ];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = collection::vec(any::<u64>(), 1..50);
        let mut a = TestRng::for_test("det");
        let mut b = TestRng::for_test("det");
        assert_eq!(Strategy::generate(&strat, &mut a), Strategy::generate(&strat, &mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_compiles_and_runs(xs in prop::collection::vec(0u64..100, 1..10), y in any::<u32>()) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(y as u64 & 0xFFFF_FFFF, y as u64);
        }
    }
}
