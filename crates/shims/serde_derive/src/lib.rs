//! Offline shim for `serde_derive` (see `crates/shims/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! non-generic structs with named fields — the only shape the workspace
//! derives on. The macro hand-parses the item token stream (no `syn`/`quote`
//! available offline) and emits the impl by formatting source text, which
//! `TokenStream::from_str` re-lexes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed struct: name and named-field list.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parse `[attrs] [pub] struct Name { [attrs] [pub] field: Ty, ... }`.
///
/// Returns `Err(message)` for shapes the shim does not support (enums,
/// generics, tuple structs) so the caller can emit a readable compile error.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut it = input.into_iter().peekable();

    // Skip outer attributes and visibility, expect `struct`.
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("serde shim derives support structs only".into());
            }
            Some(_) => {}
            None => return Err("expected a struct".into()),
        }
    }

    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected struct name".into()),
    };

    let body = match it.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("serde shim derives do not support generics".into());
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => return Err("serde shim derives support named-field structs only".into()),
    };

    // Fields: skip attributes/visibility; a field name is the ident directly
    // followed by a single `:` (a `::` in a type path never follows an ident
    // we are in name position for, because we skip the type to the next
    // top-level comma).
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name_tok = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id),
                Some(other) => {
                    return Err(format!("unexpected token in struct body: {other}"));
                }
                None => break None,
            }
        };
        let Some(name_tok) = name_tok else { break };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name_tok}`")),
        }
        fields.push(name_tok.to_string());
        // Skip the type up to the next comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        for tok in it.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }

    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid compile_error")
}

/// Derive `serde::Serialize` (shim): converts each field with
/// `Serialize::to_value` into an ordered JSON object.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut pushes = String::new();
    for f in &shape.fields {
        pushes.push_str(&format!(
            "__fields.push((::std::string::String::from({f:?}), \
             ::serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim): reads each field back from the JSON
/// object by name.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(__v.get_field({f:?}).ok_or_else(|| \
             ::serde::Error::custom(concat!(\"missing field \", {f:?})))?)?,\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
