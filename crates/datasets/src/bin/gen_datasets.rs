//! Generate SOSD-format binary dataset files, mirroring the benchmark
//! repository the paper distributes.
//!
//! Usage: `cargo run --release -p sosd-datasets --bin gen_datasets -- \
//!           [--n 1m] [--seed 42] [--dir data] [--u32] [dataset ...]`

use sosd_datasets::{io, DatasetId};
use std::path::PathBuf;

fn main() {
    let mut n = 1_000_000usize;
    let mut seed = 42u64;
    let mut dir = PathBuf::from("data");
    let mut u32_mode = false;
    let mut picked: Vec<DatasetId> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--n" => {
                let v = args.next().expect("--n value");
                let (digits, mult) = match v.to_ascii_lowercase() {
                    s if s.ends_with('m') => (s[..s.len() - 1].to_string(), 1_000_000),
                    s if s.ends_with('k') => (s[..s.len() - 1].to_string(), 1_000),
                    s => (s, 1),
                };
                n = digits.parse::<usize>().expect("numeric --n") * mult;
            }
            "--seed" => seed = args.next().expect("--seed value").parse().expect("numeric seed"),
            "--dir" => dir = PathBuf::from(args.next().expect("--dir value")),
            "--u32" => u32_mode = true,
            name => match DatasetId::parse(name) {
                Some(id) => picked.push(id),
                None => {
                    eprintln!(
                        "unknown dataset '{name}'; known: all of {:?}",
                        DatasetId::ALL.map(|d| d.name())
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    if picked.is_empty() {
        picked = DatasetId::REAL_WORLD.to_vec();
    }

    std::fs::create_dir_all(&dir).expect("create output dir");
    for id in picked {
        let suffix = if u32_mode { "uint32" } else { "uint64" };
        let path = dir.join(format!("{}_{}_{}", id.name(), n, suffix));
        if u32_mode {
            let data = sosd_datasets::generate_u32(id, n, seed);
            io::write_keys(&path, data.keys()).expect("write dataset");
        } else {
            let data = sosd_datasets::generate_u64(id, n, seed);
            io::write_keys(&path, data.keys()).expect("write dataset");
        }
        println!("wrote {} ({n} keys)", path.display());
    }
}
