//! Lookup workload generation (Section 4.1.2: 10M random lookup keys per
//! dataset, each drawn from the keys present in the data).

use crate::registry::{self, DatasetId};
use sosd_core::util::XorShift64;
use sosd_core::{Key, SortedData};

/// A dataset together with its lookup keys and the expected checksum.
#[derive(Debug, Clone)]
pub struct Workload<K: Key> {
    /// The sorted data array the indexes are built over.
    pub data: SortedData<K>,
    /// Lookup keys, in query order.
    pub lookups: Vec<K>,
    /// Sum of per-lookup payload sums; harnesses compare against this to
    /// prove their lookups actually found the right records.
    pub expected_checksum: u64,
}

impl<K: Key> Workload<K> {
    /// Assemble a workload from data and lookups, computing the checksum.
    pub fn new(data: SortedData<K>, lookups: Vec<K>) -> Self {
        let expected_checksum =
            lookups.iter().fold(0u64, |acc, &x| acc.wrapping_add(data.payload_sum_at(x)));
        Workload { data, lookups, expected_checksum }
    }

    /// Number of lookups.
    pub fn num_lookups(&self) -> usize {
        self.lookups.len()
    }
}

/// Draw `count` lookup keys uniformly from the keys present in `data`
/// (the paper's workload: every lookup key exists).
pub fn sample_present_keys<K: Key>(data: &SortedData<K>, count: usize, seed: u64) -> Vec<K> {
    let mut rng = XorShift64::new(seed ^ 0x100C);
    (0..count).map(|_| data.key(rng.next_below(data.len() as u64) as usize)).collect()
}

/// Draw lookup keys where a fraction `absent_frac` are uniform random keys
/// that may be absent — used by validity tests to exercise the full
/// lower-bound contract, including probes beyond the key range.
pub fn sample_mixed_keys<K: Key>(
    data: &SortedData<K>,
    count: usize,
    absent_frac: f64,
    seed: u64,
) -> Vec<K> {
    let mut rng = XorShift64::new(seed ^ 0xAB5E);
    (0..count)
        .map(|_| {
            if rng.next_f64() < absent_frac {
                K::from_u64(rng.next_u64())
            } else {
                data.key(rng.next_below(data.len() as u64) as usize)
            }
        })
        .collect()
}

/// Generate the standard 64-bit workload for a dataset.
pub fn make_workload(id: DatasetId, n: usize, num_lookups: usize, seed: u64) -> Workload<u64> {
    let data = registry::generate_u64(id, n, seed);
    let lookups = sample_present_keys(&data, num_lookups, seed.wrapping_add(1));
    Workload::new(data, lookups)
}

/// Generate the 32-bit workload (Section 4.2.2).
pub fn make_workload_u32(id: DatasetId, n: usize, num_lookups: usize, seed: u64) -> Workload<u32> {
    let data = registry::generate_u32(id, n, seed);
    let lookups = sample_present_keys(&data, num_lookups, seed.wrapping_add(1));
    Workload::new(data, lookups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_keys_are_present() {
        let w = make_workload(DatasetId::Amzn, 5_000, 1_000, 11);
        for &x in &w.lookups {
            let lb = w.data.lower_bound(x);
            assert!(lb < w.data.len() && w.data.key(lb) == x, "lookup key {x} not present");
        }
    }

    #[test]
    fn checksum_is_nonzero_and_deterministic() {
        let a = make_workload(DatasetId::Wiki, 5_000, 500, 11);
        let b = make_workload(DatasetId::Wiki, 5_000, 500, 11);
        assert_eq!(a.expected_checksum, b.expected_checksum);
        assert_ne!(a.expected_checksum, 0);
    }

    #[test]
    fn mixed_keys_include_absent_probes() {
        let w = make_workload(DatasetId::Face, 5_000, 10, 11);
        let mixed = sample_mixed_keys(&w.data, 2_000, 0.5, 42);
        let absent = mixed
            .iter()
            .filter(|&&x| {
                let lb = w.data.lower_bound(x);
                lb >= w.data.len() || w.data.key(lb) != x
            })
            .count();
        assert!(absent > 500, "expected many absent probes, got {absent}");
    }
}
