//! Open-loop request-arrival schedules for the serving front end.
//!
//! Closed-loop benchmarks (issue a lookup, wait, issue the next) hide
//! queueing: the client self-throttles, so tail latency under load is never
//! observed. An **open-loop** workload fixes the arrival process instead —
//! requests arrive at timestamps drawn independently of how fast the server
//! answers — which is what exposes coordinated-omission-free p99/p999 and
//! the saturation point of a scheduler.
//!
//! [`generate_openloop`] produces a deterministic schedule: Poisson
//! inter-arrivals (exponential gaps) whose rate alternates between a calm
//! phase and a burst phase (`burst_factor`× the base rate), paired with a
//! key per request drawn Zipf-skewed from a population plus an optional
//! fraction of guaranteed-absent keys. Everything is a pure function of the
//! seed, so the same schedule can be replayed against different engines and
//! scheduler configurations.

use crate::dist::{exponential, Zipf};
use sosd_core::util::XorShift64;
use sosd_core::Key;

/// Configuration for [`generate_openloop`].
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Mean arrival rate during calm phases, in requests per second.
    pub rate_per_s: f64,
    /// Rate multiplier during burst phases (1.0 disables bursts).
    pub burst_factor: f64,
    /// Length of each phase in nanoseconds; the schedule alternates
    /// calm → burst → calm → … starting calm.
    pub phase_ns: u64,
    /// Zipf exponent for key popularity (values near 0 approach uniform).
    pub zipf_s: f64,
    /// Fraction of requests targeting keys absent from the population
    /// (drawn uniformly from the caller-supplied miss set).
    pub miss_fraction: f64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rate_per_s: 100_000.0,
            burst_factor: 4.0,
            phase_ns: 10_000_000, // 10 ms phases
            zipf_s: 1.1,
            miss_fraction: 0.05,
        }
    }
}

/// A generated open-loop schedule: per-request arrival offsets (nanoseconds
/// from replay start, non-decreasing) and lookup keys.
#[derive(Debug, Clone)]
pub struct OpenLoopSchedule<K: Key> {
    /// Arrival offset of each request in nanoseconds, sorted ascending.
    pub arrivals_ns: Vec<u64>,
    /// Lookup key of each request, parallel to `arrivals_ns`.
    pub keys: Vec<K>,
    /// Human-readable description ("open-loop 100kreq/s ×4 bursts
    /// zipf(1.1) miss=5%").
    pub label: String,
}

impl<K: Key> OpenLoopSchedule<K> {
    /// Number of requests in the schedule.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Mean offered rate in requests per second over the whole schedule
    /// (the bursts make this exceed the configured calm-phase rate).
    pub fn offered_rate_per_s(&self) -> f64 {
        match self.arrivals_ns.last() {
            Some(&last) if last > 0 => self.len() as f64 / (last as f64 / 1e9),
            _ => 0.0,
        }
    }

    /// Rescale every arrival gap by `factor` (> 1 slows arrivals down,
    /// < 1 speeds them up), producing the same key sequence at a different
    /// offered rate — one generated schedule sweeps a whole rate axis.
    pub fn scaled(&self, factor: f64) -> OpenLoopSchedule<K> {
        assert!(factor > 0.0, "scale factor must be positive");
        let arrivals_ns =
            self.arrivals_ns.iter().map(|&t| (t as f64 * factor).round() as u64).collect();
        OpenLoopSchedule { arrivals_ns, keys: self.keys.clone(), label: self.label.clone() }
    }
}

/// Generate `n` open-loop requests over `population` (present keys; hit
/// probability follows a shuffled-rank Zipf) and `miss_keys` (keys
/// guaranteed absent from the served data, hit with `cfg.miss_fraction`).
/// Pass an empty `miss_keys` to force an all-hit schedule regardless of
/// `miss_fraction`. Deterministic in `seed`.
pub fn generate_openloop<K: Key>(
    population: &[K],
    miss_keys: &[K],
    n: usize,
    cfg: OpenLoopConfig,
    seed: u64,
) -> OpenLoopSchedule<K> {
    assert!(!population.is_empty(), "population must be non-empty");
    assert!(cfg.rate_per_s > 0.0, "arrival rate must be positive");
    assert!(cfg.burst_factor >= 1.0, "burst factor must be >= 1");
    assert!((0.0..=1.0).contains(&cfg.miss_fraction), "miss_fraction out of range");
    assert!(cfg.phase_ns > 0, "phase length must be positive");

    let mut rng = XorShift64::new(seed ^ 0x4F50_454E_4C4F_4F50); // "OPENLOOP"

    // Zipf ranks index a shuffled view of the population so the hot set is
    // scattered across the key space (adjacent-rank keys must not be
    // adjacent in key order, or a range-partitioned sharded engine would
    // see all heat on one shard).
    let mut perm: Vec<u32> = (0..population.len() as u32).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let zipf = Zipf::new(population.len(), cfg.zipf_s);

    let mut arrivals_ns = Vec::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    let mut t_ns = 0f64;
    for _ in 0..n {
        // Phase by absolute time: even 10ms windows are calm, odd burst.
        let in_burst = (t_ns as u64 / cfg.phase_ns) % 2 == 1;
        let rate = if in_burst { cfg.rate_per_s * cfg.burst_factor } else { cfg.rate_per_s };
        t_ns += exponential(&mut rng, rate) * 1e9;
        arrivals_ns.push(t_ns as u64);

        let key = if !miss_keys.is_empty() && rng.next_f64() < cfg.miss_fraction {
            miss_keys[rng.next_below(miss_keys.len() as u64) as usize]
        } else {
            let rank = zipf.sample(&mut rng) % population.len();
            population[perm[rank] as usize]
        };
        keys.push(key);
    }

    let label = format!(
        "open-loop {:.0}kreq/s ×{:.0} bursts zipf({}) miss={:.0}%",
        cfg.rate_per_s / 1e3,
        cfg.burst_factor,
        cfg.zipf_s,
        cfg.miss_fraction * 100.0
    );
    OpenLoopSchedule { arrivals_ns, keys, label }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Vec<u64> {
        (0..10_000u64).map(|i| i * 2).collect()
    }

    #[test]
    fn deterministic_and_monotone() {
        let p = pop();
        let misses: Vec<u64> = (0..100).map(|i| i * 2 + 1).collect();
        let a = generate_openloop(&p, &misses, 5_000, OpenLoopConfig::default(), 42);
        let b = generate_openloop(&p, &misses, 5_000, OpenLoopConfig::default(), 42);
        assert_eq!(a.arrivals_ns, b.arrivals_ns);
        assert_eq!(a.keys, b.keys);
        assert!(a.arrivals_ns.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn offered_rate_tracks_config() {
        let p = pop();
        let cfg = OpenLoopConfig { burst_factor: 1.0, ..Default::default() };
        let s = generate_openloop(&p, &[], 50_000, cfg, 7);
        let rate = s.offered_rate_per_s();
        // Without bursts the mean rate is the configured rate (±5% sampling
        // noise at 50k arrivals).
        assert!((rate - cfg.rate_per_s).abs() < cfg.rate_per_s * 0.05, "rate = {rate}");
    }

    #[test]
    fn bursts_raise_the_mean_rate() {
        let p = pop();
        let calm = generate_openloop(
            &p,
            &[],
            50_000,
            OpenLoopConfig { burst_factor: 1.0, ..Default::default() },
            7,
        );
        let bursty = generate_openloop(
            &p,
            &[],
            50_000,
            OpenLoopConfig { burst_factor: 4.0, ..Default::default() },
            7,
        );
        assert!(
            bursty.offered_rate_per_s() > calm.offered_rate_per_s() * 1.3,
            "bursty {} vs calm {}",
            bursty.offered_rate_per_s(),
            calm.offered_rate_per_s()
        );
    }

    #[test]
    fn zipf_concentrates_and_misses_appear() {
        let p = pop();
        let misses: Vec<u64> = (0..128u64).map(|i| i * 2 + 1).collect();
        let s = generate_openloop(&p, &misses, 40_000, OpenLoopConfig::default(), 3);
        let mut counts = std::collections::HashMap::new();
        let mut miss_hits = 0usize;
        for &k in &s.keys {
            if k % 2 == 1 {
                miss_hits += 1;
            } else {
                *counts.entry(k).or_insert(0usize) += 1;
            }
        }
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest > 400, "hottest key only {hottest} hits over 40k requests");
        // miss_fraction = 5%: expect ~2000 misses.
        assert!((1_400..=2_600).contains(&miss_hits), "miss hits = {miss_hits}");
        // Empty miss set forces all hits.
        let all_hit = generate_openloop(&p, &[], 5_000, OpenLoopConfig::default(), 3);
        assert!(all_hit.keys.iter().all(|&k| k % 2 == 0));
    }

    #[test]
    fn scaling_changes_rate_not_keys() {
        let p = pop();
        let s = generate_openloop(&p, &[], 10_000, OpenLoopConfig::default(), 5);
        let slower = s.scaled(2.0);
        assert_eq!(slower.keys, s.keys);
        let ratio = s.offered_rate_per_s() / slower.offered_rate_per_s();
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }
}
