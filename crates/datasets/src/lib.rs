//! # sosd-datasets
//!
//! Dataset and workload generators for the SOSD learned-index benchmark.
//!
//! The paper evaluates on four *real-world* datasets of 200M unsigned 64-bit
//! keys: `amzn` (Amazon book popularity), `face` (Facebook user IDs), `osm`
//! (OpenStreetMap cell IDs produced by a Hilbert-curve projection), and
//! `wiki` (Wikipedia edit timestamps). Those datasets are not redistributable
//! here, so this crate generates *synthetic equivalents that reproduce the
//! properties the paper's analysis depends on*:
//!
//! * `amzn` — smooth, heavy-tailed popularity CDF (log-normal mixture).
//! * `face` — near-uniform random IDs **plus ~100 extreme outliers** in
//!   `(2^59, 2^64)`; the outliers are what cripple radix tables in Fig. 7.
//! * `osm` — clustered 2-D points mapped through a real [Hilbert
//!   curve](hilbert), yielding the locally-erratic, hard-to-learn CDF the
//!   paper attributes osm's poor learned-index performance to.
//! * `wiki` — bursty timestamp stream with daily/weekly periodicity and
//!   genuine duplicate keys.
//!
//! All generation is deterministic given a seed and scale-free: the paper's
//! 200M-key experiments shrink to laptop size by passing a smaller `n`.

pub mod dist;
pub mod gen;
pub mod hilbert;
pub mod io;
pub mod mixed;
pub mod openloop;
pub mod registry;
pub mod workload;

pub use mixed::{generate_mixed, MixedConfig, MixedWorkload, ReadSkew};
pub use openloop::{generate_openloop, OpenLoopConfig, OpenLoopSchedule};
pub use registry::{generate_u32, generate_u64, DatasetId};
pub use workload::{make_workload, make_workload_u32, Workload};
