//! 2-D Hilbert curve, the projection behind the `osm` dataset.
//!
//! OpenStreetMap cell IDs are positions along a space-filling curve over the
//! Earth's surface. The paper attributes the poor performance of learned
//! indexes on `osm` to exactly this projection: nearby 1-D keys alternate
//! between spatially close and spatially distant points, producing a CDF
//! whose small-scale structure is erratic. We therefore implement the real
//! curve rather than approximating its effect.
//!
//! The implementation is the classic iterative quadrant-rotation algorithm,
//! generalized to orders up to 32 (so `d` spans the full `u64` range).

// Matrix/bit-twiddling code below indexes multiple arrays in lockstep;
// index loops are clearer than zipped iterators here.
#![allow(clippy::needless_range_loop)]
/// Maximum supported curve order (bits per coordinate).
pub const MAX_ORDER: u32 = 32;

/// Rotate/flip a quadrant. `grid` is the side length of the (sub)grid the
/// coordinates currently live in: the full grid in [`xy2d`] (coordinates stay
/// full-size throughout) but the partial grid in [`d2xy`] (coordinates grow).
#[inline]
fn rot(grid: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = grid - 1 - *x;
            *y = grid - 1 - *y;
        }
        std::mem::swap(x, y);
    }
}

/// Map a 2-D point to its distance along the order-`order` Hilbert curve.
///
/// Coordinates must be `< 2^order`; the result is `< 2^(2*order)`.
pub fn xy2d(order: u32, mut x: u64, mut y: u64) -> u64 {
    assert!((1..=MAX_ORDER).contains(&order), "order out of range: {order}");
    let n: u64 = 1u64 << order;
    assert!(x < n && y < n, "coordinates out of range for order {order}");
    let mut d: u128 = 0;
    let mut s = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += (s as u128) * (s as u128) * ((3 * rx) ^ ry) as u128;
        rot(n, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    debug_assert!(order == 32 || d < (1u128 << (2 * order)));
    d as u64
}

/// Inverse of [`xy2d`]: map a curve distance back to its 2-D point.
pub fn d2xy(order: u32, d: u64) -> (u64, u64) {
    assert!((1..=MAX_ORDER).contains(&order), "order out of range: {order}");
    let n: u64 = 1u64 << order;
    let mut t: u128 = d as u128;
    let (mut x, mut y) = (0u64, 0u64);
    let mut s: u64 = 1;
    while s < n {
        let rx = 1 & (t / 2) as u64;
        let ry = 1 & ((t as u64) ^ rx);
        rot(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order1_visits_quadrants_in_curve_order() {
        // The order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(xy2d(1, 0, 0), 0);
        assert_eq!(xy2d(1, 0, 1), 1);
        assert_eq!(xy2d(1, 1, 1), 2);
        assert_eq!(xy2d(1, 1, 0), 3);
    }

    #[test]
    fn round_trip_small_orders() {
        for order in 1..=6u32 {
            let n = 1u64 << order;
            for x in 0..n {
                for y in 0..n {
                    let d = xy2d(order, x, y);
                    assert_eq!(d2xy(order, d), (x, y), "order={order} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn distances_are_a_bijection() {
        let order = 5;
        let n = 1u64 << order;
        let mut seen = vec![false; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = xy2d(order, x, y) as usize;
                assert!(!seen[d], "duplicate distance {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn consecutive_distances_are_adjacent_cells() {
        // The defining property of the Hilbert curve: consecutive d values
        // map to 4-neighbour cells.
        let order = 6;
        let n = 1u64 << order;
        let mut prev = d2xy(order, 0);
        for d in 1..(n * n) {
            let cur = d2xy(order, d);
            let manhattan =
                (cur.0 as i64 - prev.0 as i64).abs() + (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(manhattan, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn order32_round_trips_at_extremes() {
        for &(x, y) in &[
            (0u64, 0u64),
            (u32::MAX as u64, u32::MAX as u64),
            (u32::MAX as u64, 0),
            (0, u32::MAX as u64),
            (123_456_789, 3_987_654_321),
        ] {
            let d = xy2d(32, x, y);
            assert_eq!(d2xy(32, d), (x, y));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_coordinates() {
        xy2d(4, 16, 0);
    }
}
