//! Binary dataset (de)serialization in the SOSD on-disk format:
//! a little-endian `u64` key count followed by the keys themselves
//! (little-endian, fixed width).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use sosd_core::Key;

/// Write keys in SOSD binary format.
pub fn write_keys<K: Key, P: AsRef<Path>>(path: P, keys: &[K]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&(keys.len() as u64).to_le_bytes())?;
    let width = (K::BITS / 8) as usize;
    for &k in keys {
        out.write_all(&k.to_u64().to_le_bytes()[..width])?;
    }
    out.flush()
}

/// Read keys in SOSD binary format. Fails on truncated files.
pub fn read_keys<K: Key, P: AsRef<Path>>(path: P) -> io::Result<Vec<K>> {
    let mut input = BufReader::new(File::open(path)?);
    let mut count_buf = [0u8; 8];
    input.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf) as usize;
    let width = (K::BITS / 8) as usize;
    let mut keys = Vec::with_capacity(count);
    let mut buf = [0u8; 8];
    for _ in 0..count {
        input.read_exact(&mut buf[..width])?;
        let mut full = [0u8; 8];
        full[..width].copy_from_slice(&buf[..width]);
        keys.push(K::from_u64(u64::from_le_bytes(full)));
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sosd_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn u64_round_trip() {
        let path = tmp("u64");
        let keys: Vec<u64> = vec![0, 1, 42, u64::MAX];
        write_keys(&path, &keys).unwrap();
        let back: Vec<u64> = read_keys(&path).unwrap();
        assert_eq!(back, keys);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn u32_round_trip_uses_narrow_encoding() {
        let path = tmp("u32");
        let keys: Vec<u32> = vec![0, 7, u32::MAX];
        write_keys(&path, &keys).unwrap();
        let meta = std::fs::metadata(&path).unwrap();
        assert_eq!(meta.len(), 8 + 3 * 4);
        let back: Vec<u32> = read_keys(&path).unwrap();
        assert_eq!(back, keys);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncated_file_errors() {
        let path = tmp("trunc");
        std::fs::write(&path, 100u64.to_le_bytes()).unwrap();
        assert!(read_keys::<u64, _>(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
