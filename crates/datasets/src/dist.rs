//! Probability distributions over the core deterministic PRNG.
//!
//! Implemented from scratch (Box-Muller, inversion sampling) so dataset
//! generation depends only on the workspace's own seeded generator and stays
//! bit-for-bit reproducible across platforms.

use sosd_core::util::XorShift64;

/// Standard normal sample via the Box-Muller transform.
pub fn normal(rng: &mut XorShift64) -> f64 {
    // Guard against log(0).
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
#[inline]
pub fn normal_with(rng: &mut XorShift64, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * normal(rng)
}

/// Exponential sample with the given rate (inversion method).
pub fn exponential(rng: &mut XorShift64, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

/// Log-normal sample: `exp(N(mu, sigma))`.
#[inline]
pub fn log_normal(rng: &mut XorShift64, mu: f64, sigma: f64) -> f64 {
    normal_with(rng, mu, sigma).exp()
}

/// A Zipf(s) distribution over ranks `0..n`, sampled by inversion over the
/// precomputed cumulative mass. Used for skewed lookup workloads (hot keys).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build over `n` ranks with exponent `s > 0` (larger = more skew; `s`
    /// around 0.99 is the common YCSB setting).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s > 0.0, "exponent must be positive");
        let mut acc = 0.0f64;
        let mut cumulative: Vec<f64> = (1..=n)
            .map(|k| {
                acc += 1.0 / (k as f64).powf(s);
                acc
            })
            .collect();
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank (0 = most popular).
    pub fn sample(&self, rng: &mut XorShift64) -> usize {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

/// A categorical distribution over component weights, sampled by inversion.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (need not be normalized).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|&w| {
                acc += w / total;
                acc
            })
            .collect();
        Categorical { cumulative }
    }

    /// Sample a component index.
    pub fn sample(&self, rng: &mut XorShift64) -> usize {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = XorShift64::new(1);
        let s: Vec<f64> = (0..50_000).map(|_| normal(&mut rng)).collect();
        let (mean, var) = moments(&s);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_scales() {
        let mut rng = XorShift64::new(2);
        let s: Vec<f64> = (0..50_000).map(|_| normal_with(&mut rng, 10.0, 3.0)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 9.0).abs() < 0.5);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = XorShift64::new(3);
        let s: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, 4.0)).collect();
        let (mean, _) = moments(&s);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut rng = XorShift64::new(4);
        let s: Vec<f64> = (0..20_000).map(|_| log_normal(&mut rng, 0.0, 1.0)).collect();
        assert!(s.iter().all(|&x| x > 0.0));
        let (mean, _) = moments(&s);
        // E[lognormal(0,1)] = exp(0.5) ~ 1.6487
        assert!((mean - 1.6487).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = XorShift64::new(5);
        let cat = Categorical::new(&[1.0, 3.0]);
        let mut counts = [0usize; 2];
        for _ in 0..40_000 {
            counts[cat.sample(&mut rng)] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_rejects_empty() {
        Categorical::new(&[]);
    }
}
