//! Mixed read/write workload generation — the paper's future-work
//! benchmark ("a benchmark for mixed read/write workloads", Section 1 and
//! the conclusion).
//!
//! A [`MixedWorkload`] seeds a dynamic index with a bulk-loaded prefix of a
//! dataset, then issues an operation stream mixing point lookups, inserts of
//! the held-out keys, and range-sum queries. Knobs follow the YCSB
//! conventions: an insert fraction, a range fraction, and a choice of read
//! skew (uniform or Zipfian over the *currently inserted* key population).

use crate::dist::Zipf;
use crate::registry::{self, DatasetId};
use sosd_core::dynamic::Op;
use sosd_core::util::XorShift64;
use sosd_core::Key;

/// How read keys are drawn from the inserted population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadSkew {
    /// Uniform over all currently present keys.
    Uniform,
    /// Zipf-distributed over a shuffled popularity ranking (hot keys exist
    /// but are spread across the key space, as in YCSB).
    Zipf(f64),
}

/// Configuration for [`generate_mixed`].
#[derive(Debug, Clone, Copy)]
pub struct MixedConfig {
    /// Fraction of the dataset bulk-loaded before the op stream (the rest
    /// arrives as inserts).
    pub bulk_fraction: f64,
    /// Fraction of stream operations that are inserts.
    pub insert_fraction: f64,
    /// Fraction of stream operations that are deletes of present keys
    /// (churn). Deleted keys never return.
    pub delete_fraction: f64,
    /// Fraction of stream operations that are range sums (the remainder
    /// after inserts, deletes, and ranges are point lookups).
    pub range_fraction: f64,
    /// Maximum width of a range query, in key-space distance between
    /// consecutive dataset keys (ranges span ~this many keys).
    pub range_span_keys: usize,
    /// Read-key skew.
    pub read_skew: ReadSkew,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            bulk_fraction: 0.5,
            insert_fraction: 0.1,
            delete_fraction: 0.0,
            range_fraction: 0.0,
            range_span_keys: 100,
            read_skew: ReadSkew::Uniform,
        }
    }
}

/// A generated mixed read/write workload.
#[derive(Debug, Clone)]
pub struct MixedWorkload<K: Key> {
    /// Keys to bulk-load before the stream (sorted, unique).
    pub bulk_keys: Vec<K>,
    /// Payloads parallel to `bulk_keys`.
    pub bulk_payloads: Vec<u64>,
    /// The operation stream.
    pub ops: Vec<Op<K>>,
    /// Human-readable description ("amzn bulk=50% ins=10% uniform").
    pub label: String,
}

impl<K: Key> MixedWorkload<K> {
    /// Number of operations in the stream.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Count of insert operations in the stream.
    pub fn num_inserts(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, Op::Insert(..))).count()
    }
}

/// Deterministic payload for a key (stable across the workload and any
/// oracle re-execution).
#[inline]
fn payload_for(key: u64) -> u64 {
    sosd_core::util::splitmix64(key ^ 0x9E37_79B9_7F4A_7C15)
}

/// Generate a mixed workload over dataset `id` with `n` total keys and
/// `num_ops` stream operations.
///
/// The dataset's keys are split by a deterministic shuffle into a
/// bulk-loaded set and an insert set; inserts in the stream drain the
/// insert set in shuffle order (so they arrive key-randomly, the hardest
/// case for sorted-array structures). Reads target keys already present at
/// that point in the stream, making every lookup a guaranteed hit — the
/// same convention as the paper's read-only workloads.
pub fn generate_mixed(
    id: DatasetId,
    n: usize,
    num_ops: usize,
    cfg: MixedConfig,
    seed: u64,
) -> MixedWorkload<u64> {
    assert!((0.0..=1.0).contains(&cfg.bulk_fraction), "bulk_fraction out of range");
    assert!(
        cfg.insert_fraction + cfg.delete_fraction + cfg.range_fraction <= 1.0,
        "insert + delete + range fractions exceed 1"
    );
    let data = registry::generate_u64(id, n, seed);
    // Unique keys only: dynamic indexes have map semantics.
    let mut keys: Vec<u64> = data.keys().to_vec();
    keys.dedup();

    let mut rng = XorShift64::new(seed ^ 0x3D1F);
    // Deterministic Fisher-Yates to pick the insert set.
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let num_bulk = ((keys.len() as f64) * cfg.bulk_fraction) as usize;
    let (bulk_idx, insert_idx) = order.split_at(num_bulk.min(keys.len()));

    let mut bulk_keys: Vec<u64> = bulk_idx.iter().map(|&i| keys[i as usize]).collect();
    bulk_keys.sort_unstable();
    let bulk_payloads: Vec<u64> = bulk_keys.iter().map(|&k| payload_for(k)).collect();

    // `present` grows as inserts are issued; reads sample from it.
    let mut present: Vec<u64> = bulk_keys.clone();
    let mut insert_queue = insert_idx.iter().map(|&i| keys[i as usize]);

    let zipf = match cfg.read_skew {
        ReadSkew::Zipf(s) => Some(Zipf::new(keys.len(), s)),
        ReadSkew::Uniform => None,
    };

    let mut ops: Vec<Op<u64>> = Vec::with_capacity(num_ops);
    for _ in 0..num_ops {
        let u = rng.next_f64();
        if u < cfg.insert_fraction {
            match insert_queue.next() {
                Some(k) => {
                    present.push(k);
                    ops.push(Op::Insert(k, payload_for(k)));
                    continue;
                }
                None => { /* insert set exhausted: fall through to a read */ }
            }
        }
        if u < cfg.insert_fraction + cfg.delete_fraction && present.len() > 1 {
            // Churn: delete a random present key for good.
            let i = rng.next_below(present.len() as u64) as usize;
            let k = present.swap_remove(i);
            ops.push(Op::Remove(k));
            continue;
        }
        if u < cfg.insert_fraction + cfg.delete_fraction + cfg.range_fraction && !present.is_empty()
        {
            let i = rng.next_below(present.len() as u64) as usize;
            let lo = present[i];
            // Span roughly `range_span_keys` dataset keys.
            let avg_gap = (keys[keys.len() - 1] / keys.len().max(1) as u64).max(1);
            let hi = lo.saturating_add(avg_gap.saturating_mul(cfg.range_span_keys as u64));
            ops.push(Op::RangeSum(lo, hi));
            continue;
        }
        // Point lookup of a present key.
        let i = match &zipf {
            Some(z) => {
                // Zipf rank into the present population (rank 0 = hottest).
                z.sample(&mut rng) % present.len().max(1)
            }
            None => rng.next_below(present.len().max(1) as u64) as usize,
        };
        ops.push(Op::Lookup(present[i.min(present.len() - 1)]));
    }

    let skew = match cfg.read_skew {
        ReadSkew::Uniform => "uniform".to_string(),
        ReadSkew::Zipf(s) => format!("zipf({s})"),
    };
    let label = format!(
        "{} bulk={:.0}% ins={:.0}% del={:.0}% range={:.0}% {}",
        id.name(),
        cfg.bulk_fraction * 100.0,
        cfg.insert_fraction * 100.0,
        cfg.delete_fraction * 100.0,
        cfg.range_fraction * 100.0,
        skew
    );
    MixedWorkload { bulk_keys, bulk_payloads, ops, label }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_mostly_reads() {
        let w = generate_mixed(DatasetId::Amzn, 20_000, 10_000, MixedConfig::default(), 7);
        let inserts = w.num_inserts();
        assert!(inserts > 500 && inserts < 1_500, "~10% inserts expected, got {inserts}");
        assert_eq!(w.num_ops(), 10_000);
        assert!(!w.bulk_keys.is_empty());
        assert!(w.bulk_keys.windows(2).all(|x| x[0] < x[1]), "bulk keys sorted unique");
    }

    #[test]
    fn reads_always_hit_present_keys() {
        let w = generate_mixed(DatasetId::Wiki, 10_000, 5_000, MixedConfig::default(), 3);
        let mut present: std::collections::HashSet<u64> = w.bulk_keys.iter().copied().collect();
        for op in &w.ops {
            match *op {
                Op::Insert(k, _) => {
                    assert!(present.insert(k), "insert of already-present key {k}");
                }
                Op::Remove(k) => {
                    assert!(present.remove(&k), "remove of absent key {k}");
                }
                Op::Lookup(k) => assert!(present.contains(&k), "lookup of absent key {k}"),
                Op::RangeSum(lo, hi) => assert!(lo <= hi),
            }
        }
    }

    #[test]
    fn insert_heavy_mix_drains_heldout_keys() {
        let cfg = MixedConfig { bulk_fraction: 0.2, insert_fraction: 0.9, ..Default::default() };
        let w = generate_mixed(DatasetId::Face, 5_000, 6_000, cfg, 11);
        // 80% of ~5k keys are held out; a 90% insert mix over 6k ops should
        // drain most of them.
        assert!(w.num_inserts() > 3_000, "{}", w.num_inserts());
    }

    #[test]
    fn zipf_skew_produces_hot_keys() {
        let cfg = MixedConfig {
            insert_fraction: 0.0,
            read_skew: ReadSkew::Zipf(1.1),
            ..Default::default()
        };
        let w = generate_mixed(DatasetId::Amzn, 10_000, 20_000, cfg, 5);
        let mut counts = std::collections::HashMap::new();
        for op in &w.ops {
            if let Op::Lookup(k) = op {
                *counts.entry(*k).or_insert(0usize) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        let distinct = counts.len();
        // Zipf(1.1): the hottest key gets a large share; uniform would give
        // each key ~2 hits over 20k ops on 5k keys.
        assert!(max > 200, "hottest key only {max} hits");
        assert!(distinct > 100, "only {distinct} distinct keys read");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = generate_mixed(DatasetId::Osm, 5_000, 2_000, MixedConfig::default(), 9);
        let b = generate_mixed(DatasetId::Osm, 5_000, 2_000, MixedConfig::default(), 9);
        assert_eq!(a.bulk_keys, b.bulk_keys);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn range_fraction_emits_ranges() {
        let cfg = MixedConfig { range_fraction: 0.3, ..Default::default() };
        let w = generate_mixed(DatasetId::Amzn, 5_000, 5_000, cfg, 2);
        let ranges = w.ops.iter().filter(|op| matches!(op, Op::RangeSum(..))).count();
        assert!(ranges > 1_000, "expected ~30% ranges, got {ranges}");
    }
    #[test]
    fn delete_fraction_emits_removes_of_present_keys() {
        let cfg = MixedConfig { delete_fraction: 0.3, ..Default::default() };
        let w = generate_mixed(DatasetId::Amzn, 8_000, 8_000, cfg, 13);
        let mut present: std::collections::HashSet<u64> = w.bulk_keys.iter().copied().collect();
        let mut removes = 0usize;
        for op in &w.ops {
            match *op {
                Op::Insert(k, _) => {
                    present.insert(k);
                }
                Op::Remove(k) => {
                    removes += 1;
                    assert!(present.remove(&k), "remove of absent key {k}");
                }
                Op::Lookup(k) => assert!(present.contains(&k), "lookup of deleted key {k}"),
                Op::RangeSum(..) => {}
            }
        }
        assert!(removes > 1_800, "expected ~30% removes, got {removes}");
    }
}
