//! The dataset generators themselves.
//!
//! Every generator returns a sorted `Vec<u64>` of exactly `n` keys and is a
//! pure function of `(n, seed)`. Where the real dataset has unique keys
//! (`amzn`, `face`, `osm`), duplicates produced by sampling are nudged
//! upward to preserve both uniqueness and the CDF shape; `wiki` keeps its
//! duplicates because the real dataset has them.

use crate::dist::{exponential, log_normal, normal_with, Categorical};
use crate::hilbert;
use sosd_core::util::XorShift64;

/// Number of extreme outlier keys in the `face` dataset (the paper reports
/// "approximately 100 outliers" in `(2^59, 2^64 - 1)`).
pub const FACE_OUTLIERS: usize = 100;

/// Sort keys and replace duplicates with the next free larger value,
/// preserving sortedness and (approximately) the CDF shape.
fn sort_dedup_nudge(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    for i in 1..keys.len() {
        if keys[i] <= keys[i - 1] {
            keys[i] = keys[i - 1].saturating_add(1);
        }
    }
    // A run that saturated at u64::MAX (e.g. osm points clamped into the top
    // grid corner) is resolved by nudging downward from the end.
    for i in (0..keys.len().saturating_sub(1)).rev() {
        if keys[i] >= keys[i + 1] {
            keys[i] = keys[i + 1] - 1;
        }
    }
    keys
}

/// `amzn`: Amazon book-popularity keys.
///
/// A three-component normal mixture in linear key space produces the
/// smooth, gently S-curved CDF of Figure 6 — globally easy to approximate,
/// with natural sampling noise at small scales. Keys occupy roughly
/// `(0, 2^47)`.
pub fn amzn(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed ^ 0xA3A1);
    let mixture = Categorical::new(&[0.45, 0.35, 0.20]);
    let scale = (1u64 << 46) as f64;
    // (mean, std dev) in units of `scale`.
    let params = [(0.55, 0.22), (1.10, 0.18), (1.55, 0.28)];
    let max = scale * 2.0 - 1.0;
    let keys = (0..n)
        .map(|_| {
            let (mu, sigma) = params[mixture.sample(&mut rng)];
            normal_with(&mut rng, mu * scale, sigma * scale).clamp(1.0, max) as u64
        })
        .collect();
    sort_dedup_nudge(keys)
}

/// `face`: randomly sampled user IDs.
///
/// Bulk of the keys uniform in `(0, 2^50)`, plus [`FACE_OUTLIERS`] extreme
/// outliers in `(2^59, 2^64)`. The outliers make the top 16 prefix bits of a
/// radix table nearly useless, reproducing the paper's RBS/ART discussion.
pub fn face(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed ^ 0xFACE);
    let outliers = FACE_OUTLIERS.min(n / 2);
    let bulk = n - outliers;
    let mut keys: Vec<u64> = (0..bulk).map(|_| 1 + rng.next_below((1u64 << 50) - 1)).collect();
    let outlier_span = u64::MAX - (1u64 << 59);
    keys.extend((0..outliers).map(|_| (1u64 << 59) + rng.next_below(outlier_span)));
    sort_dedup_nudge(keys)
}

/// Number of population clusters ("cities") used by the `osm` generator.
fn osm_cluster_count(n: usize) -> usize {
    (n / 4_000).clamp(32, 4_096)
}

/// `osm`: OpenStreetMap-style cell IDs.
///
/// Clustered 2-D points (log-normally sized Gaussian clusters, plus a
/// uniform background) mapped through an order-32 [Hilbert
/// curve](crate::hilbert). The projection shreds spatial locality into
/// erratic small-scale CDF structure — the property that makes `osm` hard
/// for every learned index in the paper.
pub fn osm(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed ^ 0x05E7);
    let span = 1u64 << 32;
    let clusters = osm_cluster_count(n);
    let centers: Vec<(f64, f64, f64)> = (0..clusters)
        .map(|_| {
            let cx = rng.next_below(span) as f64;
            let cy = rng.next_below(span) as f64;
            // Cluster radius varies over ~3 orders of magnitude.
            let spread = log_normal(&mut rng, 18.0, 1.2).min(span as f64 / 8.0);
            (cx, cy, spread)
        })
        .collect();
    let pick = Categorical::new(&vec![1.0; clusters]);
    let max_coord = (span - 1) as f64;
    let keys = (0..n)
        .map(|_| {
            let (x, y) = if rng.next_f64() < 0.10 {
                // Background noise: uniform over the whole plane.
                (rng.next_below(span), rng.next_below(span))
            } else {
                let (cx, cy, spread) = centers[pick.sample(&mut rng)];
                let x = normal_with(&mut rng, cx, spread).clamp(0.0, max_coord);
                let y = normal_with(&mut rng, cy, spread).clamp(0.0, max_coord);
                (x as u64, y as u64)
            };
            hilbert::xy2d(32, x, y)
        })
        .collect();
    sort_dedup_nudge(keys)
}

/// `wiki`: edit timestamps (seconds), including genuine duplicates.
///
/// A Poisson arrival process whose rate is modulated by daily and weekly
/// cycles plus random burst episodes. Quantizing arrival times to whole
/// seconds yields duplicate keys exactly like the real dataset.
pub fn wiki(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed ^ 0x311C1);
    let day = 86_400.0;
    let week = 7.0 * day;
    let base_rate = 2.0; // edits per second
    let mut t = 1.0e9; // ~2001, in seconds since the epoch
    let mut burst_left = 0usize;
    let mut burst_boost = 1.0;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        if burst_left == 0 && rng.next_f64() < 0.001 {
            // A vandalism/bot burst: very high rate for a stretch of edits.
            burst_left = 64 + rng.next_below(512) as usize;
            burst_boost = 8.0 + rng.next_f64() * 24.0;
        }
        let phase_day = (t / day) * 2.0 * std::f64::consts::PI;
        let phase_week = (t / week) * 2.0 * std::f64::consts::PI;
        let mut rate = base_rate * (1.0 + 0.5 * phase_day.sin()) * (1.0 + 0.25 * phase_week.sin());
        if burst_left > 0 {
            burst_left -= 1;
            rate *= burst_boost;
        }
        t += exponential(&mut rng, rate.max(1e-6));
        keys.push(t as u64);
    }
    keys.sort_unstable(); // already nearly sorted; keep duplicates
    keys
}

/// Dense uniform synthetic data: keys `0, g, 2g, ...` with a fixed gap.
/// Trivial for every index; used as a sanity baseline and in tests.
pub fn uniform_dense(n: usize, _seed: u64) -> Vec<u64> {
    (0..n as u64).map(|i| i * 8).collect()
}

/// Sparse uniform synthetic data: i.i.d. uniform over the full `u64` range.
pub fn uniform_sparse(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed ^ 0x5AA5);
    sort_dedup_nudge((0..n).map(|_| rng.next_u64()).collect())
}

/// Single log-normal synthetic dataset (the classic learned-index demo).
pub fn lognormal(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed ^ 0x109A);
    let max = (1u64 << 56) as f64;
    sort_dedup_nudge(
        (0..n).map(|_| log_normal(&mut rng, 25.0, 2.0).min(max - 1.0).max(1.0) as u64).collect(),
    )
}

/// Single normal synthetic dataset: the remaining SOSD \[17\] synthetic
/// shape — a symmetric unimodal CDF that learned models fit almost
/// perfectly (the "drawn from a known distribution" case the paper's
/// Section 4.1.2 warns about).
pub fn normal(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed ^ 0x4084);
    let mean = (1u64 << 50) as f64;
    let std_dev = (1u64 << 44) as f64;
    sort_dedup_nudge((0..n).map(|_| normal_with(&mut rng, mean, std_dev).max(1.0) as u64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted(keys: &[u64]) -> bool {
        keys.windows(2).all(|w| w[0] <= w[1])
    }

    fn is_strictly_sorted(keys: &[u64]) -> bool {
        keys.windows(2).all(|w| w[0] < w[1])
    }

    #[test]
    fn all_generators_are_sorted_and_sized() {
        let n = 20_000;
        for (name, keys) in [
            ("amzn", amzn(n, 1)),
            ("face", face(n, 1)),
            ("osm", osm(n, 1)),
            ("wiki", wiki(n, 1)),
            ("uniform_dense", uniform_dense(n, 1)),
            ("uniform_sparse", uniform_sparse(n, 1)),
            ("lognormal", lognormal(n, 1)),
        ] {
            assert_eq!(keys.len(), n, "{name} length");
            assert!(is_sorted(&keys), "{name} not sorted");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(amzn(5_000, 7), amzn(5_000, 7));
        assert_eq!(osm(5_000, 7), osm(5_000, 7));
        assert_ne!(amzn(5_000, 7), amzn(5_000, 8));
    }

    #[test]
    fn unique_key_datasets_have_no_duplicates() {
        for keys in [amzn(20_000, 3), face(20_000, 3), osm(20_000, 3)] {
            assert!(is_strictly_sorted(&keys));
        }
    }

    #[test]
    fn wiki_has_duplicates() {
        let keys = wiki(50_000, 3);
        let dups = keys.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(dups > 100, "expected many duplicate timestamps, got {dups}");
    }

    #[test]
    fn face_has_extreme_outliers() {
        let keys = face(50_000, 2);
        let outliers = keys.iter().filter(|&&k| k > 1u64 << 59).count();
        assert!((50..=150).contains(&outliers), "expected ~100 outliers, got {outliers}");
        // Bulk below 2^50 (plus nudge slack).
        let bulk = keys.iter().filter(|&&k| k < 1u64 << 51).count();
        assert!(bulk >= 49_800);
    }

    #[test]
    fn osm_is_locally_erratic_compared_to_amzn() {
        // Measure local non-linearity: mean relative deviation of the middle
        // key of every window of 64 from the window's linear interpolation.
        fn local_err(keys: &[u64]) -> f64 {
            let w = 64;
            let mut total = 0.0;
            let mut count = 0;
            for chunk in keys.chunks_exact(w) {
                let lo = chunk[0] as f64;
                let hi = chunk[w - 1] as f64;
                if hi <= lo {
                    continue;
                }
                let mid = chunk[w / 2] as f64;
                let expected = lo + (hi - lo) * 0.5;
                total += ((mid - expected) / (hi - lo)).abs();
                count += 1;
            }
            total / count as f64
        }
        let e_osm = local_err(&osm(100_000, 9));
        let e_amzn = local_err(&amzn(100_000, 9));
        assert!(
            e_osm > 1.5 * e_amzn,
            "osm should be locally harder: osm={e_osm:.4} amzn={e_amzn:.4}"
        );
    }

    #[test]
    fn dedup_nudge_preserves_sortedness() {
        let keys = sort_dedup_nudge(vec![5, 5, 5, 1, 1, 9]);
        assert_eq!(keys, vec![1, 2, 5, 6, 7, 9]);
    }

    #[test]
    fn uniform_dense_is_evenly_spaced() {
        let keys = uniform_dense(100, 0);
        assert!(keys.windows(2).all(|w| w[1] - w[0] == 8));
    }
}
