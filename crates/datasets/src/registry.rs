//! Dataset registry: names, enumeration, and uniform generation entry points.

use crate::gen;
use sosd_core::SortedData;

/// The datasets of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Amazon book popularity (smooth, heavy-tailed).
    Amzn,
    /// Facebook user IDs (uniform with ~100 extreme outliers).
    Face,
    /// OpenStreetMap cell IDs (Hilbert projection; locally erratic).
    Osm,
    /// Wikipedia edit timestamps (bursty, contains duplicates).
    Wiki,
    /// Synthetic: dense evenly spaced keys.
    UniformDense,
    /// Synthetic: uniform over the full 64-bit space.
    UniformSparse,
    /// Synthetic: single log-normal.
    Lognormal,
    /// Synthetic: single normal (symmetric unimodal).
    Normal,
}

impl DatasetId {
    /// The four real-world datasets of Section 4.1.2, in paper order.
    pub const REAL_WORLD: [DatasetId; 4] =
        [DatasetId::Amzn, DatasetId::Face, DatasetId::Osm, DatasetId::Wiki];

    /// All datasets including synthetic extras.
    pub const ALL: [DatasetId; 8] = [
        DatasetId::Amzn,
        DatasetId::Face,
        DatasetId::Osm,
        DatasetId::Wiki,
        DatasetId::UniformDense,
        DatasetId::UniformSparse,
        DatasetId::Lognormal,
        DatasetId::Normal,
    ];

    /// The synthetic datasets (SOSD ref. \[17\] shapes), in difficulty order.
    pub const SYNTHETIC: [DatasetId; 4] = [
        DatasetId::UniformDense,
        DatasetId::Normal,
        DatasetId::Lognormal,
        DatasetId::UniformSparse,
    ];

    /// Dataset name as used in the paper's tables and plots.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Amzn => "amzn",
            DatasetId::Face => "face",
            DatasetId::Osm => "osm",
            DatasetId::Wiki => "wiki",
            DatasetId::UniformDense => "uniform_dense",
            DatasetId::UniformSparse => "uniform_sparse",
            DatasetId::Lognormal => "lognormal",
            DatasetId::Normal => "normal",
        }
    }

    /// Parse a dataset name (as accepted by the harness CLIs).
    pub fn parse(name: &str) -> Option<DatasetId> {
        DatasetId::ALL.into_iter().find(|d| d.name() == name)
    }

    /// Generate the raw sorted key vector.
    pub fn generate_keys(self, n: usize, seed: u64) -> Vec<u64> {
        match self {
            DatasetId::Amzn => gen::amzn(n, seed),
            DatasetId::Face => gen::face(n, seed),
            DatasetId::Osm => gen::osm(n, seed),
            DatasetId::Wiki => gen::wiki(n, seed),
            DatasetId::UniformDense => gen::uniform_dense(n, seed),
            DatasetId::UniformSparse => gen::uniform_sparse(n, seed),
            DatasetId::Lognormal => gen::lognormal(n, seed),
            DatasetId::Normal => gen::normal(n, seed),
        }
    }
}

/// Generate a 64-bit dataset with payloads.
pub fn generate_u64(id: DatasetId, n: usize, seed: u64) -> SortedData<u64> {
    SortedData::new(id.generate_keys(n, seed)).expect("generators produce valid sorted data")
}

/// Generate a 32-bit dataset by rank-preserving rescaling of the 64-bit
/// version (Section 4.2.2 scales `amzn` down to 32 bits the same way).
pub fn generate_u32(id: DatasetId, n: usize, seed: u64) -> SortedData<u32> {
    let keys64 = id.generate_keys(n, seed);
    let max = *keys64.last().expect("non-empty") as u128;
    let mut keys32: Vec<u32> = keys64
        .iter()
        .map(|&k| (k as u128 * u32::MAX as u128).checked_div(max).unwrap_or(0) as u32)
        .collect();
    // Rescaling can collide; nudge exactly like the 64-bit generators do,
    // saturating at the top of the 32-bit range.
    for i in 1..keys32.len() {
        if keys32[i] <= keys32[i - 1] {
            keys32[i] = keys32[i - 1].saturating_add(1);
        }
    }
    SortedData::new(keys32).expect("rescaled keys remain sorted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for id in DatasetId::ALL {
            assert_eq!(DatasetId::parse(id.name()), Some(id));
        }
        assert_eq!(DatasetId::parse("nope"), None);
    }

    #[test]
    fn generate_u64_produces_requested_size() {
        let d = generate_u64(DatasetId::Amzn, 10_000, 42);
        assert_eq!(d.len(), 10_000);
    }

    #[test]
    fn generate_u32_preserves_rank_structure() {
        let d64 = generate_u64(DatasetId::Amzn, 10_000, 42);
        let d32 = generate_u32(DatasetId::Amzn, 10_000, 42);
        assert_eq!(d32.len(), d64.len());
        // Same relative CDF shape: quartile keys land at proportional spots.
        let q64 = d64.key(5_000) as f64 / d64.max_key() as f64;
        let q32 = d32.key(5_000) as f64 / d32.max_key() as f64;
        assert!((q64 - q32).abs() < 0.01, "q64={q64} q32={q32}");
    }

    #[test]
    fn u32_wiki_stays_sorted_despite_duplicates() {
        let d = generate_u32(DatasetId::Wiki, 20_000, 3);
        assert!(d.keys().windows(2).all(|w| w[0] <= w[1]));
    }
}
