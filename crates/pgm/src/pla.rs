//! Optimal one-pass ε-bounded piecewise linear approximation.
//!
//! Given points `(x_i, y_i)` with strictly increasing `x` and non-decreasing
//! `y`, partition them into the minimum number of segments such that each
//! segment admits a line `f` with `|f(x_i) - y_i| <= ε` for all its points.
//!
//! This is the online convex-hull algorithm used inside the PGM index
//! (O'Rourke 1981; Xie et al., VLDBJ 2014): each point contributes a
//! vertical channel `[y-ε, y+ε]`; a feasible line must thread every channel.
//! The algorithm maintains the two extreme feasible lines (maximum and
//! minimum slope) plus the convex hulls of channel endpoints that future
//! rotations can pivot on, processing each point in amortized O(1).
//!
//! All feasibility tests use exact `i128` arithmetic (keys up to 2^64,
//! positions up to 2^34: cross products stay below 2^99), so segment
//! boundaries are exact; only the final slope/intercept materialization uses
//! `f64`, and the PGM layer re-measures actual errors afterwards.

use sosd_core::Key;

/// One fitted segment over points `[start, end)` of the input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaSegment<K: Key> {
    /// Key of the segment's first point (its domain starts here).
    pub first_key: K,
    /// Line slope in positions per key unit (may be slightly negative for
    /// short noisy segments; callers clamp if they need monotonicity).
    pub slope: f64,
    /// Line value at `first_key`.
    pub y0: f64,
    /// First input index covered.
    pub start: usize,
    /// One past the last input index covered.
    pub end: usize,
}

impl<K: Key> PlaSegment<K> {
    /// Evaluate the segment's line at a key.
    ///
    /// The key delta is computed in integer space before converting to
    /// `f64`: for keys near `2^64` the direct `f64` conversions would round
    /// by up to 2048 units, but their *difference* stays exact up to `2^53`.
    #[inline]
    pub fn predict(&self, key: K) -> f64 {
        let dx = key.to_u64() as i128 - self.first_key.to_u64() as i128;
        self.y0 + self.slope * dx as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct P {
    x: i128,
    y: i128,
}

/// Sign of the turn o->a->b (counterclockwise positive).
#[inline]
fn cross(o: P, a: P, b: P) -> i128 {
    (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
}

/// Is slope(p, q) < slope(r, s)? Requires `q.x > p.x` and `s.x > r.x`.
#[inline]
fn slope_lt(p: P, q: P, r: P, s: P) -> bool {
    (q.y - p.y) * (s.x - r.x) < (s.y - r.y) * (q.x - p.x)
}

/// Is `point` strictly above the line through `(a, b)`? Requires `b.x > a.x`.
#[inline]
fn strictly_above(point: P, a: P, b: P) -> bool {
    // point.y > a.y + (point.x - a.x) * (b.y - a.y) / (b.x - a.x)
    (point.y - a.y) * (b.x - a.x) > (point.x - a.x) * (b.y - a.y)
}

/// Is `point` strictly below the line through `(a, b)`?
#[inline]
fn strictly_below(point: P, a: P, b: P) -> bool {
    (point.y - a.y) * (b.x - a.x) < (point.x - a.x) * (b.y - a.y)
}

/// Streaming segment fitter. Feed strictly-increasing `x`; collect segments.
struct Fitter {
    eps: i128,
    /// Lower convex hull of top channel endpoints (pivots for the min line).
    top_hull: Vec<P>,
    top_start: usize,
    /// Upper convex hull of bottom channel endpoints (pivots for the max line).
    bot_hull: Vec<P>,
    bot_start: usize,
    /// Extreme feasible lines as point pairs (valid once `count >= 2`).
    max_line: (P, P),
    min_line: (P, P),
    count: usize,
    start_idx: usize,
    first: P,
}

impl Fitter {
    fn new(eps: u64) -> Self {
        let zero = P { x: 0, y: 0 };
        Fitter {
            eps: eps as i128,
            top_hull: Vec::new(),
            top_start: 0,
            bot_hull: Vec::new(),
            bot_start: 0,
            max_line: (zero, zero),
            min_line: (zero, zero),
            count: 0,
            start_idx: 0,
            first: zero,
        }
    }

    fn reset(&mut self, start_idx: usize) {
        self.top_hull.clear();
        self.bot_hull.clear();
        self.top_start = 0;
        self.bot_start = 0;
        self.count = 0;
        self.start_idx = start_idx;
    }

    /// Try to absorb the point; false means the current segment must close
    /// *before* this point.
    fn add(&mut self, x: i128, y: i128) -> bool {
        let top = P { x, y: y + self.eps };
        let bot = P { x, y: y - self.eps };
        match self.count {
            0 => {
                self.first = P { x, y };
                self.top_hull.push(top);
                self.bot_hull.push(bot);
                self.count = 1;
                return true;
            }
            1 => {
                debug_assert!(x > self.first.x, "x must be strictly increasing");
                // Max slope: bottom-left to top-right; min slope: top-left to
                // bottom-right.
                self.max_line = (self.bot_hull[0], top);
                self.min_line = (self.top_hull[0], bot);
                push_lower_hull(&mut self.top_hull, self.top_start, top);
                push_upper_hull(&mut self.bot_hull, self.bot_start, bot);
                self.count = 2;
                return true;
            }
            _ => {}
        }

        // Feasibility: the new channel must intersect the corridor spanned
        // by the extreme lines.
        if strictly_above(bot, self.max_line.0, self.max_line.1)
            || strictly_below(top, self.min_line.0, self.min_line.1)
        {
            return false;
        }

        // Rotate the max line down if the new top endpoint binds.
        if strictly_below(top, self.max_line.0, self.max_line.1) {
            // New max line pivots on the bottom hull and passes through
            // `top`; the optimal pivot minimizes the slope (unimodal walk).
            let h = &self.bot_hull;
            let mut i = self.bot_start;
            while i + 1 < h.len() && slope_lt(h[i + 1], top, h[i], top) {
                i += 1;
            }
            self.bot_start = i;
            self.max_line = (h[i], top);
        }

        // Rotate the min line up if the new bottom endpoint binds.
        if strictly_above(bot, self.min_line.0, self.min_line.1) {
            let h = &self.top_hull;
            let mut i = self.top_start;
            while i + 1 < h.len() && slope_lt(h[i], bot, h[i + 1], bot) {
                i += 1;
            }
            self.top_start = i;
            self.min_line = (h[i], bot);
        }

        push_lower_hull(&mut self.top_hull, self.top_start, top);
        push_upper_hull(&mut self.bot_hull, self.bot_start, bot);
        self.count += 1;
        true
    }

    /// Materialize the closed segment covering `[start_idx, end_idx)`.
    fn finish<K: Key>(&self, first_key: K, end_idx: usize) -> PlaSegment<K> {
        let fx = self.first.x as f64;
        if self.count == 1 {
            return PlaSegment {
                first_key,
                slope: 0.0,
                y0: self.first.y as f64,
                start: self.start_idx,
                end: end_idx,
            };
        }
        let slope_of = |(p, q): (P, P)| -> f64 { (q.y - p.y) as f64 / (q.x - p.x) as f64 };
        let s_max = slope_of(self.max_line);
        let s_min = slope_of(self.min_line);
        let slope = 0.5 * (s_max + s_min);
        // Intersection of the extreme lines (both pass through the feasible
        // parameter region); fall back to the max line's left point.
        let (p1, q1) = self.max_line;
        let (p2, q2) = self.min_line;
        let (x1, y1) = (p1.x as f64, p1.y as f64);
        let (x2, y2) = (p2.x as f64, p2.y as f64);
        let _ = (q1, q2);
        let (ix, iy) = if (s_max - s_min).abs() > 1e-12 {
            let ix = (y2 - y1 + s_max * x1 - s_min * x2) / (s_max - s_min);
            (ix, y1 + s_max * (ix - x1))
        } else {
            (x1, y1)
        };
        let y0 = iy + slope * (fx - ix);
        PlaSegment { first_key, slope, y0, start: self.start_idx, end: end_idx }
    }
}

/// Append to a lower convex hull (slopes increasing left to right).
fn push_lower_hull(hull: &mut Vec<P>, floor: usize, p: P) {
    while hull.len() >= floor + 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0 {
        hull.pop();
    }
    hull.push(p);
}

/// Append to an upper convex hull (slopes decreasing left to right).
fn push_upper_hull(hull: &mut Vec<P>, floor: usize, p: P) {
    while hull.len() >= floor + 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) >= 0 {
        hull.pop();
    }
    hull.push(p);
}

/// Fit an optimal ε-bounded PLA over `(keys[i], ys[i])` pairs.
///
/// Requirements: `keys` strictly increasing, `ys` non-decreasing, equal
/// lengths, non-empty. `eps = 0` is allowed (exact interpolation segments).
pub fn fit_pla<K: Key>(keys: &[K], ys: &[u64], eps: u64) -> Vec<PlaSegment<K>> {
    assert_eq!(keys.len(), ys.len(), "keys/ys length mismatch");
    assert!(!keys.is_empty(), "cannot fit zero points");
    debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be strictly increasing");

    let mut segments = Vec::new();
    let mut fitter = Fitter::new(eps);
    let mut seg_first = keys[0];
    fitter.reset(0);
    for i in 0..keys.len() {
        let x = keys[i].to_u64() as i128;
        let y = ys[i] as i128;
        if !fitter.add(x, y) {
            segments.push(fitter.finish(seg_first, i));
            fitter.reset(i);
            seg_first = keys[i];
            let ok = fitter.add(x, y);
            debug_assert!(ok, "first point of a fresh segment is always feasible");
        }
    }
    segments.push(fitter.finish(seg_first, keys.len()));
    segments
}

/// Reference implementation: greedy shrinking-cone fitting (FITing-Tree
/// style). Guarantees the same ε error bound but may use more segments;
/// used in tests as an upper bound on the optimal segment count, and
/// exported for the ablation benchmarks.
pub fn fit_pla_greedy<K: Key>(keys: &[K], ys: &[u64], eps: u64) -> Vec<PlaSegment<K>> {
    assert_eq!(keys.len(), ys.len());
    assert!(!keys.is_empty());
    let eps = eps as f64;
    let mut segments = Vec::new();
    let mut start = 0usize;
    while start < keys.len() {
        let x0 = keys[start].to_f64();
        let y0 = ys[start] as f64;
        let mut slope_lo = f64::NEG_INFINITY;
        let mut slope_hi = f64::INFINITY;
        let mut end = start + 1;
        while end < keys.len() {
            let dx = keys[end].to_f64() - x0;
            let dy = ys[end] as f64 - y0;
            let lo = (dy - eps) / dx;
            let hi = (dy + eps) / dx;
            let new_lo = slope_lo.max(lo);
            let new_hi = slope_hi.min(hi);
            if new_lo > new_hi {
                break;
            }
            slope_lo = new_lo;
            slope_hi = new_hi;
            end += 1;
        }
        let slope =
            if end == start + 1 { 0.0 } else { 0.5 * (slope_lo.max(-1e18) + slope_hi.min(1e18)) };
        segments.push(PlaSegment { first_key: keys[start], slope, y0, start, end });
        start = end;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::util::XorShift64;

    /// Maximum |prediction - y| over each segment's own points.
    fn max_error(keys: &[u64], ys: &[u64], segments: &[PlaSegment<u64>]) -> f64 {
        let mut worst = 0.0f64;
        for seg in segments {
            for i in seg.start..seg.end {
                let err = (seg.predict(keys[i]) - ys[i] as f64).abs();
                worst = worst.max(err);
            }
        }
        worst
    }

    fn check_cover(n: usize, segments: &[PlaSegment<u64>]) {
        assert_eq!(segments[0].start, 0);
        assert_eq!(segments.last().unwrap().end, n);
        for w in segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile the input");
            assert!(w[0].first_key < w[1].first_key);
        }
    }

    fn ranks(keys: &[u64]) -> Vec<u64> {
        (0..keys.len() as u64).collect()
    }

    #[test]
    fn linear_data_needs_one_segment() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 7 + 100).collect();
        let segs = fit_pla(&keys, &ranks(&keys), 4);
        assert_eq!(segs.len(), 1);
        assert!(max_error(&keys, &ranks(&keys), &segs) <= 4.0 + 1e-6);
    }

    #[test]
    fn eps_zero_on_linear_data_is_exact() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let segs = fit_pla(&keys, &ranks(&keys), 0);
        assert_eq!(segs.len(), 1);
        assert!(max_error(&keys, &ranks(&keys), &segs) < 1e-6);
    }

    #[test]
    fn respects_epsilon_on_random_walks() {
        let mut rng = XorShift64::new(17);
        for eps in [1u64, 4, 16, 64] {
            let mut keys = Vec::new();
            let mut x = 0u64;
            for _ in 0..20_000 {
                // Bursty gaps produce realistic curvature.
                let shift = 1 + rng.next_below(14);
                x += 1 + rng.next_below(1 << shift);
                keys.push(x);
            }
            let ys = ranks(&keys);
            let segs = fit_pla(&keys, &ys, eps);
            check_cover(keys.len(), &segs);
            let err = max_error(&keys, &ys, &segs);
            assert!(
                err <= eps as f64 + 1.0,
                "eps={eps}: max err {err} with {} segments",
                segs.len()
            );
        }
    }

    #[test]
    fn optimal_never_uses_more_segments_than_greedy() {
        let mut rng = XorShift64::new(23);
        let mut keys = Vec::new();
        let mut x = 0u64;
        for _ in 0..30_000 {
            x += 1 + rng.next_below(1000);
            keys.push(x);
        }
        let ys = ranks(&keys);
        for eps in [2u64, 8, 32] {
            let opt = fit_pla(&keys, &ys, eps).len();
            let greedy = fit_pla_greedy(&keys, &ys, eps).len();
            assert!(opt <= greedy, "eps={eps}: optimal {opt} > greedy {greedy}");
        }
    }

    #[test]
    fn greedy_respects_epsilon_too() {
        let mut rng = XorShift64::new(29);
        let mut keys = Vec::new();
        let mut x = 0u64;
        for _ in 0..10_000 {
            x += 1 + rng.next_below(5000);
            keys.push(x);
        }
        let ys = ranks(&keys);
        let segs = fit_pla_greedy(&keys, &ys, 8);
        check_cover(keys.len(), &segs);
        assert!(max_error(&keys, &ys, &segs) <= 9.0);
    }

    #[test]
    fn larger_eps_fewer_segments() {
        let keys: Vec<u64> = (0..20_000u64).map(|i| i * i / 7 + i).collect();
        let ys = ranks(&keys);
        let s1 = fit_pla(&keys, &ys, 1).len();
        let s16 = fit_pla(&keys, &ys, 16).len();
        let s256 = fit_pla(&keys, &ys, 256).len();
        assert!(s1 > s16 && s16 > s256, "{s1} {s16} {s256}");
    }

    #[test]
    fn single_point_input() {
        let segs = fit_pla(&[42u64], &[7], 4);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].predict(42u64), 7.0);
    }

    #[test]
    fn two_point_input_interpolates() {
        let segs = fit_pla(&[10u64, 20], &[0, 10], 1);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].predict(15u64) - 5.0).abs() <= 1.5);
    }

    #[test]
    fn step_function_splits() {
        // y jumps by 100 halfway: with eps=1 a single line cannot span it
        // against the dense x spacing.
        let mut keys: Vec<u64> = (0..100).collect();
        keys.extend(100..200u64);
        let mut ys: Vec<u64> = (0..100).collect();
        ys.extend((0..100).map(|i| i + 10_000));
        let segs = fit_pla(&keys, &ys, 1);
        assert!(segs.len() >= 2);
        assert!(max_error(&keys, &ys, &segs) <= 2.0);
    }

    #[test]
    fn huge_keys_do_not_overflow() {
        let keys: Vec<u64> = (0..1000u64).map(|i| u64::MAX - 10_000 + i * 10).collect();
        let ys = ranks(&keys);
        let segs = fit_pla(&keys, &ys, 2);
        check_cover(keys.len(), &segs);
        assert!(max_error(&keys, &ys, &segs) <= 3.0);
    }

    #[test]
    fn exhaustive_small_inputs_against_brute_force() {
        // For tiny inputs, verify optimality by brute-force segment DP.
        fn feasible(keys: &[u64], ys: &[u64], eps: f64) -> bool {
            // A line through the channel exists iff for all pairs i<j the
            // slope windows overlap; test via LP on two variables is
            // overkill — use the greedy cone from each start.
            let n = keys.len();
            if n <= 2 {
                return true;
            }
            let x0 = keys[0] as f64;
            let y0c = ys[0] as f64;
            // Feasible slopes through point-0 channel endpoints are not
            // complete; instead check channel threading via 2D LP over
            // (slope a, intercept b) using all constraint pairs.
            let mut lo = f64::NEG_INFINITY;
            let mut hi = f64::INFINITY;
            // Fix b implicitly: line must pass within eps of point 0 too,
            // so parameterize by value v at x0 in [y0-eps, y0+eps] and
            // sweep a coarse grid (adequate for n <= 8 test sizes).
            for step in 0..=200 {
                let v = y0c - eps + (2.0 * eps) * step as f64 / 200.0;
                let mut alo = f64::NEG_INFINITY;
                let mut ahi = f64::INFINITY;
                for i in 1..n {
                    let dx = keys[i] as f64 - x0;
                    let dy = ys[i] as f64 - v;
                    alo = alo.max((dy - eps) / dx);
                    ahi = ahi.min((dy + eps) / dx);
                }
                if alo <= ahi + 1e-12 {
                    return true;
                }
                lo = lo.max(alo);
                hi = hi.min(ahi);
            }
            false
        }
        fn optimal_count(keys: &[u64], ys: &[u64], eps: u64) -> usize {
            let n = keys.len();
            let mut dp = vec![usize::MAX; n + 1];
            dp[0] = 0;
            for j in 1..=n {
                for i in 0..j {
                    if dp[i] != usize::MAX && feasible(&keys[i..j], &ys[i..j], eps as f64) {
                        dp[j] = dp[j].min(dp[i] + 1);
                    }
                }
            }
            dp[n]
        }
        let mut rng = XorShift64::new(5);
        for trial in 0..30 {
            let n = 3 + (trial % 6);
            let mut keys = Vec::new();
            let mut x = 0u64;
            for _ in 0..n {
                x += 1 + rng.next_below(20);
                keys.push(x);
            }
            let ys: Vec<u64> = (0..n as u64).map(|i| i * (1 + rng.next_below(3))).collect();
            let mut ys = ys;
            ys.sort_unstable();
            for eps in [0u64, 1, 2] {
                let got = fit_pla(&keys, &ys, eps).len();
                let want = optimal_count(&keys, &ys, eps);
                // The grid-based feasibility check may be slightly
                // optimistic, so allow equality or one extra segment.
                assert!(
                    got <= want + 1 && got >= want,
                    "n={n} eps={eps} got={got} want={want} keys={keys:?} ys={ys:?}"
                );
            }
        }
    }
}
