//! Dynamic PGM: the insert-supporting variant of the PGM index.
//!
//! Section 3.3 of the paper notes that "the PGM index can also handle
//! inserts" but does not evaluate that capability; Ferragina & Vinciguerra
//! (ref. \[13\]) dynamize the static structure with the *logarithmic method*
//! (Bentley–Saxe): a sequence of static, immutable PGM-indexed sorted runs of
//! geometrically increasing size. Inserts land in a small sorted buffer;
//! when the buffer fills, it is merged with every occupied run below the
//! first empty slot into a single new run at that slot, and a fresh static
//! PGM is built over the merged run.
//!
//! One deliberate simplification relative to ref. \[13\]: inserting a key that
//! is already present updates its payload *in place* instead of appending a
//! shadowing duplicate. This keeps all runs key-disjoint — which makes
//! lookups, lower bounds, and range sums simple unions — and gives the exact
//! `BTreeMap` semantics the cross-structure oracle tests demand. Deletions
//! follow ref. \[13\]'s tombstone approach: the key stays in its run (so PGM
//! positions remain valid) flagged dead, is skipped by every query, revives
//! on re-insert, and is physically dropped at the next merge.

use crate::pgm::PgmIndex;
use sosd_core::dynamic::{BulkLoad, DynamicOrderedIndex};
use sosd_core::{Capabilities, Index, IndexKind, Key, SearchBound, SortedData};

/// Default insert-buffer capacity (the "level 0" of the logarithmic
/// method); tune with [`DynamicPgm::with_buffer_capacity`].
pub const DEFAULT_BUFFER_CAPACITY: usize = 128;

/// Runs shorter than this are searched with plain binary search; a PGM over
/// a handful of keys costs more to build and chase than it saves.
const MIN_PGM_RUN: usize = 512;

/// Leaf-level ε for per-run PGM indexes (the dynamic PGM in ref. \[13\] uses
/// one ε for every run).
const RUN_EPS: u64 = 64;
/// Internal-level ε for per-run PGM indexes.
const RUN_EPS_INTERNAL: u64 = 16;

/// A drained run's contents during a merge: keys, payloads, tombstones.
type MergeSource<K> = (Vec<K>, Vec<u64>, Option<Box<[bool]>>);

/// One immutable sorted run with an optional static PGM over its keys.
///
/// Deletions tombstone entries in place (ref. \[13\]'s approach, restricted
/// to keys that exist): the key stays so the PGM's positions remain valid;
/// the next merge drops dead entries.
struct Run<K: Key> {
    keys: Vec<K>,
    payloads: Vec<u64>,
    pgm: Option<PgmIndex<K>>,
    /// Lazily allocated tombstone flags, parallel to `keys`.
    dead: Option<Box<[bool]>>,
}

impl<K: Key> Run<K> {
    fn build(keys: Vec<K>, payloads: Vec<u64>) -> Self {
        debug_assert_eq!(keys.len(), payloads.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "runs hold strictly sorted keys");
        let pgm = if keys.len() >= MIN_PGM_RUN {
            // The static PGM is trained on key/position pairs only; payloads
            // are irrelevant, so the transient SortedData copy is dropped as
            // soon as the model is fitted.
            let data = SortedData::new(keys.clone()).expect("non-empty sorted run");
            Some(
                PgmIndex::build(&data, RUN_EPS, RUN_EPS_INTERNAL)
                    .expect("static eps are validated constants"),
            )
        } else {
            None
        };
        Run { keys, payloads, pgm, dead: None }
    }

    #[inline]
    fn is_dead(&self, i: usize) -> bool {
        self.dead.as_ref().is_some_and(|d| d[i])
    }

    fn set_dead(&mut self, i: usize, dead: bool) {
        match &mut self.dead {
            Some(d) => d[i] = dead,
            None if dead => {
                let mut d = vec![false; self.keys.len()].into_boxed_slice();
                d[i] = true;
                self.dead = Some(d);
            }
            None => {}
        }
    }

    /// Position of the first key `>= x` inside this run (dead or alive).
    #[inline]
    fn lower_bound(&self, x: K) -> usize {
        let bound = match &self.pgm {
            Some(pgm) => pgm.search_bound(x),
            None => SearchBound::full(self.keys.len()),
        };
        sosd_core::search::binary_search(&self.keys, x, bound)
    }

    /// First *live* entry with key `>= x`.
    fn lower_bound_live(&self, x: K) -> Option<(K, u64)> {
        let mut i = self.lower_bound(x);
        while i < self.keys.len() {
            if !self.is_dead(i) {
                return Some((self.keys[i], self.payloads[i]));
            }
            i += 1;
        }
        None
    }

    /// In-run position of `x` if the key exists (live or tombstoned).
    #[inline]
    fn find(&self, x: K) -> Option<usize> {
        let i = self.lower_bound(x);
        (i < self.keys.len() && self.keys[i] == x).then_some(i)
    }

    fn size_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<K>()
            + self.payloads.capacity() * 8
            + self.pgm.as_ref().map_or(0, |p| p.size_bytes())
            + self.dead.as_ref().map_or(0, |d| d.len())
    }
}

/// A PGM index dynamized with the logarithmic method (ref. \[13\], §"PGM can
/// also handle inserts"; the paper's future-work benchmark).
pub struct DynamicPgm<K: Key> {
    /// Sorted insert buffer (level 0), kept small.
    buf_keys: Vec<K>,
    buf_payloads: Vec<u64>,
    /// `runs[i]`, when occupied, holds roughly `buffer_capacity << i` keys.
    /// All runs and the buffer are pairwise key-disjoint.
    runs: Vec<Option<Run<K>>>,
    len: usize,
    /// Cumulative keys merged, tracked for the amortized-cost tests.
    merged_keys: u64,
    /// Inserts accumulate in the buffer until it reaches this size.
    buffer_capacity: usize,
}

impl<K: Key> Default for DynamicPgm<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> DynamicPgm<K> {
    /// An empty dynamic PGM with the default buffer capacity.
    pub fn new() -> Self {
        Self::with_buffer_capacity(DEFAULT_BUFFER_CAPACITY)
    }

    /// An empty dynamic PGM whose insert buffer holds `capacity` keys
    /// before each merge. Larger buffers amortize merges over more inserts
    /// (faster writes) at the price of a longer linear-scanned level 0
    /// (slower reads) — the knob the `ext04` ablation sweeps.
    pub fn with_buffer_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8);
        DynamicPgm {
            buf_keys: Vec::with_capacity(capacity),
            buf_payloads: Vec::with_capacity(capacity),
            runs: Vec::new(),
            len: 0,
            merged_keys: 0,
            buffer_capacity: capacity,
        }
    }

    /// Number of occupied runs (excluding the insert buffer). The
    /// logarithmic method guarantees O(log(n / B)) of these.
    pub fn num_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.is_some()).count()
    }

    /// Total keys moved by merges so far; `merged_keys / len` is the
    /// write-amplification factor the logarithmic method pays.
    pub fn merged_keys(&self) -> u64 {
        self.merged_keys
    }

    /// Merge the buffer and every run into a single run, physically
    /// dropping all tombstones — the explicit space-reclamation step for
    /// delete-heavy workloads (ref. \[13\] performs the same cleanup lazily
    /// at its major merges).
    pub fn compact(&mut self) {
        let mut entries: Vec<(K, u64)> = Vec::with_capacity(self.len);
        for (k, v) in self.buf_keys.drain(..).zip(self.buf_payloads.drain(..)) {
            entries.push((k, v));
        }
        for run in self.runs.drain(..).flatten() {
            for i in 0..run.keys.len() {
                if !run.is_dead(i) {
                    entries.push((run.keys[i], run.payloads[i]));
                }
            }
        }
        entries.sort_unstable_by_key(|e| e.0);
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries are disjoint");
        debug_assert_eq!(entries.len(), self.len, "compaction must keep every live entry");
        let keys: Vec<K> = entries.iter().map(|e| e.0).collect();
        let payloads: Vec<u64> = entries.iter().map(|e| e.1).collect();
        self.merged_keys += keys.len() as u64;
        if !keys.is_empty() {
            self.runs.push(Some(Run::build(keys, payloads)));
        }
    }

    /// Merge the buffer and runs `0..j` (`j` = first empty slot) into slot
    /// `j`. All sources are key-disjoint, so this is a pure k-way merge.
    fn flush_buffer(&mut self) {
        if self.buf_keys.is_empty() {
            return;
        }
        let j = self.runs.iter().position(|r| r.is_none()).unwrap_or(self.runs.len());
        if j == self.runs.len() {
            self.runs.push(None);
        }

        // Gather sources: the buffer plus every run below slot j. Dead
        // entries are dropped here — the merge is where tombstones reclaim
        // their space.
        let mut sources: Vec<MergeSource<K>> = Vec::with_capacity(j + 1);
        sources.push((
            std::mem::take(&mut self.buf_keys),
            std::mem::take(&mut self.buf_payloads),
            None,
        ));
        for slot in self.runs[..j].iter_mut() {
            if let Some(run) = slot.take() {
                sources.push((run.keys, run.payloads, run.dead));
            }
        }

        let total: usize = sources.iter().map(|(k, _, _)| k.len()).sum();
        let mut keys = Vec::with_capacity(total);
        let mut payloads = Vec::with_capacity(total);
        let mut cursors = vec![0usize; sources.len()];
        // Advance every cursor past tombstoned entries.
        let skip_dead = |sources: &[MergeSource<K>], cursors: &mut [usize]| {
            for (s, (sk, _, dead)) in sources.iter().enumerate() {
                if let Some(d) = dead {
                    while cursors[s] < sk.len() && d[cursors[s]] {
                        cursors[s] += 1;
                    }
                }
            }
        };
        // Simple k-way merge; k is O(log n) so the linear min scan is fine.
        loop {
            skip_dead(&sources, &mut cursors);
            let mut best: Option<(usize, K)> = None;
            for (s, (sk, _, _)) in sources.iter().enumerate() {
                if cursors[s] < sk.len() {
                    let k = sk[cursors[s]];
                    match best {
                        Some((_, bk)) if bk <= k => {
                            debug_assert!(bk != k, "runs must be key-disjoint");
                        }
                        _ => best = Some((s, k)),
                    }
                }
            }
            let Some((s, k)) = best else { break };
            keys.push(k);
            payloads.push(sources[s].1[cursors[s]]);
            cursors[s] += 1;
        }

        self.merged_keys += keys.len() as u64;
        self.runs[j] = if keys.is_empty() { None } else { Some(Run::build(keys, payloads)) };
        self.buf_keys.reserve(self.buffer_capacity);
        self.buf_payloads.reserve(self.buffer_capacity);
    }
}

impl<K: Key> BulkLoad<K> for DynamicPgm<K> {
    /// Seed with one big static run: exactly what the logarithmic method
    /// degenerates to for a sorted bulk input.
    fn bulk_load(keys: &[K], payloads: &[u64]) -> Self {
        assert_eq!(keys.len(), payloads.len());
        let mut idx = DynamicPgm::new();
        if keys.is_empty() {
            return idx;
        }
        idx.len = keys.len();
        idx.merged_keys = keys.len() as u64;
        // Place the run at the slot matching its size so future flushes keep
        // geometric shape.
        let mut slot = 0usize;
        while (idx.buffer_capacity << (slot + 1)) < keys.len() {
            slot += 1;
        }
        idx.runs.resize_with(slot + 1, || None);
        idx.runs[slot] = Some(Run::build(keys.to_vec(), payloads.to_vec()));
        idx
    }
}

impl<K: Key> DynamicOrderedIndex<K> for DynamicPgm<K> {
    fn name(&self) -> &'static str {
        "DynamicPGM"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.buf_keys.capacity() * std::mem::size_of::<K>()
            + self.buf_payloads.capacity() * 8
            + self.runs.capacity() * std::mem::size_of::<Option<Run<K>>>()
            + self.runs.iter().flatten().map(Run::size_bytes).sum::<usize>()
    }

    fn insert(&mut self, key: K, payload: u64) -> Option<u64> {
        // In-place overwrite keeps runs disjoint (see module docs); a
        // tombstoned key revives in place.
        if let Ok(i) = self.buf_keys.binary_search(&key) {
            return Some(std::mem::replace(&mut self.buf_payloads[i], payload));
        }
        for run in self.runs.iter_mut().flatten() {
            if let Some(i) = run.find(key) {
                if run.is_dead(i) {
                    run.payloads[i] = payload;
                    run.set_dead(i, false);
                    self.len += 1;
                    return None;
                }
                return Some(std::mem::replace(&mut run.payloads[i], payload));
            }
        }

        let i = self.buf_keys.partition_point(|&k| k < key);
        self.buf_keys.insert(i, key);
        self.buf_payloads.insert(i, payload);
        self.len += 1;
        if self.buf_keys.len() >= self.buffer_capacity {
            self.flush_buffer();
        }
        None
    }

    fn remove(&mut self, key: K) -> Option<u64> {
        if let Ok(i) = self.buf_keys.binary_search(&key) {
            self.buf_keys.remove(i);
            let payload = self.buf_payloads.remove(i);
            self.len -= 1;
            return Some(payload);
        }
        for run in self.runs.iter_mut().flatten() {
            if let Some(i) = run.find(key) {
                if run.is_dead(i) {
                    return None;
                }
                run.set_dead(i, true);
                self.len -= 1;
                return Some(run.payloads[i]);
            }
        }
        None
    }

    fn get(&self, key: K) -> Option<u64> {
        if let Ok(i) = self.buf_keys.binary_search(&key) {
            return Some(self.buf_payloads[i]);
        }
        self.runs
            .iter()
            .flatten()
            .find_map(|run| run.find(key).filter(|&i| !run.is_dead(i)).map(|i| run.payloads[i]))
    }

    fn lower_bound_entry(&self, key: K) -> Option<(K, u64)> {
        let mut best: Option<(K, u64)> = None;
        let i = self.buf_keys.partition_point(|&k| k < key);
        if i < self.buf_keys.len() {
            best = Some((self.buf_keys[i], self.buf_payloads[i]));
        }
        for run in self.runs.iter().flatten() {
            if let Some(cand) = run.lower_bound_live(key) {
                if best.is_none_or(|b| cand.0 < b.0) {
                    best = Some(cand);
                }
            }
        }
        best
    }

    fn range_sum(&self, lo: K, hi: K) -> u64 {
        if hi <= lo {
            return 0;
        }
        let mut sum = 0u64;
        let a = self.buf_keys.partition_point(|&k| k < lo);
        let b = self.buf_keys.partition_point(|&k| k < hi);
        for v in &self.buf_payloads[a..b] {
            sum = sum.wrapping_add(*v);
        }
        // Runs are disjoint: each contributes its own slice independently.
        for run in self.runs.iter().flatten() {
            let a = run.lower_bound(lo);
            let b = run.lower_bound(hi);
            for i in a..b {
                if !run.is_dead(i) {
                    sum = sum.wrapping_add(run.payloads[i]);
                }
            }
        }
        sum
    }

    /// One PGM-guided descent per source (the buffer plus each run) to
    /// find its window, then a k-way merge of the window cursors — k is
    /// `O(log n)` runs, so the scan is `O(log n + m log log n)`-ish
    /// instead of the trait default's one full multi-run descent *per
    /// visited entry*. Tombstoned entries are skipped at their cursor.
    fn for_each_in(&self, lo: K, hi: K, f: &mut dyn FnMut(K, u64)) {
        if hi <= lo {
            return;
        }
        /// One sorted source: a key/payload window plus optional
        /// tombstone flags (absent for the insert buffer).
        struct Cursor<'a, K> {
            keys: &'a [K],
            payloads: &'a [u64],
            dead: Option<&'a [bool]>,
            /// Absolute position within the source arrays.
            pos: usize,
            /// Exclusive end of the window.
            end: usize,
        }
        let mut cursors: Vec<Cursor<'_, K>> = Vec::with_capacity(self.runs.len() + 1);
        cursors.push(Cursor {
            keys: &self.buf_keys,
            payloads: &self.buf_payloads,
            dead: None,
            pos: self.buf_keys.partition_point(|&k| k < lo),
            end: self.buf_keys.partition_point(|&k| k < hi),
        });
        for run in self.runs.iter().flatten() {
            cursors.push(Cursor {
                keys: &run.keys,
                payloads: &run.payloads,
                dead: run.dead.as_deref(),
                pos: run.lower_bound(lo),
                end: run.lower_bound(hi),
            });
        }
        loop {
            // Advance every cursor past tombstoned entries, then take the
            // globally smallest key (sources are key-disjoint: no ties).
            let mut best: Option<(usize, K)> = None;
            for (c, cur) in cursors.iter_mut().enumerate() {
                while cur.pos < cur.end && cur.dead.is_some_and(|d| d[cur.pos]) {
                    cur.pos += 1;
                }
                if cur.pos < cur.end {
                    let k = cur.keys[cur.pos];
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((c, k));
                    }
                }
            }
            let Some((c, k)) = best else { break };
            f(k, cursors[c].payloads[cursors[c].pos]);
            cursors[c].pos += 1;
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Learned }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_index_answers_nothing() {
        let idx = DynamicPgm::<u64>::new();
        assert_eq!(idx.len(), 0);
        assert!(idx.is_empty());
        assert_eq!(idx.get(7), None);
        assert_eq!(idx.lower_bound_entry(0), None);
        assert_eq!(idx.range_sum(0, u64::MAX), 0);
    }

    #[test]
    fn inserts_flush_into_geometric_runs() {
        let mut idx = DynamicPgm::new();
        for i in 0..10_000u64 {
            idx.insert(splitmix(i), i);
        }
        assert_eq!(idx.len(), 10_000);
        // Logarithmic method: run count stays O(log(n/B)).
        assert!(idx.num_runs() <= 12, "too many runs: {}", idx.num_runs());
        for i in (0..10_000u64).step_by(61) {
            assert_eq!(idx.get(splitmix(i)), Some(i));
        }
    }

    #[test]
    fn overwrite_returns_previous_payload() {
        let mut idx = DynamicPgm::new();
        // Push enough that the key lands in a merged run, not the buffer.
        for i in 0..1_000u64 {
            idx.insert(i, i);
        }
        assert_eq!(idx.insert(5, 999), Some(5));
        assert_eq!(idx.get(5), Some(999));
        assert_eq!(idx.len(), 1_000);
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let mut idx = DynamicPgm::new();
        let mut oracle = BTreeMap::new();
        for i in 0..30_000u64 {
            let k = splitmix(i) % 8_000;
            let v = splitmix(i ^ 0xabcd);
            assert_eq!(idx.insert(k, v), oracle.insert(k, v), "insert #{i}");
        }
        assert_eq!(idx.len(), oracle.len());
        for k in 0..8_000u64 {
            assert_eq!(idx.get(k), oracle.get(&k).copied(), "get {k}");
        }
    }

    #[test]
    fn lower_bound_scans_all_runs() {
        let mut idx = DynamicPgm::new();
        let mut oracle = BTreeMap::new();
        for i in 0..5_000u64 {
            let k = splitmix(i) % 1_000_000;
            idx.insert(k, i);
            oracle.insert(k, i);
        }
        for probe in (0..1_001_000u64).step_by(997) {
            let expect = oracle.range(probe..).next().map(|(&k, &v)| (k, v));
            assert_eq!(idx.lower_bound_entry(probe), expect, "lb {probe}");
        }
    }

    #[test]
    fn range_sum_matches_oracle() {
        let mut idx = DynamicPgm::new();
        let mut oracle = BTreeMap::new();
        for i in 0..8_000u64 {
            let k = splitmix(i) % 100_000;
            idx.insert(k, i);
            oracle.insert(k, i);
        }
        for i in 0..40u64 {
            let lo = splitmix(i * 31) % 100_000;
            let hi = lo + splitmix(i * 17) % 30_000;
            let expect: u64 = oracle.range(lo..hi).fold(0u64, |a, (_, &v)| a.wrapping_add(v));
            assert_eq!(idx.range_sum(lo, hi), expect, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn bulk_load_places_single_run() {
        let keys: Vec<u64> = (0..50_000).map(|i| i * 3).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 1).collect();
        let idx = DynamicPgm::bulk_load(&keys, &payloads);
        assert_eq!(idx.len(), keys.len());
        assert_eq!(idx.num_runs(), 1);
        assert_eq!(idx.get(300), Some(301));
        assert_eq!(idx.get(301), None);
        assert_eq!(idx.lower_bound_entry(301), Some((303, 304)));
    }

    #[test]
    fn bulk_then_insert_keeps_run_count_logarithmic() {
        let keys: Vec<u64> = (0..100_000).map(|i| i * 2).collect();
        let payloads = vec![1u64; keys.len()];
        let mut idx = DynamicPgm::bulk_load(&keys, &payloads);
        for i in 0..20_000u64 {
            idx.insert(i * 2 + 1, 1);
        }
        assert_eq!(idx.len(), 120_000);
        assert!(idx.num_runs() <= 14, "run blowup: {}", idx.num_runs());
        assert_eq!(idx.range_sum(0, 100), 100);
    }

    #[test]
    fn write_amplification_is_logarithmic() {
        let mut idx = DynamicPgm::new();
        let n = 100_000u64;
        for i in 0..n {
            idx.insert(splitmix(i), i);
        }
        let amp = idx.merged_keys() as f64 / n as f64;
        // Bentley–Saxe moves each key O(log(n/B)) times; with B=128 and
        // n=100k that is ~log2(781) ≈ 10.
        assert!(amp < 16.0, "write amplification too high: {amp}");
    }

    #[test]
    fn size_bytes_includes_runs_and_models() {
        let keys: Vec<u64> = (0..50_000).map(|i| i * 7).collect();
        let payloads = vec![0u64; keys.len()];
        let idx = DynamicPgm::bulk_load(&keys, &payloads);
        assert!(idx.size_bytes() >= 50_000 * 16, "must count owned data");
    }

    #[test]
    fn u32_keys_supported() {
        let mut idx = DynamicPgm::<u32>::new();
        for i in 0..2_000u32 {
            idx.insert(i.wrapping_mul(2654435761) % 65_536, i as u64);
        }
        let mut oracle = BTreeMap::new();
        for i in 0..2_000u32 {
            oracle.insert(i.wrapping_mul(2654435761) % 65_536, i as u64);
        }
        assert_eq!(idx.len(), oracle.len());
        for k in (0..65_536u32).step_by(111) {
            assert_eq!(idx.get(k), oracle.get(&k).copied());
        }
    }
    #[test]
    fn remove_tombstones_and_merge_reclaims() {
        let keys: Vec<u64> = (0..50_000).map(|i| i * 2).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 1).collect();
        let mut idx = DynamicPgm::bulk_load(&keys, &payloads);
        for i in 0..25_000u64 {
            assert_eq!(idx.remove(i * 4), Some(i * 4 + 1), "remove {i}");
        }
        assert_eq!(idx.len(), 25_000);
        assert_eq!(idx.get(0), None);
        assert_eq!(idx.get(2), Some(3));
        // Lower bound skips tombstones.
        assert_eq!(idx.lower_bound_entry(0), Some((2, 3)));
        // Inserts trigger merges that drop the dead entries; afterwards
        // everything still answers correctly.
        for i in 0..10_000u64 {
            idx.insert(1_000_000 + i, i);
        }
        assert_eq!(idx.len(), 35_000);
        assert_eq!(idx.get(4), None);
        assert_eq!(idx.range_sum(0, 10), 3 + 7); // keys 2 and 6 alive
    }

    #[test]
    fn removed_key_revives_with_new_payload() {
        let keys: Vec<u64> = (0..2_000).map(|i| i * 3).collect();
        let payloads = vec![5u64; keys.len()];
        let mut idx = DynamicPgm::bulk_load(&keys, &payloads);
        assert_eq!(idx.remove(30), Some(5));
        assert_eq!(idx.get(30), None);
        assert_eq!(idx.insert(30, 99), None, "revive counts as fresh insert");
        assert_eq!(idx.get(30), Some(99));
        assert_eq!(idx.len(), 2_000);
        assert_eq!(idx.remove(31), None, "absent key");
    }

    #[test]
    fn for_each_in_merges_runs_and_skips_tombstones() {
        let mut idx = DynamicPgm::new();
        let mut oracle = BTreeMap::new();
        // Interleave inserts and removes so entries live in the buffer and
        // several runs, with tombstones scattered through the runs.
        for i in 0..20_000u64 {
            let k = splitmix(i) % 50_000;
            idx.insert(k, i);
            oracle.insert(k, i);
            if i % 3 == 0 {
                let dk = splitmix(i ^ 0x77) % 50_000;
                assert_eq!(idx.remove(dk), oracle.remove(&dk), "remove {dk}");
            }
        }
        for i in 0..30u64 {
            let lo = splitmix(i * 13) % 50_000;
            let hi = lo + splitmix(i * 29) % 20_000;
            let mut got = Vec::new();
            idx.for_each_in(lo, hi, &mut |k, v| got.push((k, v)));
            let want: Vec<(u64, u64)> = oracle.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "window [{lo}, {hi})");
        }
        // Full-range scan, the write-behind drain shape.
        let mut got = Vec::new();
        idx.for_each_in(0, u64::MAX, &mut |k, v| got.push((k, v)));
        let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want);
        // Empty and inverted windows visit nothing.
        idx.for_each_in(10, 10, &mut |_, _| panic!("empty window"));
        idx.for_each_in(20, 10, &mut |_, _| panic!("inverted window"));
    }

    #[test]
    fn compact_reclaims_tombstones_and_shrinks() {
        let keys: Vec<u64> = (0..60_000).map(|i| i * 2).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 1).collect();
        let mut idx = DynamicPgm::bulk_load(&keys, &payloads);
        for i in 0..30_000u64 {
            idx.remove(i * 4);
        }
        // Fragment the run structure with fresh inserts.
        for i in 0..5_000u64 {
            idx.insert(1_000_000 + i * 2, i);
        }
        let before = idx.size_bytes();
        idx.compact();
        assert_eq!(idx.num_runs(), 1, "compaction leaves one run");
        assert!(idx.size_bytes() < before, "compaction must shrink");
        assert_eq!(idx.len(), 35_000);
        // Everything still answers correctly.
        assert_eq!(idx.get(0), None);
        assert_eq!(idx.get(2), Some(3));
        assert_eq!(idx.get(1_000_000), Some(0));
        assert_eq!(idx.lower_bound_entry(0), Some((2, 3)));
    }
}
