//! # sosd-pgm
//!
//! The Piecewise Geometric Model index (Ferragina & Vinciguerra, VLDB 2020),
//! Section 3.3 of the paper.
//!
//! A PGM index is built *bottom-up*: an optimal ε-bounded piecewise linear
//! regression over the data ([`pla`], the one-pass convex-hull algorithm of
//! O'Rourke / Xie et al. — each regression uses the fewest possible
//! segments), then recursively another ε-bounded regression over the
//! segments' first keys, until a single segment remains. Lookups descend the
//! levels, searching a `2ε`-wide window of segment keys per level — the
//! inter-level searching that the paper identifies as PGM's cost relative to
//! RMI's direct indexing.

pub mod dynamic;
pub mod pgm;
pub mod pla;

pub use dynamic::DynamicPgm;
pub use pgm::{PgmBuilder, PgmIndex};
pub use pla::{fit_pla, PlaSegment};
