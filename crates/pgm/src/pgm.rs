//! The multi-level PGM index built on [`crate::pla`].

use crate::pla::{fit_pla, PlaSegment};
use sosd_core::trace::addr_of_index;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// Default ε for the internal (recursive) levels, matching the reference
/// implementation's `EpsilonRecursive`.
pub const DEFAULT_EPS_INTERNAL: u64 = 4;

/// A segment's runtime model: an anchored line plus its measured error
/// envelope. 24 bytes.
#[derive(Debug, Clone, Copy)]
struct SegModel {
    slope: f64,
    y0: f64,
    /// Max overestimation `max(pred - y)` over the segment's envelope set.
    err_over: u32,
    /// Max underestimation, including the consecutive-pair gap terms
    /// `y_i - pred(x_{i-1})` that cover absent keys falling inside large
    /// rank gaps (duplicate runs).
    err_under: u32,
}

/// One level of the PGM: parallel arrays of segment first-keys and models.
#[derive(Debug, Clone)]
struct Level<K: Key> {
    first_keys: Vec<K>,
    models: Vec<SegModel>,
    /// Largest target value of this level; predictions clamp into
    /// `[0, max_target]` (monotone, and keeps error envelopes representable
    /// even when a segment is extrapolated toward a distant outlier).
    max_target: f64,
}

impl<K: Key> Level<K> {
    /// Build a level from fitted segments over `(xs, ys)` pairs, clamping
    /// slopes non-negative and measuring the boundary-inclusive envelope.
    fn from_segments(segments: &[PlaSegment<K>], xs: &[K], ys: &[u64]) -> Level<K> {
        let mut first_keys = Vec::with_capacity(segments.len());
        let mut models = Vec::with_capacity(segments.len());
        let m = xs.len();
        let max_target = ys[m - 1] as f64;
        for seg in segments {
            let slope = seg.slope.max(0.0);
            let x0 = seg.first_key.to_u64();
            let pred_at = |i: usize| -> f64 {
                let dx = (xs[i].to_u64() as i128 - x0 as i128) as f64;
                (seg.y0 + slope * dx).clamp(0.0, max_target)
            };
            // Envelope over the segment's own pairs plus the next segment's
            // first pair (the sandwich argument for absent keys needs it).
            // The high side additionally covers rank gaps between
            // consecutive pairs: an absent key just above x_{i-1} has lower
            // bound ys[i] while the model predicts ~pred(x_{i-1}).
            let hi_i = seg.end.min(m - 1);
            let mut err_over = 0f64;
            let mut err_under = ys[seg.start] as f64 - pred_at(seg.start);
            #[allow(clippy::needless_range_loop)] // indexes ys at both i and i-1
            for i in seg.start..=hi_i {
                let pred = pred_at(i);
                err_over = err_over.max(pred - ys[i] as f64);
                if i > seg.start {
                    err_under = err_under.max(ys[i] as f64 - pred_at(i - 1));
                }
            }
            first_keys.push(seg.first_key);
            models.push(SegModel {
                slope,
                y0: seg.y0,
                err_over: err_over.max(0.0).ceil().min(u32::MAX as f64) as u32,
                err_under: err_under.max(0.0).ceil().min(u32::MAX as f64) as u32,
            });
        }
        Level { first_keys, models, max_target }
    }

    #[inline]
    fn len(&self) -> usize {
        self.first_keys.len()
    }

    #[inline]
    fn predict(&self, seg: usize, key: K) -> f64 {
        let m = &self.models[seg];
        let dx = key.to_u64() as i128 - self.first_keys[seg].to_u64() as i128;
        (m.y0 + m.slope * dx as f64).clamp(0.0, self.max_target)
    }

    fn size_bytes(&self) -> usize {
        self.first_keys.len() * std::mem::size_of::<K>()
            + self.models.len() * std::mem::size_of::<SegModel>()
    }

    #[inline]
    fn errs(&self, seg: usize) -> (usize, usize) {
        let m = &self.models[seg];
        (m.err_over as usize, m.err_under as usize)
    }
}

/// The PGM index (Section 3.3): recursive ε-bounded piecewise linear models.
#[derive(Debug, Clone)]
pub struct PgmIndex<K: Key> {
    /// `levels[0]` predicts data positions; the last level has one segment.
    levels: Vec<Level<K>>,
    n: usize,
    /// Largest key in the data. Models are trained on first-occurrence
    /// positions, so a probe beyond every key needs its bound stretched to
    /// `n` by hand when the tail contains duplicates.
    max_key: K,
}

impl<K: Key> PgmIndex<K> {
    /// Build with leaf-level error `eps` and internal-level error
    /// `eps_internal`.
    pub fn build(data: &SortedData<K>, eps: u64, eps_internal: u64) -> Result<Self, BuildError> {
        if eps == 0 || eps > (1 << 24) {
            return Err(BuildError::InvalidConfig(format!("eps must be in 1..=2^24, got {eps}")));
        }
        if eps_internal == 0 || eps_internal > (1 << 24) {
            return Err(BuildError::InvalidConfig(format!(
                "eps_internal must be in 1..=2^24, got {eps_internal}"
            )));
        }
        // Distinct keys with their first-occurrence positions: a PLA needs
        // strictly increasing x, and lower-bound semantics want the first
        // occurrence anyway.
        let keys = data.keys();
        let mut xs: Vec<K> = Vec::new();
        let mut ys: Vec<u64> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if xs.last() != Some(&k) {
                xs.push(k);
                ys.push(i as u64);
            }
        }

        let mut levels = Vec::new();
        let segments = fit_pla(&xs, &ys, eps);
        levels.push(Level::from_segments(&segments, &xs, &ys));

        // Recurse over segment first-keys until one segment remains.
        while levels.last().expect("non-empty").len() > 1 {
            if levels.len() > 64 {
                return Err(BuildError::Unbuildable("PGM recursion failed to converge".into()));
            }
            let below = levels.last().expect("non-empty");
            let xs_up: Vec<K> = below.first_keys.clone();
            let ys_up: Vec<u64> = (0..below.len() as u64).collect();
            let segs_up = fit_pla(&xs_up, &ys_up, eps_internal);
            levels.push(Level::from_segments(&segs_up, &xs_up, &ys_up));
        }

        Ok(PgmIndex { levels, n: data.len(), max_key: data.max_key() })
    }

    /// Number of levels (root included).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Number of leaf-level segments.
    pub fn num_segments(&self) -> usize {
        self.levels[0].len()
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let top = self.levels.last().expect("non-empty");
        debug_assert_eq!(top.len(), 1);
        tracer.read(addr_of_index(&top.models, 0), std::mem::size_of::<SegModel>());
        tracer.instr(8);
        let mut pred = top.predict(0, key);
        let (mut err_over, mut err_under) = top.errs(0);

        // Descend: at each step `pred` estimates the floor-segment index in
        // the level below; search a (2ε+3)-wide window of its first keys.
        for l in (0..self.levels.len() - 1).rev() {
            let below = &self.levels[l];
            let cnt = below.len();
            let lo_w = {
                let f = pred - err_over as f64 - 2.0;
                if f <= 0.0 {
                    0
                } else {
                    (f as usize).min(cnt - 1)
                }
            };
            let hi_w = {
                let f = pred + err_under as f64 + 2.0;
                if f <= 0.0 {
                    0
                } else {
                    (f as usize).min(cnt - 1)
                }
            };
            let seg = floor_in_window(&below.first_keys, key, lo_w, hi_w, tracer);
            tracer.read(addr_of_index(&below.models, seg), std::mem::size_of::<SegModel>());
            tracer.instr(8);
            pred = below.predict(seg, key);
            (err_over, err_under) = below.errs(seg);
        }

        let lo = {
            let f = pred - err_over as f64 - 1.0;
            if f <= 0.0 {
                0
            } else {
                (f as usize).min(self.n)
            }
        };
        let hi = if key > self.max_key {
            // Past every key: LB is n, which first-occurrence training
            // positions cannot see when the tail has duplicates.
            self.n
        } else {
            let f = pred + err_under as f64 + 2.0;
            if f <= 0.0 {
                0
            } else {
                (f as usize).min(self.n)
            }
        };
        SearchBound { lo, hi: hi.max(lo) }
    }
}

/// Rightmost index in `[lo_w, hi_w]` whose key is `<= x`, assuming it exists
/// or that `lo_w` is an acceptable fallback (x below every key). Traced
/// binary search over the inclusive window.
#[inline]
fn floor_in_window<K: Key, T: Tracer>(
    first_keys: &[K],
    x: K,
    lo_w: usize,
    hi_w: usize,
    tracer: &mut T,
) -> usize {
    let site = first_keys.as_ptr() as usize;
    let mut lo = lo_w;
    let mut hi = hi_w + 1; // exclusive
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        tracer.read(addr_of_index(first_keys, mid), std::mem::size_of::<K>());
        tracer.instr(5);
        let le = first_keys[mid] <= x;
        tracer.branch(site, le);
        if le {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // `lo` is now one past the rightmost key <= x within the window.
    lo.saturating_sub(1).max(lo_w)
}

impl<K: Key> Index<K> for PgmIndex<K> {
    fn name(&self) -> &'static str {
        "PGM"
    }

    fn size_bytes(&self) -> usize {
        self.levels.iter().map(Level::size_bytes).sum()
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Learned }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

/// Builder for [`PgmIndex`]: sweep `eps` for the Figure 7 size axis.
#[derive(Debug, Clone)]
pub struct PgmBuilder {
    /// Leaf-level error bound (the paper's tuning knob).
    pub eps: u64,
    /// Internal-level error bound.
    pub eps_internal: u64,
}

impl Default for PgmBuilder {
    fn default() -> Self {
        PgmBuilder { eps: 64, eps_internal: DEFAULT_EPS_INTERNAL }
    }
}

impl PgmBuilder {
    /// Ten-configuration sweep from tight to loose error bounds.
    pub fn size_sweep() -> Vec<PgmBuilder> {
        [4u64, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
            .into_iter()
            .map(|eps| PgmBuilder { eps, eps_internal: DEFAULT_EPS_INTERNAL })
            .collect()
    }
}

impl<K: Key> IndexBuilder<K> for PgmBuilder {
    type Output = PgmIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        PgmIndex::build(data, self.eps, self.eps_internal)
    }

    fn describe(&self) -> String {
        format!("PGM[eps={},eps_i={}]", self.eps, self.eps_internal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::util::XorShift64;

    fn validity_probes(data: &SortedData<u64>) -> Vec<u64> {
        let mut probes: Vec<u64> = data.keys().to_vec();
        probes.extend(data.keys().iter().map(|&k| k.saturating_add(1)));
        probes.extend(data.keys().iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, 1, u64::MAX, u64::MAX - 1, u64::MAX / 2]);
        probes
    }

    fn check_validity(keys: Vec<u64>, eps: u64) {
        let data = SortedData::new(keys).unwrap();
        let pgm = PgmIndex::build(&data, eps, DEFAULT_EPS_INTERNAL).unwrap();
        for x in validity_probes(&data) {
            let b = pgm.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "eps={eps} x={x} bound={b:?} lb={lb}");
        }
    }

    #[test]
    fn valid_on_linear_data() {
        check_validity((0..5000u64).map(|i| i * 3 + 7).collect(), 8);
    }

    #[test]
    fn valid_on_random_gaps_many_eps() {
        let mut rng = XorShift64::new(3);
        let mut keys = Vec::new();
        let mut x = 0u64;
        for _ in 0..20_000 {
            let shift = 1 + rng.next_below(12);
            x += 1 + rng.next_below(1 << shift);
            keys.push(x);
        }
        for eps in [4u64, 16, 64, 256] {
            check_validity(keys.clone(), eps);
        }
    }

    #[test]
    fn valid_with_duplicates() {
        let mut keys = vec![7u64; 500];
        keys.extend(vec![9u64; 500]);
        keys.extend((10..2000u64).map(|i| i * 5));
        keys.sort_unstable();
        check_validity(keys, 16);
    }

    #[test]
    fn valid_with_extreme_outliers() {
        let mut keys: Vec<u64> = (0..3000).map(|i| i * 7 + 1).collect();
        keys.extend([u64::MAX - 100, u64::MAX - 50, u64::MAX - 1]);
        check_validity(keys, 8);
    }

    #[test]
    fn valid_on_tiny_datasets() {
        check_validity(vec![42], 4);
        check_validity(vec![1, 2], 4);
        check_validity(vec![5, 5, 5], 4);
    }

    #[test]
    fn bounds_respect_epsilon_scale() {
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * 13).collect();
        let data = SortedData::new(keys).unwrap();
        let pgm = PgmIndex::build(&data, 16, 4).unwrap();
        let worst =
            data.keys().iter().step_by(101).map(|&k| pgm.search_bound(k).len()).max().unwrap();
        // Bound width is at most 2*eps plus the fixed slack.
        assert!(worst <= 2 * 16 + 4, "worst bound {worst}");
    }

    #[test]
    fn smaller_eps_means_bigger_index() {
        let mut rng = XorShift64::new(9);
        let mut keys = Vec::new();
        let mut x = 0u64;
        for _ in 0..50_000 {
            x += 1 + rng.next_below(4000);
            keys.push(x);
        }
        let data = SortedData::new(keys).unwrap();
        let tight = PgmIndex::build(&data, 4, 4).unwrap();
        let loose = PgmIndex::build(&data, 256, 4).unwrap();
        assert!(
            Index::<u64>::size_bytes(&tight) > 4 * Index::<u64>::size_bytes(&loose),
            "tight={} loose={}",
            Index::<u64>::size_bytes(&tight),
            Index::<u64>::size_bytes(&loose)
        );
        assert!(tight.num_segments() > loose.num_segments());
    }

    #[test]
    fn top_level_is_single_segment() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * i % 1_000_000_007).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let data = SortedData::new(keys).unwrap();
        let pgm = PgmIndex::build(&data, 32, 4).unwrap();
        assert!(pgm.height() >= 2);
    }

    #[test]
    fn rejects_bad_configs() {
        let data = SortedData::new(vec![1u64, 2, 3]).unwrap();
        assert!(PgmIndex::build(&data, 0, 4).is_err());
        assert!(PgmIndex::build(&data, 4, 0).is_err());
        assert!(PgmIndex::build(&data, 1 << 25, 4).is_err());
    }

    #[test]
    fn works_for_u32_keys() {
        let keys: Vec<u32> = (0..5000u32).map(|i| i * 11 + 3).collect();
        let data = SortedData::new(keys).unwrap();
        let pgm = PgmIndex::build(&data, 8, 4).unwrap();
        for &k in data.keys() {
            for probe in [k.saturating_sub(1), k, k.saturating_add(1)] {
                assert!(pgm.search_bound(probe).contains(data.lower_bound(probe)));
            }
        }
    }

    #[test]
    fn traced_lookup_reads_one_model_per_level() {
        use sosd_core::CountingTracer;
        let mut rng = XorShift64::new(11);
        let mut keys = Vec::new();
        let mut x = 0u64;
        for _ in 0..100_000 {
            let shift = 1 + rng.next_below(10);
            x += 1 + rng.next_below(1 << shift);
            keys.push(x);
        }
        let data = SortedData::new(keys).unwrap();
        let pgm = PgmIndex::build(&data, 16, 4).unwrap();
        let mut t = CountingTracer::default();
        pgm.search_bound_traced(data.key(50_000), &mut t);
        // At least one model read per level plus window-search key reads.
        assert!(t.reads as usize >= pgm.height());
        assert!(t.branches > 0, "PGM descent requires searching, unlike RMI");
    }
}
