//! ART node representations: Leaf plus the four adaptive inner node sizes.

/// A tree node: single-value leaf or adaptive inner node.
#[derive(Debug)]
pub enum Node {
    /// A full key (as `u64`) and its sampled-slot value.
    Leaf { key: u64, slot: u32 },
    /// An inner node with a compressed path and adaptive fanout. Boxed so a
    /// leaf costs 24 bytes instead of the largest inner layout.
    Inner(Box<Inner>),
}

/// Inner node: path-compressed prefix, subtree maximum slot, and children.
#[derive(Debug)]
pub struct Inner {
    /// Compressed path bytes between the parent's branch byte and this
    /// node's branch level (pessimistic path compression: full bytes).
    pub prefix: Vec<u8>,
    /// Maximum slot value in this subtree (for O(1) predecessor fallback).
    pub max_slot: u32,
    /// The adaptively-sized child array.
    pub children: Children,
}

/// The four adaptive node layouts of the ART paper.
#[derive(Debug)]
pub enum Children {
    /// Up to 4 (byte, child) pairs, sorted by byte.
    N4 {
        /// Branch bytes (first `len` entries valid).
        bytes: [u8; 4],
        /// Children, parallel to `bytes`.
        ptrs: [Option<Box<Node>>; 4],
        /// Number of occupied slots.
        len: u8,
    },
    /// Up to 16 (byte, child) pairs, sorted by byte (SIMD-searchable layout).
    N16 {
        /// Branch bytes (first `len` entries valid).
        bytes: [u8; 16],
        /// Children, parallel to `bytes`.
        ptrs: [Option<Box<Node>>; 16],
        /// Number of occupied slots.
        len: u8,
    },
    /// 256-entry indirection table into up to 48 children.
    N48 {
        /// `index[b]` = child slot + 1, or 0 when absent.
        index: Box<[u8; 256]>,
        /// Child storage addressed through `index`.
        ptrs: Box<[Option<Box<Node>>; 48]>,
        /// Number of occupied slots.
        len: u8,
    },
    /// Direct 256-wide child array.
    N256 {
        /// One optional child per possible byte.
        ptrs: Box<[Option<Box<Node>>; 256]>,
    },
}

impl Node {
    /// Maximum slot stored in this subtree.
    pub fn max_slot(&self) -> u32 {
        match self {
            Node::Leaf { slot, .. } => *slot,
            Node::Inner(inner) => inner.max_slot,
        }
    }

    /// Approximate heap size of this subtree in bytes, mirroring the
    /// allocation sizes of each adaptive layout.
    pub fn size_bytes(&self) -> usize {
        match self {
            Node::Leaf { .. } => std::mem::size_of::<Node>(),
            Node::Inner(inner) => {
                let own = std::mem::size_of::<Node>()
                    + std::mem::size_of::<Inner>()
                    + inner.prefix.capacity();
                let extra = match &inner.children {
                    Children::N4 { .. } | Children::N16 { .. } => 0,
                    Children::N48 { .. } => 256 + 48 * std::mem::size_of::<Option<Box<Node>>>(),
                    Children::N256 { .. } => 256 * std::mem::size_of::<Option<Box<Node>>>(),
                };
                own + extra + inner.children.iter().map(|(_, c)| c.size_bytes()).sum::<usize>()
            }
        }
    }
}

impl Children {
    /// Build the appropriately-sized layout from sorted (byte, child) pairs.
    pub fn from_sorted(pairs: Vec<(u8, Box<Node>)>) -> Children {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let n = pairs.len();
        if n <= 4 {
            let mut bytes = [0u8; 4];
            let mut ptrs: [Option<Box<Node>>; 4] = Default::default();
            for (i, (b, c)) in pairs.into_iter().enumerate() {
                bytes[i] = b;
                ptrs[i] = Some(c);
            }
            Children::N4 { bytes, ptrs, len: n as u8 }
        } else if n <= 16 {
            let mut bytes = [0u8; 16];
            let mut ptrs: [Option<Box<Node>>; 16] = Default::default();
            for (i, (b, c)) in pairs.into_iter().enumerate() {
                bytes[i] = b;
                ptrs[i] = Some(c);
            }
            Children::N16 { bytes, ptrs, len: n as u8 }
        } else if n <= 48 {
            let mut index = Box::new([0u8; 256]);
            let mut ptrs: Box<[Option<Box<Node>>; 48]> =
                vec![(); 48].into_iter().map(|_| None).collect::<Vec<_>>().try_into().unwrap();
            for (i, (b, c)) in pairs.into_iter().enumerate() {
                index[b as usize] = i as u8 + 1;
                ptrs[i] = Some(c);
            }
            Children::N48 { index, ptrs, len: n as u8 }
        } else {
            let mut ptrs: Box<[Option<Box<Node>>; 256]> =
                vec![(); 256].into_iter().map(|_| None).collect::<Vec<_>>().try_into().unwrap();
            for (b, c) in pairs {
                ptrs[b as usize] = Some(c);
            }
            Children::N256 { ptrs }
        }
    }

    /// Child whose branch byte equals `b`.
    pub fn get(&self, b: u8) -> Option<&Node> {
        match self {
            Children::N4 { bytes, ptrs, len } => {
                (0..*len as usize).find(|&i| bytes[i] == b).and_then(|i| ptrs[i].as_deref())
            }
            Children::N16 { bytes, ptrs, len } => {
                (0..*len as usize).find(|&i| bytes[i] == b).and_then(|i| ptrs[i].as_deref())
            }
            Children::N48 { index, ptrs, .. } => {
                let slot = index[b as usize];
                if slot == 0 {
                    None
                } else {
                    ptrs[slot as usize - 1].as_deref()
                }
            }
            Children::N256 { ptrs } => ptrs[b as usize].as_deref(),
        }
    }

    /// Child with the greatest branch byte strictly less than `b`.
    pub fn predecessor(&self, b: u8) -> Option<&Node> {
        match self {
            Children::N4 { bytes, ptrs, len } => {
                let cnt = bytes[..*len as usize].partition_point(|&x| x < b);
                cnt.checked_sub(1).and_then(|i| ptrs[i].as_deref())
            }
            Children::N16 { bytes, ptrs, len } => {
                let cnt = bytes[..*len as usize].partition_point(|&x| x < b);
                cnt.checked_sub(1).and_then(|i| ptrs[i].as_deref())
            }
            Children::N48 { index, ptrs, .. } => (0..b as usize)
                .rev()
                .find(|&byte| index[byte] != 0)
                .and_then(|byte| ptrs[index[byte] as usize - 1].as_deref()),
            Children::N256 { ptrs } => (0..b as usize).rev().find_map(|byte| ptrs[byte].as_deref()),
        }
    }

    /// Iterate (byte, child) pairs in byte order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u8, &Node)> + '_> {
        match self {
            Children::N4 { bytes, ptrs, len } => Box::new(
                (0..*len as usize).filter_map(move |i| ptrs[i].as_deref().map(|c| (bytes[i], c))),
            ),
            Children::N16 { bytes, ptrs, len } => Box::new(
                (0..*len as usize).filter_map(move |i| ptrs[i].as_deref().map(|c| (bytes[i], c))),
            ),
            Children::N48 { index, ptrs, .. } => Box::new((0..256usize).filter_map(move |b| {
                let slot = index[b];
                if slot == 0 {
                    None
                } else {
                    ptrs[slot as usize - 1].as_deref().map(|c| (b as u8, c))
                }
            })),
            Children::N256 { ptrs } => Box::new(
                (0..256usize).filter_map(move |b| ptrs[b].as_deref().map(|c| (b as u8, c))),
            ),
        }
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        match self {
            Children::N4 { len, .. } | Children::N16 { len, .. } | Children::N48 { len, .. } => {
                *len as usize
            }
            Children::N256 { ptrs } => ptrs.iter().filter(|p| p.is_some()).count(),
        }
    }

    /// True when the node has no children (never happens post-build).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(key: u64, slot: u32) -> Box<Node> {
        Box::new(Node::Leaf { key, slot })
    }

    fn make(pairs: Vec<u8>) -> Children {
        Children::from_sorted(
            pairs.into_iter().enumerate().map(|(i, b)| (b, leaf(b as u64, i as u32))).collect(),
        )
    }

    #[test]
    fn layouts_chosen_by_count() {
        assert!(matches!(make((0..3).collect()), Children::N4 { .. }));
        assert!(matches!(make((0..10).collect()), Children::N16 { .. }));
        assert!(matches!(make((0..40).collect()), Children::N48 { .. }));
        assert!(matches!(make((0..200).collect()), Children::N256 { .. }));
    }

    #[test]
    fn get_and_predecessor_work_across_layouts() {
        for count in [3usize, 10, 40, 200] {
            let bytes: Vec<u8> = (0..count as u8).map(|i| i * (255 / count as u8)).collect();
            let ch = Children::from_sorted(
                bytes.iter().map(|&b| (b, leaf(b as u64, b as u32))).collect(),
            );
            for &b in &bytes {
                assert!(ch.get(b).is_some(), "count={count} byte={b}");
                assert!(ch.get(b.wrapping_add(1)).is_none() || bytes.contains(&(b + 1)));
            }
            // Predecessor of the smallest byte is None.
            assert!(ch.predecessor(bytes[0]).is_none());
            // Predecessor just above a byte returns that byte's child.
            for w in bytes.windows(2) {
                let pred = ch.predecessor(w[1]).expect("has predecessor");
                match pred {
                    Node::Leaf { key, .. } => assert_eq!(*key, w[0] as u64),
                    _ => panic!("expected leaf"),
                }
            }
        }
    }

    #[test]
    fn iter_is_in_byte_order() {
        let bytes: Vec<u8> = (0..60).map(|i| i * 4).collect();
        let ch =
            Children::from_sorted(bytes.iter().map(|&b| (b, leaf(b as u64, b as u32))).collect());
        let order: Vec<u8> = ch.iter().map(|(b, _)| b).collect();
        assert_eq!(order, bytes);
    }

    #[test]
    fn max_slot_propagates() {
        let n = Node::Inner(Box::new(Inner {
            prefix: vec![],
            max_slot: 7,
            children: make(vec![1, 2]),
        }));
        assert_eq!(n.max_slot(), 7);
    }
}
