//! The ART index: bulk build from sorted data and floor-search lookups.

use crate::node::{Children, Inner, Node};
use sosd_core::stride::Stride;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, NullTracer, SearchBound,
    SortedData, Tracer,
};

/// Outcome of a floor descent in a subtree.
enum Floor {
    /// Greatest slot whose key is strictly less than the probe.
    Found(u32),
    /// Every key in the subtree is `>= probe`.
    AllGreater,
}

/// Adaptive radix tree over every `stride`-th key.
pub struct ArtIndex<K: Key> {
    root: Box<Node>,
    geometry: Stride,
    size: usize,
    key_len: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Key> ArtIndex<K> {
    /// Build with the given sampling stride.
    pub fn build(data: &SortedData<K>, stride: usize) -> Result<Self, BuildError> {
        let geometry = Stride::new(stride, data.len());
        let sampled = geometry.sample(data.keys());
        // Radix trees cannot hold duplicate keys; keep the *last* slot of
        // each duplicate run, which is what the strict floor search needs.
        let mut keys: Vec<u64> = Vec::with_capacity(sampled.len());
        let mut slots: Vec<u32> = Vec::with_capacity(sampled.len());
        for (slot, k) in sampled.iter().enumerate() {
            let k = k.to_u64();
            if keys.last() == Some(&k) {
                *slots.last_mut().expect("non-empty") = slot as u32;
            } else {
                keys.push(k);
                slots.push(slot as u32);
            }
        }
        let key_len = (K::BITS / 8) as usize;
        let root = build_node(&keys, &slots, 8 - key_len, key_len);
        let size = root.size_bytes();
        Ok(ArtIndex { root, geometry, size, key_len, _marker: std::marker::PhantomData })
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        let x = key.to_u64();
        let bytes = x.to_be_bytes();
        let pred = match floor(&self.root, &bytes, x, 8 - self.key_len, tracer) {
            Floor::Found(slot) => Some(slot as usize),
            Floor::AllGreater => None,
        };
        self.geometry.bound_for_pred_slot(pred)
    }
}

/// Bulk-build a subtree over sorted unique keys. `depth` indexes into the
/// 8-byte big-endian representation (u32 keys start at byte 4).
#[allow(clippy::only_used_in_recursion)] // key_len is the recursion's fixed bound
fn build_node(keys: &[u64], slots: &[u32], depth: usize, key_len: usize) -> Box<Node> {
    debug_assert!(!keys.is_empty());
    if keys.len() == 1 {
        return Box::new(Node::Leaf { key: keys[0], slot: slots[0] });
    }
    // Longest common prefix from `depth`.
    let first = keys[0].to_be_bytes();
    let last = keys[keys.len() - 1].to_be_bytes();
    let mut lcp = 0usize;
    while depth + lcp < 8 && first[depth + lcp] == last[depth + lcp] {
        lcp += 1;
    }
    debug_assert!(depth + lcp < 8, "duplicate keys reached byte level 8");
    let branch_depth = depth + lcp;

    // Group children by the branch byte.
    let mut pairs: Vec<(u8, Box<Node>)> = Vec::new();
    let mut group_start = 0usize;
    while group_start < keys.len() {
        let b = keys[group_start].to_be_bytes()[branch_depth];
        let group_end = group_start
            + keys[group_start..].partition_point(|k| k.to_be_bytes()[branch_depth] == b);
        pairs.push((
            b,
            build_node(
                &keys[group_start..group_end],
                &slots[group_start..group_end],
                branch_depth + 1,
                key_len,
            ),
        ));
        group_start = group_end;
    }
    let max_slot = slots[slots.len() - 1];
    Box::new(Node::Inner(Box::new(Inner {
        prefix: first[depth..branch_depth].to_vec(),
        max_slot,
        children: Children::from_sorted(pairs),
    })))
}

/// Floor descent: greatest slot with key strictly less than `x`.
fn floor<T: Tracer>(node: &Node, bytes: &[u8; 8], x: u64, depth: usize, tracer: &mut T) -> Floor {
    tracer.read(node as *const Node as usize, 32);
    tracer.instr(6);
    match node {
        Node::Leaf { key, slot } => {
            let less = *key < x;
            tracer.branch(node as *const Node as usize, less);
            if less {
                Floor::Found(*slot)
            } else {
                Floor::AllGreater
            }
        }
        Node::Inner(inner) => {
            // Compare the compressed path.
            let mut d = depth;
            for &pb in &inner.prefix {
                tracer.instr(2);
                if bytes[d] != pb {
                    return if bytes[d] > pb {
                        // Entire subtree compares less than the probe.
                        Floor::Found(inner.max_slot)
                    } else {
                        Floor::AllGreater
                    };
                }
                d += 1;
            }
            let b = bytes[d];
            // Exact-branch descent first.
            if let Some(child) = inner.children.get(b) {
                tracer.branch(node as *const Node as usize, true);
                if let Floor::Found(slot) = floor(child, bytes, x, d + 1, tracer) {
                    return Floor::Found(slot);
                }
            } else {
                tracer.branch(node as *const Node as usize, false);
            }
            // Fall back to the greatest child branching below `b`.
            match inner.children.predecessor(b) {
                Some(child) => Floor::Found(child.max_slot()),
                None => Floor::AllGreater,
            }
        }
    }
}

impl<K: Key> Index<K> for ArtIndex<K> {
    fn name(&self) -> &'static str {
        "ART"
    }

    fn size_bytes(&self) -> usize {
        self.size
    }

    #[inline]
    fn search_bound(&self, key: K) -> SearchBound {
        self.bound_generic(key, &mut NullTracer)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Trie }
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }
}

// The tree owns all nodes via Box; nothing is shared or interiorly mutable.
unsafe impl<K: Key> Send for ArtIndex<K> {}
unsafe impl<K: Key> Sync for ArtIndex<K> {}

/// Builder for [`ArtIndex`].
#[derive(Debug, Clone)]
pub struct ArtBuilder {
    /// Index every `stride`-th key.
    pub stride: usize,
}

impl Default for ArtBuilder {
    fn default() -> Self {
        ArtBuilder { stride: 1 }
    }
}

impl ArtBuilder {
    /// Ten-configuration size sweep for Figure 7.
    pub fn size_sweep() -> Vec<ArtBuilder> {
        [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512]
            .into_iter()
            .map(|stride| ArtBuilder { stride })
            .collect()
    }
}

impl<K: Key> IndexBuilder<K> for ArtBuilder {
    type Output = ArtIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        ArtIndex::build(data, self.stride)
    }

    fn describe(&self) -> String {
        format!("ART[stride={}]", self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::util::XorShift64;
    use std::collections::BTreeMap;

    fn check_against_btreemap(keys: Vec<u64>, stride: usize) {
        let data = SortedData::new(keys.clone()).unwrap();
        let idx = ArtIndex::build(&data, stride).unwrap();
        // Oracle: strict predecessor among sampled keys via BTreeMap.
        let geometry = Stride::new(stride, keys.len());
        let sampled = geometry.sample(&keys);
        let mut oracle = BTreeMap::new();
        for (slot, &k) in sampled.iter().enumerate() {
            oracle.insert(k, slot); // later slots overwrite (keep-last)
        }
        let mut probes: Vec<u64> = keys.clone();
        probes.extend(keys.iter().map(|&k| k.saturating_add(1)));
        probes.extend(keys.iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, u64::MAX, u64::MAX / 3]);
        for x in probes {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            assert!(b.contains(lb), "stride={stride} x={x} bound={b:?} lb={lb}");
            // Cross-check the internal floor against the ordered map.
            let want = oracle.range(..x).next_back().map(|(_, &s)| s);
            let got = geometry.oracle_pred_slot(&keys, x);
            assert_eq!(want, got, "oracle disagreement at x={x}");
        }
    }

    #[test]
    fn valid_on_dense_keys() {
        check_against_btreemap((0..2000u64).collect(), 1);
        check_against_btreemap((0..2000u64).collect(), 7);
    }

    #[test]
    fn valid_on_spread_keys() {
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 0x12_3456_789A).collect();
        check_against_btreemap(keys, 1);
    }

    #[test]
    fn valid_on_random_keys() {
        let mut rng = XorShift64::new(77);
        let mut keys: Vec<u64> = (0..5000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        check_against_btreemap(keys.clone(), 1);
        check_against_btreemap(keys, 16);
    }

    #[test]
    fn valid_with_duplicates() {
        let mut keys = vec![7u64; 100];
        keys.extend(vec![9u64; 100]);
        keys.extend((10..500u64).map(|i| i * 3));
        keys.sort_unstable();
        check_against_btreemap(keys.clone(), 1);
        check_against_btreemap(keys, 4);
    }

    #[test]
    fn valid_with_clustered_prefixes() {
        // Keys sharing long prefixes exercise path compression.
        let mut keys: Vec<u64> = (0..500).map(|i| 0xAAAA_BBBB_0000_0000u64 + i).collect();
        keys.extend((0..500).map(|i| 0xAAAA_CCCC_0000_0000u64 + i * 7));
        keys.extend(0..500);
        keys.sort_unstable();
        check_against_btreemap(keys, 1);
    }

    #[test]
    fn valid_for_u32_keys() {
        let keys: Vec<u32> = (0..3000u32).map(|i| i * 91).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = ArtIndex::build(&data, 2).unwrap();
        for &k in data.keys() {
            for probe in [k.saturating_sub(1), k, k.saturating_add(1)] {
                let b = idx.search_bound(probe);
                assert!(b.contains(data.lower_bound(probe)), "probe={probe}");
            }
        }
    }

    #[test]
    fn node_growth_uses_all_layouts() {
        // 200 children at the root level forces N256; nested levels hit the
        // smaller layouts.
        let mut keys = Vec::new();
        for hi in 0..200u64 {
            for lo in 0..5u64 {
                keys.push((hi << 32) | lo);
            }
        }
        check_against_btreemap(keys, 1);
    }

    #[test]
    fn size_shrinks_with_stride() {
        let keys: Vec<u64> = (0..20_000u64).map(|i| i * 13).collect();
        let data = SortedData::new(keys).unwrap();
        let s1 = Index::<u64>::size_bytes(&ArtIndex::build(&data, 1).unwrap());
        let s32 = Index::<u64>::size_bytes(&ArtIndex::build(&data, 32).unwrap());
        assert!(s32 * 8 < s1, "s1={s1} s32={s32}");
    }

    #[test]
    fn traced_descent_reads_nodes() {
        use sosd_core::CountingTracer;
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 257).collect();
        let data = SortedData::new(keys).unwrap();
        let idx = ArtIndex::build(&data, 1).unwrap();
        let mut t = CountingTracer::default();
        idx.search_bound_traced(5_000 * 257, &mut t);
        assert!(t.reads >= 2 && t.reads <= 9, "descent depth: {} reads", t.reads);
    }
}
