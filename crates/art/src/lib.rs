//! # sosd-art
//!
//! The Adaptive Radix Tree (Leis, Kemper, Neumann, ICDE 2013), the paper's
//! trie baseline.
//!
//! ART indexes one key byte per level using adaptively sized nodes (Node4,
//! Node16, Node48, Node256) with path compression. Keys are fixed-width
//! big-endian integers, so lexicographic byte order equals numeric order and
//! ordered (floor) lookups work by trie descent with predecessor fallback.
//!
//! Like the other tree baselines, size/accuracy is traded by indexing every
//! `stride`-th key (Section 2.1); each subtree additionally stores its
//! maximum slot so a floor query resolves in a single root-to-leaf descent.

pub mod node;
pub mod tree;

pub use tree::{ArtBuilder, ArtIndex};
