//! Property tests for the FITing-Tree: the shrinking-cone error invariant,
//! static-index validity on arbitrary key multisets, and dynamic-tree
//! equivalence with `BTreeMap`.

use proptest::prelude::*;
use sosd_core::dynamic::{BulkLoad, DynamicOrderedIndex};
use sosd_core::{Index, SortedData};
use sosd_fiting::{fit_cone, DynamicFitingTree, FitingTreeIndex};
use std::collections::BTreeMap;

/// Sorted keys with duplicates and occasional extremes (same shape as the
/// workspace-level strategy).
fn keys_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            4 => any::<u32>().prop_map(|v| v as u64 * 1000),
            2 => any::<u64>(),
            1 => Just(0u64),
            1 => Just(u64::MAX),
            2 => (0u64..50).prop_map(|v| v * 7),
        ],
        1..300,
    )
    .prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cone_error_bound_holds(
        seed in prop::collection::btree_set(any::<u64>(), 2..300),
        eps in 1u64..256,
    ) {
        let xs: Vec<u64> = seed.iter().copied().collect();
        let ys: Vec<u64> = (0..xs.len() as u64).collect();
        let segs = fit_cone(&xs, &ys, eps);
        // Segments tile the input.
        prop_assert_eq!(segs[0].start, 0);
        prop_assert_eq!(segs.last().unwrap().end, xs.len());
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Per-point error within eps (+1 for f64 materialization).
        for seg in &segs {
            for i in seg.start..seg.end {
                let err = (seg.predict(xs[i]) - ys[i] as f64).abs();
                prop_assert!(err <= eps as f64 + 1.0, "eps={} err={}", eps, err);
            }
        }
    }

    #[test]
    fn static_index_always_valid(keys in keys_strategy(), eps in 1u64..128) {
        let data = SortedData::new(keys.clone()).expect("sorted input");
        let idx = FitingTreeIndex::build(&data, eps).expect("build");
        let mut probes: Vec<u64> = keys.clone();
        probes.extend(keys.iter().map(|&k| k.saturating_add(1)));
        probes.extend(keys.iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, u64::MAX, u64::MAX / 2]);
        for x in probes {
            let b = idx.search_bound(x);
            let lb = data.lower_bound(x);
            prop_assert!(b.contains(lb), "probe {} bound {:?} misses LB {}", x, b, lb);
        }
    }

    #[test]
    fn dynamic_tree_matches_btreemap(
        ops in prop::collection::vec(
            prop_oneof![
                5 => (0u64..8_000, any::<u64>()),
                1 => (any::<u64>(), any::<u64>()),
            ],
            1..500,
        ),
    ) {
        let mut t = DynamicFitingTree::new();
        let mut oracle = BTreeMap::new();
        for (j, &(k, v)) in ops.iter().enumerate() {
            if j % 4 == 3 {
                prop_assert_eq!(t.remove(k), oracle.remove(&k), "remove {}", k);
            } else {
                prop_assert_eq!(t.insert(k, v), oracle.insert(k, v), "key {}", k);
            }
        }
        prop_assert_eq!(t.len(), oracle.len());
        for &(k, _) in &ops {
            prop_assert_eq!(t.get(k), oracle.get(&k).copied());
        }
    }

    #[test]
    fn dynamic_bulk_load_round_trips(
        seed in prop::collection::btree_set(any::<u64>(), 1..400),
    ) {
        let keys: Vec<u64> = seed.iter().copied().collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k.wrapping_mul(7)).collect();
        let t = DynamicFitingTree::bulk_load(&keys, &payloads);
        prop_assert_eq!(t.len(), keys.len());
        for (&k, &v) in keys.iter().zip(&payloads) {
            prop_assert_eq!(t.get(k), Some(v));
        }
    }
}

#[test]
fn static_index_on_generated_datasets() {
    // Realistic CDFs: the static FITing-Tree must be valid on all of them.
    for id in sosd_datasets::DatasetId::ALL {
        let data = sosd_datasets::generate_u64(id, 20_000, 5);
        let idx = FitingTreeIndex::build(&data, 32).expect("build");
        for i in (0..data.len()).step_by(97) {
            let k = data.key(i);
            for probe in [k.saturating_sub(1), k, k.saturating_add(1)] {
                let b = idx.search_bound(probe);
                assert!(b.contains(data.lower_bound(probe)), "{}: probe {probe}", id.name());
            }
        }
    }
}
