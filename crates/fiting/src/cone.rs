//! The shrinking-cone segmentation algorithm of the FITing-Tree.
//!
//! Given points `(x_i, y_i)` with strictly increasing `x` and non-decreasing
//! `y`, greedily grow a segment anchored at its first point `(x_0, y_0)`
//! while some slope `s` keeps every point within the error bound:
//! `|y_0 + s * (x_i - x_0) - y_i| <= ε`. Each point narrows the feasible
//! slope interval (the "cone"); when the cone collapses, the segment ends
//! and a new one starts at the current point.
//!
//! Unlike the optimal convex-hull PLA used by the PGM index (which may place
//! the segment's line anywhere), the cone line is *anchored* at the first
//! point. That costs some segments (the FITing-Tree paper reports the greedy
//! fit is within a small factor of optimal) but makes the fit embarrassingly
//! simple and single-pass with O(1) state — the property RadixSpline
//! inherits (Section 3.2 of the benchmarked paper).

use sosd_core::Key;

/// One segment produced by [`fit_cone`]: an anchored line over input points
/// `[start, end)` with measured per-side prediction errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConeSegment<K: Key> {
    /// First key of the segment (the cone anchor; domain starts here).
    pub first_key: K,
    /// Chosen slope in positions per key unit (midpoint of the final cone).
    pub slope: f64,
    /// `y` of the anchor point: the line is `y0 + slope * (key - first_key)`.
    pub y0: f64,
    /// First input index covered.
    pub start: usize,
    /// One past the last input index covered.
    pub end: usize,
    /// Measured maximum of `predict - y` over the segment (how far the line
    /// overshoots), rounded up.
    pub err_over: u32,
    /// Measured maximum of `y - predict` (undershoot), rounded up.
    pub err_under: u32,
}

impl<K: Key> ConeSegment<K> {
    /// Evaluate the anchored line at `key`.
    ///
    /// The key delta is formed in integer space first so that keys near
    /// `2^64` (whose direct `f64` conversion rounds by up to 2048) still
    /// interpolate exactly.
    #[inline]
    pub fn predict(&self, key: K) -> f64 {
        let dx = key.to_u64() as i128 - self.first_key.to_u64() as i128;
        self.y0 + self.slope * dx as f64
    }
}

/// Fit a shrinking-cone segmentation with error bound `eps` over points
/// `(xs[i], ys[i])`. `xs` must be strictly increasing and `ys`
/// non-decreasing; `eps >= 1`.
///
/// The theoretical guarantee is `|predict(x_i) - y_i| <= eps` for every
/// point; because the final slope materializes through `f64`, each segment's
/// *actual* errors are re-measured and stored (`err_over`/`err_under`), and
/// callers build bounds from those. The measured errors never exceed
/// `eps + 1`.
pub fn fit_cone<K: Key>(xs: &[K], ys: &[u64], eps: u64) -> Vec<ConeSegment<K>> {
    assert_eq!(xs.len(), ys.len());
    assert!(eps >= 1, "eps must be at least 1");
    debug_assert!(xs.windows(2).all(|w| w[0] < w[1]), "xs must be strictly increasing");
    if xs.is_empty() {
        return Vec::new();
    }

    let mut segments = Vec::new();
    let eps = eps as f64;

    let mut start = 0usize;
    // Feasible slope interval for the current segment.
    let mut slope_lo = f64::NEG_INFINITY;
    let mut slope_hi = f64::INFINITY;

    let mut i = 1usize;
    while i <= xs.len() {
        if i == xs.len() {
            segments.push(close_segment(xs, ys, start, i, slope_lo, slope_hi));
            break;
        }
        let dx = (xs[i].to_u64() as i128 - xs[start].to_u64() as i128) as f64;
        let dy = ys[i] as f64 - ys[start] as f64;
        // Slopes that keep point i within ±eps of the anchored line.
        let lo_i = (dy - eps) / dx;
        let hi_i = (dy + eps) / dx;
        if lo_i > slope_hi || hi_i < slope_lo {
            // Cone collapsed: close the segment and restart at point i.
            segments.push(close_segment(xs, ys, start, i, slope_lo, slope_hi));
            start = i;
            slope_lo = f64::NEG_INFINITY;
            slope_hi = f64::INFINITY;
        } else {
            slope_lo = slope_lo.max(lo_i);
            slope_hi = slope_hi.min(hi_i);
        }
        i += 1;
    }
    segments
}

/// Materialize the segment over `[start, end)` with the final cone
/// `[slope_lo, slope_hi]`, measuring actual errors.
fn close_segment<K: Key>(
    xs: &[K],
    ys: &[u64],
    start: usize,
    end: usize,
    slope_lo: f64,
    slope_hi: f64,
) -> ConeSegment<K> {
    debug_assert!(end > start);
    // One-point segments have an unconstrained cone; use slope 0.
    let slope = if slope_lo.is_infinite() && slope_hi.is_infinite() {
        0.0
    } else if slope_lo.is_infinite() {
        slope_hi.min(0.0)
    } else if slope_hi.is_infinite() {
        slope_lo.max(0.0)
    } else {
        (slope_lo + slope_hi) * 0.5
    };
    let mut seg = ConeSegment {
        first_key: xs[start],
        slope,
        y0: ys[start] as f64,
        start,
        end,
        err_over: 0,
        err_under: 0,
    };
    let (mut over, mut under) = (0.0f64, 0.0f64);
    for i in start..end {
        let d = seg.predict(xs[i]) - ys[i] as f64;
        if d > over {
            over = d;
        }
        if -d > under {
            under = -d;
        }
    }
    seg.err_over = over.ceil() as u32;
    seg.err_under = under.ceil() as u32;
    seg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn linear_data_fits_one_segment() {
        let xs: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
        let segs = fit_cone(&xs, &positions(1000), 4);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].err_over <= 5 && segs[0].err_under <= 5);
    }

    #[test]
    fn error_bound_holds_on_every_point() {
        // Quadratic-ish data forces multiple segments.
        let xs: Vec<u64> = (0..2000u64).map(|i| i * i + i).collect();
        let ys = positions(2000);
        for eps in [1u64, 4, 16, 64] {
            let segs = fit_cone(&xs, &ys, eps);
            for seg in &segs {
                for i in seg.start..seg.end {
                    let err = (seg.predict(xs[i]) - ys[i] as f64).abs();
                    assert!(
                        err <= eps as f64 + 1.0,
                        "eps={eps} seg@{} point {i}: err={err}",
                        seg.start
                    );
                    assert!(err <= seg.err_over.max(seg.err_under) as f64 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn segments_partition_the_input() {
        let xs: Vec<u64> = (0..500u64).map(|i| i * 13 % 7919 + i * 100).collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let ys = positions(sorted.len());
        let segs = fit_cone(&sorted, &ys, 8);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, sorted.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile");
            assert!(w[0].first_key < w[1].first_key);
        }
    }

    #[test]
    fn smaller_eps_needs_at_least_as_many_segments() {
        let xs: Vec<u64> = (0..3000u64).map(|i| (i as f64).powf(1.5) as u64 * 10 + i).collect();
        let mut dedup = xs.clone();
        dedup.dedup();
        let ys = positions(dedup.len());
        let coarse = fit_cone(&dedup, &ys, 256).len();
        let fine = fit_cone(&dedup, &ys, 4).len();
        assert!(fine >= coarse, "fine={fine} coarse={coarse}");
    }

    #[test]
    fn single_point_input() {
        let segs = fit_cone(&[42u64], &[0], 8);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].predict(42), 0.0);
    }

    #[test]
    fn empty_input_yields_no_segments() {
        let segs = fit_cone::<u64>(&[], &[], 8);
        assert!(segs.is_empty());
    }

    #[test]
    fn greedy_uses_bounded_factor_more_segments_than_optimal() {
        // Cross-check against the optimal PLA from the PGM crate: greedy may
        // use more segments, never fewer (optimality of the convex-hull fit).
        let xs: Vec<u64> = (0..5000u64)
            .map(|i| i * 31 + (i % 97) * (i % 89))
            .scan(0u64, |acc, v| {
                *acc = (*acc).max(v) + 1;
                Some(*acc)
            })
            .collect();
        let ys = positions(xs.len());
        for eps in [8u64, 32] {
            let greedy = fit_cone(&xs, &ys, eps).len();
            let optimal = sosd_pgm::fit_pla(&xs, &ys, eps).len();
            assert!(greedy >= optimal, "greedy {greedy} < optimal {optimal}");
            assert!(
                greedy <= optimal.max(1) * 3 + 2,
                "greedy blowup: {greedy} vs optimal {optimal}"
            );
        }
    }
}
