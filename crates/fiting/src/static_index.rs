//! The static (read-only) FITing-Tree over a [`SortedData`].
//!
//! Segments come from the shrinking-cone fitter ([`crate::cone`]); the
//! directory over segment first-keys is a flat sorted array searched with
//! binary search (the FITing-Tree paper uses a B+Tree for the directory to
//! absorb segment inserts; for the read-only variant a dense array is the
//! cache-friendlier equivalent, the same choice the PGM and RadixSpline
//! crates make for their top levels).

use crate::cone::{fit_cone, ConeSegment};
use sosd_core::trace::addr_of_index;
use sosd_core::{
    BuildError, Capabilities, Index, IndexBuilder, IndexKind, Key, SearchBound, SortedData, Tracer,
};

/// A segment's runtime model: anchored line + lookup-envelope errors.
/// 24 bytes, same shape as the PGM's `SegModel`.
#[derive(Debug, Clone, Copy)]
struct SegModel {
    slope: f64,
    y0: f64,
    /// Max overestimation `pred - y` over the envelope set.
    err_over: u32,
    /// Max underestimation, including consecutive-pair rank-gap terms
    /// (`y_i - pred(x_{i-1})`) so absent keys inside duplicate runs stay
    /// covered.
    err_under: u32,
}

/// The static FITing-Tree index (ref. \[14\]): shrinking-cone segments behind
/// a sorted segment directory.
#[derive(Debug, Clone)]
pub struct FitingTreeIndex<K: Key> {
    first_keys: Vec<K>,
    models: Vec<SegModel>,
    n: usize,
    max_key: K,
    max_target: f64,
}

impl<K: Key> FitingTreeIndex<K> {
    /// Build with per-point error bound `eps` (`1..=2^24`).
    pub fn build(data: &SortedData<K>, eps: u64) -> Result<Self, BuildError> {
        if eps == 0 || eps > (1 << 24) {
            return Err(BuildError::InvalidConfig(format!("eps must be in 1..=2^24, got {eps}")));
        }
        // Distinct keys with first-occurrence positions, as everywhere else
        // in the workspace: the cone needs strictly increasing x.
        let keys = data.keys();
        let mut xs: Vec<K> = Vec::new();
        let mut ys: Vec<u64> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if xs.last() != Some(&k) {
                xs.push(k);
                ys.push(i as u64);
            }
        }

        let segments = fit_cone(&xs, &ys, eps);
        let m = xs.len();
        let max_target = ys[m - 1] as f64;
        let mut first_keys = Vec::with_capacity(segments.len());
        let mut models = Vec::with_capacity(segments.len());
        for seg in &segments {
            models.push(lookup_envelope(seg, &xs, &ys, max_target));
            first_keys.push(seg.first_key);
        }

        Ok(FitingTreeIndex {
            first_keys,
            models,
            n: data.len(),
            max_key: data.max_key(),
            max_target,
        })
    }

    /// Number of cone segments.
    pub fn num_segments(&self) -> usize {
        self.models.len()
    }

    #[inline]
    fn predict(&self, seg: usize, key: K) -> f64 {
        let m = &self.models[seg];
        let dx = key.to_u64() as i128 - self.first_keys[seg].to_u64() as i128;
        (m.y0 + m.slope * dx as f64).clamp(0.0, self.max_target)
    }

    #[inline]
    fn bound_generic<T: Tracer>(&self, key: K, tracer: &mut T) -> SearchBound {
        // Floor segment: last first_key <= key (clamped to segment 0 for
        // keys below the whole domain).
        let seg = floor_segment(&self.first_keys, key, tracer);
        tracer.read(addr_of_index(&self.models, seg), std::mem::size_of::<SegModel>());
        tracer.instr(8);
        let m = &self.models[seg];
        let pred = self.predict(seg, key);

        let lo = {
            let f = pred - m.err_over as f64 - 1.0;
            if f <= 0.0 {
                0
            } else {
                (f as usize).min(self.n)
            }
        };
        let hi = if key > self.max_key {
            // Past every key: LB is n, which first-occurrence training
            // positions cannot see when the tail has duplicates.
            self.n
        } else {
            let f = pred + m.err_under as f64 + 2.0;
            if f <= 0.0 {
                0
            } else {
                (f as usize).min(self.n)
            }
        };
        SearchBound { lo: lo.min(hi), hi }
    }
}

/// Measure the lookup envelope for one segment: the per-point residuals plus
/// the rank-gap terms covering absent keys, plus the next segment's first
/// pair (the sandwich argument: an absent key just below the next segment's
/// first key is still routed to *this* segment).
fn lookup_envelope<K: Key>(
    seg: &ConeSegment<K>,
    xs: &[K],
    ys: &[u64],
    max_target: f64,
) -> SegModel {
    let m = xs.len();
    let slope = seg.slope.max(0.0);
    let x0 = seg.first_key.to_u64();
    let pred_at = |i: usize| -> f64 {
        let dx = (xs[i].to_u64() as i128 - x0 as i128) as f64;
        (seg.y0 + slope * dx).clamp(0.0, max_target)
    };
    let hi_i = seg.end.min(m - 1);
    let mut err_over = 0f64;
    let mut err_under = ys[seg.start] as f64 - pred_at(seg.start);
    #[allow(clippy::needless_range_loop)] // indexes ys twice (i and i-1)
    for i in seg.start..=hi_i {
        let pred = pred_at(i);
        err_over = err_over.max(pred - ys[i] as f64);
        if i > seg.start {
            err_under = err_under.max(ys[i] as f64 - pred_at(i - 1));
        }
    }
    SegModel {
        slope,
        y0: seg.y0,
        err_over: err_over.max(0.0).ceil().min(u32::MAX as f64) as u32,
        err_under: err_under.max(0.0).ceil().min(u32::MAX as f64) as u32,
    }
}

/// Index of the last `first_keys` entry `<= key`, or 0 when `key` precedes
/// them all. Traced binary search over the directory.
#[inline]
fn floor_segment<K: Key, T: Tracer>(first_keys: &[K], key: K, tracer: &mut T) -> usize {
    let site = first_keys.as_ptr() as usize;
    let mut lo = 0usize;
    let mut hi = first_keys.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        tracer.read(addr_of_index(first_keys, mid), std::mem::size_of::<K>());
        tracer.instr(4);
        let taken = first_keys[mid] <= key;
        tracer.branch(site, taken);
        if taken {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo.saturating_sub(1)
}

impl<K: Key> Index<K> for FitingTreeIndex<K> {
    fn name(&self) -> &'static str {
        "FITing"
    }

    fn size_bytes(&self) -> usize {
        self.first_keys.len() * std::mem::size_of::<K>()
            + self.models.len() * std::mem::size_of::<SegModel>()
    }

    fn search_bound(&self, key: K) -> SearchBound {
        let mut t = sosd_core::NullTracer;
        self.bound_generic(key, &mut t)
    }

    fn search_bound_traced(&self, key: K, tracer: &mut dyn Tracer) -> SearchBound {
        self.bound_generic(key, &mut { tracer })
    }

    fn capabilities(&self) -> Capabilities {
        // The FITing-Tree supports inserts (ref. [14]; `DynamicFitingTree`);
        // this static build is the read-only benchmark variant.
        Capabilities { updates: true, ordered: true, kind: IndexKind::Learned }
    }
}

/// Builder: one knob (ε), exactly like PGM's leaf level.
#[derive(Debug, Clone, Copy)]
pub struct FitingTreeBuilder {
    /// Per-point prediction error bound.
    pub eps: u64,
}

impl FitingTreeBuilder {
    /// Ten configurations from coarse (small) to fine (large), mirroring the
    /// paper's 10-point sweeps.
    pub fn size_sweep() -> Vec<FitingTreeBuilder> {
        [4096, 2048, 1024, 512, 256, 128, 64, 32, 16, 8]
            .into_iter()
            .map(|eps| FitingTreeBuilder { eps })
            .collect()
    }
}

impl<K: Key> IndexBuilder<K> for FitingTreeBuilder {
    type Output = FitingTreeIndex<K>;

    fn build(&self, data: &SortedData<K>) -> Result<Self::Output, BuildError> {
        FitingTreeIndex::build(data, self.eps)
    }

    fn describe(&self) -> String {
        format!("FITing[eps={}]", self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_core::CountingTracer;

    fn data(keys: Vec<u64>) -> SortedData<u64> {
        SortedData::new(keys).unwrap()
    }

    fn check_all_probes(idx: &FitingTreeIndex<u64>, d: &SortedData<u64>) {
        // Present keys, their neighbours, and extremes.
        let mut probes: Vec<u64> = d.keys().to_vec();
        probes.extend(d.keys().iter().map(|&k| k.saturating_add(1)));
        probes.extend(d.keys().iter().map(|&k| k.saturating_sub(1)));
        probes.extend([0, u64::MAX, u64::MAX / 2]);
        for x in probes {
            let b = idx.search_bound(x);
            let lb = d.lower_bound(x);
            assert!(b.contains(lb), "probe {x}: bound {b:?} misses LB {lb}");
        }
    }

    #[test]
    fn valid_on_linear_data() {
        let d = data((0..10_000).map(|i| i * 3).collect());
        let idx = FitingTreeIndex::build(&d, 16).unwrap();
        assert_eq!(idx.num_segments(), 1, "linear data needs one cone segment");
        check_all_probes(&idx, &d);
    }

    #[test]
    fn valid_on_quadratic_data() {
        let d = data((0..20_000u64).map(|i| i * i / 7 + i).collect());
        for eps in [4, 64, 1024] {
            let idx = FitingTreeIndex::build(&d, eps).unwrap();
            check_all_probes(&idx, &d);
        }
    }

    #[test]
    fn valid_with_heavy_duplicates() {
        // The rank-gap case: a huge duplicate run followed by sparse keys.
        let mut keys = vec![10u64; 5_000];
        keys.extend((0..100u64).map(|i| 1_000 + i * 17));
        keys.sort_unstable();
        let d = data(keys);
        let idx = FitingTreeIndex::build(&d, 8).unwrap();
        check_all_probes(&idx, &d);
        // Probe just below the post-run key: LB is deep into the array.
        let b = idx.search_bound(999);
        assert!(b.contains(d.lower_bound(999)));
    }

    #[test]
    fn smaller_eps_tightens_bounds_and_grows_size() {
        let mut keys: Vec<u64> =
            (0..50_000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 1_000_000).collect();
        keys.sort_unstable();
        let d = data(keys);
        let coarse = FitingTreeIndex::build(&d, 1024).unwrap();
        let fine = FitingTreeIndex::build(&d, 8).unwrap();
        assert!(fine.size_bytes() >= coarse.size_bytes());
        let probe = d.key(d.len() / 2);
        assert!(fine.search_bound(probe).len() <= coarse.search_bound(probe).len());
    }

    #[test]
    fn rejects_bad_eps() {
        let d = data(vec![1, 2, 3]);
        assert!(FitingTreeIndex::build(&d, 0).is_err());
        assert!(FitingTreeIndex::build(&d, 1 << 25).is_err());
    }

    #[test]
    fn builder_sweep_is_monotone_in_eps() {
        let sweep = FitingTreeBuilder::size_sweep();
        assert_eq!(sweep.len(), 10);
        assert!(sweep.windows(2).all(|w| w[0].eps > w[1].eps));
        assert!(<FitingTreeBuilder as IndexBuilder<u64>>::describe(&sweep[0]).contains("4096"));
    }

    #[test]
    fn traced_lookup_reports_reads() {
        let mut keys: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 999_983).collect();
        keys.sort_unstable();
        let d = data(keys);
        let idx = FitingTreeIndex::build(&d, 32).unwrap();
        let mut t = CountingTracer::default();
        let probe = d.key(500);
        let b = idx.search_bound_traced(probe, &mut t);
        assert!(b.contains(d.lower_bound(probe)));
        assert!(t.reads > 0, "directory search must touch memory");
    }

    #[test]
    fn single_key_dataset() {
        let d = data(vec![42]);
        let idx = FitingTreeIndex::build(&d, 4).unwrap();
        assert!(idx.search_bound(41).contains(0));
        assert!(idx.search_bound(42).contains(0));
        assert!(idx.search_bound(43).contains(1));
    }
}
