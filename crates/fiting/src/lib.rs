//! # sosd-fiting
//!
//! The FITing-Tree (Galakatos et al., SIGMOD 2019 — ref. \[14\] of the paper):
//! a data-aware learned index that partitions the key space with the
//! *shrinking cone* segmentation algorithm and indexes the resulting
//! segments in a directory.
//!
//! The paper cites FITing-Tree as one of the bottom-up learned structures
//! (RadixSpline's spline fitter "is similar to the shrinking cone algorithm
//! of FITing-Tree", Section 3.2) but could not evaluate it because no tuned
//! implementation was publicly available (Section 3). This crate fills that
//! gap with both variants from the FITing-Tree paper:
//!
//! * [`FitingTreeIndex`] — the static, read-only index over a
//!   [`sosd_core::SortedData`], implementing [`sosd_core::Index`] so it
//!   slots into every experiment harness next to RMI/PGM/RS.
//! * [`DynamicFitingTree`] — the *delta-insert* variant: each segment
//!   carries a small sorted buffer; overflowing buffers trigger a local
//!   merge-and-resegment. Implements
//!   [`sosd_core::dynamic::DynamicOrderedIndex`].
//!
//! Both are built on the [`cone`] module, a direct implementation of the
//! shrinking-cone fitter with a per-point error guarantee of ε.

pub mod cone;
pub mod dynamic;
pub mod static_index;

pub use cone::{fit_cone, ConeSegment};
pub use dynamic::DynamicFitingTree;
pub use static_index::{FitingTreeBuilder, FitingTreeIndex};
