//! The insert-supporting FITing-Tree (delta-insert strategy).
//!
//! Ref. \[14\] proposes two insert strategies; this is the *delta* one: every
//! segment carries a small sorted buffer of pending inserts. Lookups consult
//! the buffer alongside the segment's main (model-indexed) data. When a
//! buffer overflows, the segment merges its buffer into its data and re-runs
//! the shrinking cone over the merged keys — which may split the segment
//! into several, keeping every segment's model within the error bound ε as
//! the data distribution shifts.
//!
//! Keys are unique (map semantics); inserting an existing key overwrites its
//! payload in place, wherever it lives. Deletions tombstone main-data keys
//! (reclaimed at the segment's next merge) and erase buffered keys directly.

use crate::cone::fit_cone;
use sosd_core::dynamic::{BulkLoad, DynamicOrderedIndex};
use sosd_core::{Capabilities, IndexKind, Key, SearchBound};

/// Default pending inserts a segment absorbs before merging (the
/// FITing-Tree paper's buffer-size knob; 256 sits in the middle of its
/// evaluated range). Tune with [`DynamicFitingTree::with_config`].
pub const DEFAULT_MAX_DELTA: usize = 256;

/// Default cone error bound used when (re)segmenting on merges.
pub const DEFAULT_SEG_EPS: u64 = 64;

/// An anchored linear model over a segment's *local* positions, with a
/// measured lookup envelope (gap terms included, so absent-key probes stay
/// covered).
#[derive(Debug, Clone, Copy)]
struct LocalModel {
    slope: f64,
    err_over: u32,
    err_under: u32,
}

impl LocalModel {
    /// Fit the anchored chord from the first to the last point and measure
    /// its actual error envelope. Never fails: a poor fit just yields a wide
    /// envelope (correctness is always measured, ε only shapes performance).
    fn fit<K: Key>(keys: &[K]) -> LocalModel {
        let n = keys.len();
        if n < 2 {
            return LocalModel { slope: 0.0, err_over: 0, err_under: 0 };
        }
        let dx = (keys[n - 1].to_u64() as i128 - keys[0].to_u64() as i128) as f64;
        let slope = if dx > 0.0 { (n as f64 - 1.0) / dx } else { 0.0 };
        let x0 = keys[0].to_u64();
        let pred = |i: usize| -> f64 {
            let d = (keys[i].to_u64() as i128 - x0 as i128) as f64;
            slope * d
        };
        let mut over = 0.0f64;
        let mut under = 0.0f64;
        for i in 0..n {
            let p = pred(i);
            over = over.max(p - i as f64);
            under = under.max(i as f64 - p);
            if i > 0 {
                // Gap term: an absent key just above keys[i-1] has local
                // lower bound i but predicts near pred(i-1).
                under = under.max(i as f64 - pred(i - 1));
            }
        }
        LocalModel {
            slope,
            err_over: over.ceil().min(u32::MAX as f64) as u32,
            err_under: under.ceil().min(u32::MAX as f64) as u32,
        }
    }

    /// Local-position search bound for `key` within a segment of `n` keys
    /// anchored at `first`.
    #[inline]
    fn bound<K: Key>(&self, key: K, first: K, n: usize) -> SearchBound {
        if n == 0 {
            return SearchBound { lo: 0, hi: 0 };
        }
        let dx = key.to_u64().saturating_sub(first.to_u64()) as f64;
        let pred = (self.slope * dx).clamp(0.0, (n - 1) as f64);
        let lo = (pred - self.err_over as f64 - 1.0).max(0.0) as usize;
        let hi = ((pred + self.err_under as f64 + 2.0) as usize).min(n);
        SearchBound { lo: lo.min(hi), hi }
    }
}

/// One segment: model-indexed sorted main data plus a sorted delta buffer.
///
/// Deletions of main-data keys are tombstoned (the key must stay so the
/// model's positions remain valid); the next merge drops dead entries.
/// Buffer deletions erase directly.
struct Segment<K: Key> {
    /// Domain start: keys in `[domain_key, next segment's domain_key)` route
    /// here. The model anchors at `keys[0]`, which may sit above
    /// `domain_key`.
    domain_key: K,
    keys: Vec<K>,
    payloads: Vec<u64>,
    model: LocalModel,
    buf_keys: Vec<K>,
    buf_payloads: Vec<u64>,
    /// Lazily allocated tombstone flags, parallel to `keys`.
    dead: Option<Box<[bool]>>,
}

impl<K: Key> Segment<K> {
    fn new(domain_key: K, keys: Vec<K>, payloads: Vec<u64>) -> Self {
        let model = LocalModel::fit(&keys);
        Segment {
            domain_key,
            keys,
            payloads,
            model,
            buf_keys: Vec::new(),
            buf_payloads: Vec::new(),
            dead: None,
        }
    }

    #[inline]
    fn is_dead(&self, i: usize) -> bool {
        self.dead.as_ref().is_some_and(|d| d[i])
    }

    fn set_dead(&mut self, i: usize, dead: bool) {
        match &mut self.dead {
            Some(d) => d[i] = dead,
            None if dead => {
                let mut d = vec![false; self.keys.len()].into_boxed_slice();
                d[i] = true;
                self.dead = Some(d);
            }
            None => {}
        }
    }

    /// First *live* main entry with key `>= x`, as an index.
    fn main_lower_bound_live(&self, x: K) -> Option<usize> {
        let mut i = self.main_lower_bound(x);
        while i < self.keys.len() {
            if !self.is_dead(i) {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Position of the first main key `>= x`.
    #[inline]
    fn main_lower_bound(&self, x: K) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        let b = self.model.bound(x, self.keys[0], self.keys.len());
        sosd_core::search::binary_search(&self.keys, x, b)
    }

    fn find_main(&self, x: K) -> Option<usize> {
        let i = self.main_lower_bound(x);
        (i < self.keys.len() && self.keys[i] == x).then_some(i)
    }

    fn entries(&self) -> usize {
        self.keys.len() + self.buf_keys.len()
    }

    /// Merge main and buffer into one sorted pair of arrays (disjoint
    /// keys), dropping tombstoned entries — merges reclaim deleted space.
    fn merged(&mut self) -> (Vec<K>, Vec<u64>) {
        let n = self.entries();
        let mut keys = Vec::with_capacity(n);
        let mut payloads = Vec::with_capacity(n);
        let (a_k, a_p) = (std::mem::take(&mut self.keys), std::mem::take(&mut self.payloads));
        let (b_k, b_p) =
            (std::mem::take(&mut self.buf_keys), std::mem::take(&mut self.buf_payloads));
        let dead = std::mem::take(&mut self.dead);
        let is_dead = |i: usize| dead.as_ref().is_some_and(|d| d[i]);
        let (mut i, mut j) = (0, 0);
        while i < a_k.len() || j < b_k.len() {
            if i < a_k.len() && is_dead(i) {
                i += 1;
                continue;
            }
            let take_a = j >= b_k.len() || (i < a_k.len() && a_k[i] < b_k[j]);
            if take_a {
                keys.push(a_k[i]);
                payloads.push(a_p[i]);
                i += 1;
            } else {
                debug_assert!(
                    i >= a_k.len() || a_k[i] != b_k[j],
                    "main and buffer must be disjoint"
                );
                keys.push(b_k[j]);
                payloads.push(b_p[j]);
                j += 1;
            }
        }
        (keys, payloads)
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.keys.capacity() + self.buf_keys.capacity()) * std::mem::size_of::<K>()
            + (self.payloads.capacity() + self.buf_payloads.capacity()) * 8
            + self.dead.as_ref().map_or(0, |d| d.len())
    }
}

/// The delta-insert FITing-Tree (ref. \[14\]).
pub struct DynamicFitingTree<K: Key> {
    /// Parallel to `segments`: `dir_keys[i] == segments[i].domain_key`.
    dir_keys: Vec<K>,
    segments: Vec<Segment<K>>,
    len: usize,
    /// Segments produced by merges so far (adaptivity observability).
    resegment_count: u64,
    /// Per-segment delta buffer capacity.
    max_delta: usize,
    /// Cone ε used when (re)segmenting.
    seg_eps: u64,
}

impl<K: Key> Default for DynamicFitingTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> DynamicFitingTree<K> {
    /// An empty tree with a single all-covering segment and the default
    /// knobs.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_MAX_DELTA, DEFAULT_SEG_EPS)
    }

    /// An empty tree with explicit knobs: `max_delta` pending inserts per
    /// segment before a merge, and cone error `seg_eps` for (re)fits.
    /// Bigger buffers favour writes; smaller ε favours reads — the
    /// tradeoff the FITing-Tree paper's evaluation sweeps and the `ext04`
    /// ablation reproduces.
    pub fn with_config(max_delta: usize, seg_eps: u64) -> Self {
        DynamicFitingTree {
            dir_keys: vec![K::MIN_KEY],
            segments: vec![Segment::new(K::MIN_KEY, Vec::new(), Vec::new())],
            len: 0,
            resegment_count: 0,
            max_delta: max_delta.max(8),
            seg_eps: seg_eps.max(1),
        }
    }

    /// Current number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total merge-and-resegment events so far.
    pub fn resegment_count(&self) -> u64 {
        self.resegment_count
    }

    /// Merge every segment's buffer into its data and drop all tombstones,
    /// re-running the cone where segments drifted — the explicit
    /// space-reclamation step for delete-heavy workloads.
    pub fn compact(&mut self) {
        // Merging splices segments in place, so walk by stable position:
        // after merging segment `s` the splice result occupies `s..s+k`;
        // skip past it.
        let mut s = 0;
        while s < self.segments.len() {
            let before = self.segments.len();
            self.merge_segment(s);
            let grown = self.segments.len() - before;
            s += 1 + grown;
        }
    }

    /// Index of the segment whose domain contains `key`.
    #[inline]
    fn route(&self, key: K) -> usize {
        self.dir_keys.partition_point(|&k| k <= key).saturating_sub(1)
    }

    /// Merge segment `s`'s buffer into its data and re-run the cone,
    /// splicing any split segments into the directory.
    fn merge_segment(&mut self, s: usize) {
        let domain_key = self.segments[s].domain_key;
        let (keys, payloads) = self.segments[s].merged();
        if keys.is_empty() {
            return;
        }
        let positions: Vec<u64> = (0..keys.len() as u64).collect();
        let cone = fit_cone(&keys, &positions, self.seg_eps);
        self.resegment_count += cone.len() as u64;

        let mut new_segments = Vec::with_capacity(cone.len());
        let mut new_dir = Vec::with_capacity(cone.len());
        for (ci, cs) in cone.iter().enumerate() {
            let seg_keys = keys[cs.start..cs.end].to_vec();
            let seg_payloads = payloads[cs.start..cs.end].to_vec();
            // The first split inherits the old domain boundary so routing
            // for keys below the first stored key is unchanged.
            let dk = if ci == 0 { domain_key } else { cs.first_key };
            new_dir.push(dk);
            new_segments.push(Segment::new(dk, seg_keys, seg_payloads));
        }
        self.dir_keys.splice(s..=s, new_dir);
        self.segments.splice(s..=s, new_segments);
    }
}

impl<K: Key> BulkLoad<K> for DynamicFitingTree<K> {
    fn bulk_load(keys: &[K], payloads: &[u64]) -> Self {
        assert_eq!(keys.len(), payloads.len());
        if keys.is_empty() {
            return DynamicFitingTree::new();
        }
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "bulk_load requires strictly sorted keys"
        );
        let positions: Vec<u64> = (0..keys.len() as u64).collect();
        let cone = fit_cone(keys, &positions, DEFAULT_SEG_EPS);
        let mut dir_keys = Vec::with_capacity(cone.len());
        let mut segments = Vec::with_capacity(cone.len());
        for (ci, cs) in cone.iter().enumerate() {
            let dk = if ci == 0 { K::MIN_KEY } else { cs.first_key };
            dir_keys.push(dk);
            segments.push(Segment::new(
                dk,
                keys[cs.start..cs.end].to_vec(),
                payloads[cs.start..cs.end].to_vec(),
            ));
        }
        DynamicFitingTree {
            dir_keys,
            segments,
            len: keys.len(),
            resegment_count: 0,
            max_delta: DEFAULT_MAX_DELTA,
            seg_eps: DEFAULT_SEG_EPS,
        }
    }
}

impl<K: Key> DynamicOrderedIndex<K> for DynamicFitingTree<K> {
    fn name(&self) -> &'static str {
        "FITing(dyn)"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.dir_keys.capacity() * std::mem::size_of::<K>()
            + self.segments.iter().map(Segment::size_bytes).sum::<usize>()
    }

    fn insert(&mut self, key: K, payload: u64) -> Option<u64> {
        let s = self.route(key);
        let seg = &mut self.segments[s];
        if let Some(i) = seg.find_main(key) {
            if seg.is_dead(i) {
                // Revive the tombstoned key in place.
                seg.payloads[i] = payload;
                seg.set_dead(i, false);
                self.len += 1;
                return None;
            }
            return Some(std::mem::replace(&mut seg.payloads[i], payload));
        }
        match seg.buf_keys.binary_search(&key) {
            Ok(i) => Some(std::mem::replace(&mut seg.buf_payloads[i], payload)),
            Err(i) => {
                seg.buf_keys.insert(i, key);
                seg.buf_payloads.insert(i, payload);
                self.len += 1;
                if seg.buf_keys.len() >= self.max_delta {
                    self.merge_segment(s);
                }
                None
            }
        }
    }

    fn remove(&mut self, key: K) -> Option<u64> {
        let s = self.route(key);
        let seg = &mut self.segments[s];
        if let Some(i) = seg.find_main(key) {
            if seg.is_dead(i) {
                return None;
            }
            seg.set_dead(i, true);
            self.len -= 1;
            return Some(seg.payloads[i]);
        }
        match seg.buf_keys.binary_search(&key) {
            Ok(i) => {
                seg.buf_keys.remove(i);
                let payload = seg.buf_payloads.remove(i);
                self.len -= 1;
                Some(payload)
            }
            Err(_) => None,
        }
    }

    fn get(&self, key: K) -> Option<u64> {
        let seg = &self.segments[self.route(key)];
        if let Some(i) = seg.find_main(key) {
            return (!seg.is_dead(i)).then(|| seg.payloads[i]);
        }
        seg.buf_keys.binary_search(&key).ok().map(|i| seg.buf_payloads[i])
    }

    fn lower_bound_entry(&self, key: K) -> Option<(K, u64)> {
        let mut s = self.route(key);
        // Within the routed segment, both main and buffer may hold the
        // answer; later segments only matter if this one has nothing >= key.
        loop {
            let seg = &self.segments[s];
            let mut best: Option<(K, u64)> = None;
            if let Some(i) = seg.main_lower_bound_live(key) {
                best = Some((seg.keys[i], seg.payloads[i]));
            }
            let j = seg.buf_keys.partition_point(|&k| k < key);
            if j < seg.buf_keys.len() {
                let cand = (seg.buf_keys[j], seg.buf_payloads[j]);
                if best.is_none_or(|b| cand.0 < b.0) {
                    best = Some(cand);
                }
            }
            if best.is_some() {
                return best;
            }
            s += 1;
            if s >= self.segments.len() {
                return None;
            }
        }
    }

    fn range_sum(&self, lo: K, hi: K) -> u64 {
        if hi <= lo {
            return 0;
        }
        let mut sum = 0u64;
        let mut s = self.route(lo);
        while s < self.segments.len() && self.segments[s].domain_key < hi {
            let seg = &self.segments[s];
            let a = seg.main_lower_bound(lo);
            let b = seg.main_lower_bound(hi);
            for i in a..b {
                if !seg.is_dead(i) {
                    sum = sum.wrapping_add(seg.payloads[i]);
                }
            }
            let a = seg.buf_keys.partition_point(|&k| k < lo);
            let b = seg.buf_keys.partition_point(|&k| k < hi);
            for v in &seg.buf_payloads[a..b] {
                sum = sum.wrapping_add(*v);
            }
            s += 1;
        }
        sum
    }

    /// Route once to the first overlapping segment, then walk segments in
    /// directory order, two-pointer-merging each segment's (disjoint) main
    /// data and delta buffer — one model-guided descent per segment
    /// instead of the trait default's full-tree descent per visited entry.
    /// Tombstoned main entries are skipped in place.
    fn for_each_in(&self, lo: K, hi: K, f: &mut dyn FnMut(K, u64)) {
        if hi <= lo {
            return;
        }
        let mut s = self.route(lo);
        while s < self.segments.len() && self.segments[s].domain_key < hi {
            let seg = &self.segments[s];
            let mut i = seg.main_lower_bound(lo);
            let main_end = seg.main_lower_bound(hi);
            let mut j = seg.buf_keys.partition_point(|&k| k < lo);
            let buf_end = seg.buf_keys.partition_point(|&k| k < hi);
            loop {
                while i < main_end && seg.is_dead(i) {
                    i += 1;
                }
                let take_main = match (i < main_end, j < buf_end) {
                    (false, false) => break,
                    (true, false) => true,
                    (false, true) => false,
                    // Main and buffer are key-disjoint: no tie to break.
                    (true, true) => seg.keys[i] < seg.buf_keys[j],
                };
                if take_main {
                    f(seg.keys[i], seg.payloads[i]);
                    i += 1;
                } else {
                    f(seg.buf_keys[j], seg.buf_payloads[j]);
                    j += 1;
                }
            }
            s += 1;
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities { updates: true, ordered: true, kind: IndexKind::Learned }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_tree_answers_nothing() {
        let t = DynamicFitingTree::<u64>::new();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(1), None);
        assert_eq!(t.lower_bound_entry(0), None);
        assert_eq!(t.range_sum(0, u64::MAX), 0);
    }

    #[test]
    fn inserts_trigger_merges_and_splits() {
        let mut t = DynamicFitingTree::new();
        for i in 0..20_000u64 {
            t.insert(splitmix(i), i);
        }
        assert_eq!(t.len(), 20_000);
        assert!(t.resegment_count() > 0, "buffers must have overflowed");
        assert!(t.num_segments() >= 1);
        for i in (0..20_000u64).step_by(67) {
            assert_eq!(t.get(splitmix(i)), Some(i));
        }
    }

    #[test]
    fn overwrite_in_main_and_buffer() {
        let mut t = DynamicFitingTree::new();
        // Fill past one merge so some keys live in main data.
        for i in 0..1_000u64 {
            t.insert(i * 2, i);
        }
        assert_eq!(t.insert(0, 777), Some(0));
        assert_eq!(t.get(0), Some(777));
        // A key still in a buffer:
        t.insert(999_999, 1);
        assert_eq!(t.insert(999_999, 2), Some(1));
        assert_eq!(t.get(999_999), Some(2));
        assert_eq!(t.len(), 1_001);
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let mut t = DynamicFitingTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..30_000u64 {
            let k = splitmix(i) % 10_000;
            let v = splitmix(i ^ 0x5555);
            assert_eq!(t.insert(k, v), oracle.insert(k, v), "insert #{i} key {k}");
        }
        assert_eq!(t.len(), oracle.len());
        for k in 0..10_000u64 {
            assert_eq!(t.get(k), oracle.get(&k).copied(), "get {k}");
        }
    }

    #[test]
    fn lower_bound_crosses_segments() {
        let mut t = DynamicFitingTree::new();
        let mut oracle = BTreeMap::new();
        // Two widely separated clusters force multiple segments.
        for i in 0..5_000u64 {
            let k = if i % 2 == 0 { i * 3 } else { 1 << 40 | (i * 7) };
            t.insert(k, i);
            oracle.insert(k, i);
        }
        for probe in [0u64, 14_000, 15_001, (1 << 40) - 1, (1 << 40) + 3, u64::MAX] {
            let expect = oracle.range(probe..).next().map(|(&k, &v)| (k, v));
            assert_eq!(t.lower_bound_entry(probe), expect, "lb {probe}");
        }
    }

    #[test]
    fn range_sum_matches_oracle() {
        let mut t = DynamicFitingTree::new();
        let mut oracle = BTreeMap::new();
        for i in 0..10_000u64 {
            let k = splitmix(i) % 200_000;
            t.insert(k, i);
            oracle.insert(k, i);
        }
        for i in 0..50u64 {
            let lo = splitmix(i * 3) % 200_000;
            let hi = lo + splitmix(i * 11) % 60_000;
            let expect: u64 = oracle.range(lo..hi).fold(0u64, |a, (_, &v)| a.wrapping_add(v));
            assert_eq!(t.range_sum(lo, hi), expect, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn bulk_load_segments_linear_data_coarsely() {
        let keys: Vec<u64> = (0..100_000).map(|i| i * 4).collect();
        let payloads = vec![1u64; keys.len()];
        let t = DynamicFitingTree::bulk_load(&keys, &payloads);
        assert_eq!(t.len(), 100_000);
        assert_eq!(t.num_segments(), 1, "linear data is one cone segment");
        assert_eq!(t.get(400), Some(1));
        assert_eq!(t.get(401), None);
    }

    #[test]
    fn bulk_load_then_insert_round_trips() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 10).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 1).collect();
        let mut t = DynamicFitingTree::bulk_load(&keys, &payloads);
        let mut oracle: BTreeMap<u64, u64> =
            keys.iter().zip(&payloads).map(|(&k, &v)| (k, v)).collect();
        for i in 0..10_000u64 {
            let k = splitmix(i) % 100_000;
            assert_eq!(t.insert(k, i), oracle.insert(k, i), "insert {k}");
        }
        assert_eq!(t.len(), oracle.len());
        for probe in (0..100_010u64).step_by(487) {
            let expect = oracle.range(probe..).next().map(|(&k, &v)| (k, v));
            assert_eq!(t.lower_bound_entry(probe), expect, "lb {probe}");
        }
    }

    #[test]
    fn nonlinear_data_splits_into_many_segments() {
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * i).collect();
        let payloads = vec![0u64; keys.len()];
        let t = DynamicFitingTree::bulk_load(&keys, &payloads);
        assert!(t.num_segments() > 10, "quadratic data must split: {}", t.num_segments());
    }

    #[test]
    fn size_bytes_counts_owned_data() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 2).collect();
        let payloads = vec![0u64; keys.len()];
        let t = DynamicFitingTree::bulk_load(&keys, &payloads);
        assert!(t.size_bytes() >= 10_000 * 16);
    }

    #[test]
    fn u32_keys_supported() {
        let mut t = DynamicFitingTree::<u32>::new();
        let mut oracle = BTreeMap::new();
        for i in 0..5_000u32 {
            let k = (splitmix(i as u64) % 100_000) as u32;
            let v = i as u64;
            assert_eq!(t.insert(k, v), oracle.insert(k, v));
        }
        for k in (0..100_000u32).step_by(313) {
            assert_eq!(t.get(k), oracle.get(&k).copied());
        }
    }
    #[test]
    fn remove_tombstones_main_and_erases_buffer() {
        let keys: Vec<u64> = (0..20_000).map(|i| i * 5).collect();
        let payloads: Vec<u64> = keys.iter().map(|&k| k + 2).collect();
        let mut t = DynamicFitingTree::bulk_load(&keys, &payloads);
        // Main-data delete (tombstone).
        assert_eq!(t.remove(50), Some(52));
        assert_eq!(t.get(50), None);
        // Buffered-insert delete (direct erase).
        t.insert(51, 7);
        assert_eq!(t.remove(51), Some(7));
        assert_eq!(t.get(51), None);
        assert_eq!(t.len(), 20_000 - 1);
        // Lower bound skips the tombstone.
        assert_eq!(t.lower_bound_entry(46), Some((55, 57)));
        // Merge reclaims: force the segment to merge via buffer pressure.
        for i in 0..5_000u64 {
            t.insert(i * 5 + 1, 1);
        }
        assert_eq!(t.get(50), None, "dead key must stay dead across merges");
        assert_eq!(t.insert(50, 123), None);
        assert_eq!(t.get(50), Some(123));
    }

    #[test]
    fn delete_everything_then_lower_bound_is_none() {
        let keys: Vec<u64> = (0..3_000).map(|i| i * 2).collect();
        let payloads = vec![1u64; keys.len()];
        let mut t = DynamicFitingTree::bulk_load(&keys, &payloads);
        for &k in &keys {
            assert_eq!(t.remove(k), Some(1));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.lower_bound_entry(0), None);
        assert_eq!(t.range_sum(0, u64::MAX), 0);
    }

    #[test]
    fn for_each_in_walks_segments_and_skips_tombstones() {
        let mut t = DynamicFitingTree::new();
        let mut oracle = BTreeMap::new();
        // Two widely separated clusters force multiple segments; removes
        // leave tombstones in main data, churn leaves entries in buffers.
        for i in 0..15_000u64 {
            let k =
                if i % 2 == 0 { splitmix(i) % 100_000 } else { 1 << 40 | (splitmix(i) % 100_000) };
            t.insert(k, i);
            oracle.insert(k, i);
            if i % 4 == 0 {
                let dk = if i % 8 == 0 {
                    splitmix(i ^ 0x99) % 100_000
                } else {
                    1 << 40 | (splitmix(i ^ 0x99) % 100_000)
                };
                assert_eq!(t.remove(dk), oracle.remove(&dk), "remove {dk}");
            }
        }
        assert!(t.num_segments() > 1, "clusters must split segments");
        for (lo, hi) in [
            (0u64, 100_000u64),
            (50_000, 1 << 40),
            ((1 << 40) - 5, (1 << 40) + 100_000),
            (0, u64::MAX),
        ] {
            let mut got = Vec::new();
            t.for_each_in(lo, hi, &mut |k, v| got.push((k, v)));
            let want: Vec<(u64, u64)> = oracle.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "window [{lo}, {hi})");
        }
        // Empty and inverted windows visit nothing.
        t.for_each_in(10, 10, &mut |_, _| panic!("empty window"));
        t.for_each_in(20, 10, &mut |_, _| panic!("inverted window"));
    }

    #[test]
    fn compact_drops_tombstones_everywhere() {
        let keys: Vec<u64> = (0..40_000).map(|i| i * 3).collect();
        let payloads = vec![1u64; keys.len()];
        let mut t = DynamicFitingTree::bulk_load(&keys, &payloads);
        for i in 0..20_000u64 {
            t.remove(i * 6);
        }
        for i in 0..3_000u64 {
            t.insert(i * 6 + 1, 2);
        }
        let expect_sum = t.range_sum(0, u64::MAX);
        t.compact();
        assert_eq!(t.len(), 23_000);
        assert_eq!(t.range_sum(0, u64::MAX), expect_sum, "compaction preserves content");
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(3), Some(1));
        assert_eq!(t.get(1), Some(2));
    }
}
