//! Sharded serving: partition one dataset behind a fence-routed
//! `ShardedEngine`, compare it with the shared-everything engine through
//! the same honest throughput harness, and batch lookups across shards in
//! parallel.
//!
//! Run with: `cargo run --release --example sharded_serving`

use sosd::bench::mt::{measure_batched_throughput, measure_engine_throughput, thread_sweep};
use sosd::bench::registry::{EngineSpec, Family};
use sosd::core::{QueryEngine, SearchStrategy};
use sosd::datasets::{make_workload, DatasetId};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. A dataset and a present-key lookup stream (the paper's workload
    //    design), plus its expected payload checksum.
    let workload = make_workload(DatasetId::Amzn, 400_000, 80_000, 42);
    let (lookups, expected_checksum) = (workload.lookups, workload.expected_checksum);
    let data = Arc::new(workload.data);
    println!("dataset: {} keys, {} lookups", data.len(), lookups.len());

    // 2. A sharded engine from a serializable spec: 8 key-range partitions,
    //    each serving its own RMI. The spec JSON is what a deployment would
    //    store.
    let spec = EngineSpec::Sharded { shards: 8, inner: Family::Rmi.default_spec::<u64>() };
    let engine = spec.sharded_engine(&data, SearchStrategy::Binary).expect("spec builds");
    println!(
        "engine: {} ({} shards, fences {:?}...)\nspec:   {}",
        engine.name(),
        engine.num_shards(),
        &engine.fences()[..engine.fences().len().min(3)],
        serde_json::to_string(&spec).expect("serializes"),
    );

    // 3. The full QueryEngine contract, routed across shards: point gets,
    //    lower bounds, and ranges stitched over shard boundaries.
    let present = lookups[0];
    assert!(engine.get(present).is_some());
    let (lo, hi) = (data.key(data.len() / 2), data.key(data.len() / 2 + 12));
    println!(
        "range [{lo}, {hi}) -> {} entries, payload sum {:#x}",
        engine.range(lo, hi).len(),
        engine.range_sum(lo, hi)
    );

    // 4. Batched lookups: serial (shard-grouped) and parallel (shard groups
    //    fanned across a scoped pool). Both must reproduce the workload
    //    checksum exactly.
    for (label, results) in [
        ("get_batch", engine.lookup_batch(&lookups)),
        ("par_get_batch", engine.par_lookup_batch(&lookups)),
    ] {
        let sum = results.into_iter().fold(0u64, |a, r| a.wrapping_add(r.unwrap_or(0)));
        assert_eq!(sum, expected_checksum);
        println!("{label:>14}: checksum {sum:#x} ok");
    }

    // 5. Sharded vs shared-everything through the same measurement loop
    //    (per-worker clocks; surplus workers skipped).
    let unsharded = EngineSpec::Single(Family::Rmi.default_spec::<u64>())
        .engine(&data, SearchStrategy::Binary)
        .expect("builds");
    let budget = Duration::from_millis(150);
    let threads = *thread_sweep().last().expect("non-empty");
    let flat = measure_engine_throughput(unsharded.as_ref(), &lookups, threads, false, budget);
    let routed = measure_engine_throughput(&engine, &lookups, threads, false, budget);
    let fanned = measure_batched_throughput(&engine.parallel(), &lookups, 1024, budget);
    println!(
        "\nthroughput @ {} threads: shared-everything {:.2} M/s | sharded point {:.2} M/s | \
         par batch {:.2} M/s",
        flat.threads,
        flat.lookups_per_sec / 1e6,
        routed.lookups_per_sec / 1e6,
        fanned.lookups_per_sec / 1e6,
    );
}
