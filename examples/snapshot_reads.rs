//! Consistent point-in-time snapshots: pin a `PinnedView` over a churning
//! write-behind engine, show its reads frozen at pin time while the live
//! engine moves on, then use content hashes to fingerprint-compare two
//! replicas and audit a cold spool.
//!
//! Run with: `cargo run --release --example snapshot_reads`

use sosd::bench::registry::{DeltaKind, Family};
use sosd::core::writebehind::BaseFactory;
use sosd::core::{
    MergeMode, MergePolicy, QueryEngine, SearchStrategy, SortedData, StaticEngine,
    WriteBehindEngine,
};
use std::sync::Arc;

fn base_factory() -> BaseFactory<u64> {
    Arc::new(|d: Arc<SortedData<u64>>| {
        let index = Family::Pgm.default_builder::<u64>().build_boxed(&d)?;
        Ok(Box::new(StaticEngine::with_strategy(index, d, SearchStrategy::Binary))
            as Box<dyn QueryEngine<u64>>)
    })
}

fn build(policy: MergePolicy) -> WriteBehindEngine<u64> {
    let keys: Vec<u64> = (0..100_000u64).map(|i| i * 8).collect();
    let payloads: Vec<u64> = keys.iter().map(|&k| k / 8).collect();
    let data = Arc::new(SortedData::with_payloads(keys, payloads).expect("sorted input"));
    WriteBehindEngine::with_policy(
        data,
        base_factory(),
        DeltaKind::BTree.factory(),
        4_096,
        MergeMode::Sync,
        policy,
    )
    .expect("engine builds")
}

fn main() {
    // 1. A leveled write-behind engine over 100k keys, with some churn so
    //    the stack holds a base, frozen runs, and a part-full delta.
    let engine = build(MergePolicy::leveled(4, 2));
    for i in 0..10_000u64 {
        engine.insert(800_000 + i * 2, i);
    }
    engine.remove(0);
    println!(
        "live engine: epoch {}, {} entries, {} merges so far",
        engine.epoch(),
        engine.len(),
        engine.merges_completed()
    );

    // 2. snapshot() pins the current generation: a few Arc clones plus one
    //    delta copy. No stop-the-world, no data copy.
    let pin = engine.snapshot();
    println!(
        "pinned view: epoch {}, {} entries, {} frozen runs, {} delta entries, base hash {:#018x}",
        pin.epoch(),
        pin.len(),
        pin.run_count(),
        pin.delta_len(),
        pin.base_hash()
    );
    let at_pin_len = pin.len();
    let at_pin_missing = pin.get(0);
    let at_pin_present = pin.get(800_000);

    // 3. Churn the live engine straight through several merges. The pin
    //    keeps answering from the pin-time mapping.
    engine.insert(0, 999);
    for i in 0..20_000u64 {
        engine.insert(900_000 + i * 2, i);
    }
    println!(
        "after churn: live epoch {} len {} | pinned epoch {} len {} (unchanged: {})",
        engine.epoch(),
        engine.len(),
        pin.epoch(),
        pin.len(),
        pin.len() == at_pin_len
    );
    assert_eq!(pin.get(0), at_pin_missing, "the pin must not see the post-pin insert of key 0");
    assert_eq!(pin.get(800_000), at_pin_present);
    assert_eq!(engine.get(0), Some(999), "the live engine must see it");
    println!(
        "pin.get(0) = {:?} (removed before the pin) vs live get(0) = {:?}",
        pin.get(0),
        engine.get(0)
    );

    // 4. Root fingerprints: replicas that converged to the same logical
    //    state hash identically, whatever their physical layout. A flat
    //    replica replaying the same ops in a different order agrees with
    //    the leveled engine above.
    let replica = build(MergePolicy::Flat);
    for i in (0..20_000u64).rev() {
        replica.insert(900_000 + i * 2, i);
    }
    for i in (0..10_000u64).rev() {
        replica.insert(800_000 + i * 2, i);
    }
    replica.insert(0, 999);
    println!(
        "fingerprints: leveled {:#018x} vs flat replica {:#018x} (equal: {})",
        engine.fingerprint(),
        replica.fingerprint(),
        engine.fingerprint() == replica.fingerprint()
    );
    assert_eq!(engine.fingerprint(), replica.fingerprint());

    // 5. Pins are cheap and counted; dropping the last one lets retired
    //    generations reclaim.
    let second = pin.clone();
    println!("active pins: {} (pin + clone)", engine.active_pins());
    drop(second);
    drop(pin);
    println!("active pins after dropping both: {}", engine.active_pins());

    // 6. Content hashes on disk: spool the stack, then audit the cold
    //    files against the manifest's hash lines.
    let dir = std::env::temp_dir().join(format!("sosd-snapshot-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool dir");
    let keys: Vec<u64> = (0..50_000u64).map(|i| i * 4).collect();
    let data = Arc::new(SortedData::new(keys).expect("sorted input"));
    let spooled = WriteBehindEngine::with_spool(
        data,
        base_factory(),
        DeltaKind::BTree.factory(),
        2_048,
        MergeMode::Sync,
        MergePolicy::leveled(4, 2),
        &dir,
        4096,
    )
    .expect("spooled engine builds");
    for i in 0..6_000u64 {
        spooled.insert(i * 4 + 1, i);
    }
    spooled.force_merge();
    drop(spooled);

    let audit = WriteBehindEngine::<u64>::verify_spool(&dir).expect("cold spool verifies");
    println!("spool audit: epoch {}, {} files re-hashed:", audit.epoch, audit.hashed);
    for (file, hash) in &audit.files {
        println!("  {file}  {hash:#018x}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
