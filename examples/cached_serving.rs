//! Cached serving: put a bounded hot-key result cache in front of a
//! serving engine, watch it win under Zipf-skewed reads, and compose it
//! over the write-behind tier without ever serving a stale payload.
//!
//! Run with: `cargo run --release --example cached_serving`

use sosd::bench::registry::{DeltaKind, EngineSpec, Family};
use sosd::core::cache::CachedEngine;
use sosd::core::dynamic::Op;
use sosd::core::{MergeMode, QueryEngine, SearchStrategy, SortedData};
use sosd::datasets::{generate_mixed, DatasetId, MixedConfig, ReadSkew};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. A Zipf(1.1)-skewed pure-lookup stream over an amzn-shaped dataset
    //    (the YCSB-style hot-key traffic the cache exists for).
    let cfg = MixedConfig {
        bulk_fraction: 1.0,
        insert_fraction: 0.0,
        delete_fraction: 0.0,
        range_fraction: 0.0,
        range_span_keys: 0,
        read_skew: ReadSkew::Zipf(1.1),
    };
    let w = generate_mixed(DatasetId::Amzn, 400_000, 200_000, cfg, 42);
    let lookups: Vec<u64> = w
        .ops
        .iter()
        .filter_map(|op| if let Op::Lookup(k) = op { Some(*k) } else { None })
        .collect();
    let data = Arc::new(
        SortedData::with_payloads(w.bulk_keys.clone(), w.bulk_payloads.clone()).expect("sorted"),
    );
    println!("dataset: {} keys, {} zipf(1.1) lookups", data.len(), lookups.len());

    // 2. A cached engine from a serializable spec: an RMI fronted by a
    //    32k-entry, 8-stripe CLOCK cache. The spec JSON is what a
    //    deployment would store.
    let inner_spec = EngineSpec::Single(Family::Rmi.default_spec::<u64>());
    let spec = EngineSpec::Cached {
        capacity: 32_768,
        stripes: 8,
        negative: false,
        inner: Box::new(inner_spec.clone()),
    };
    let cached = spec.cached_engine(&data, SearchStrategy::Binary).expect("spec builds");
    println!(
        "engine: {} (capacity {}, {} stripes)\nspec:   {}",
        cached.name(),
        cached.capacity(),
        cached.num_stripes(),
        serde_json::to_string(&spec).expect("serializes"),
    );

    // 3. Cached vs uncached on the identical stream, checksum-validated.
    let uncached = inner_spec.engine(&data, SearchStrategy::Binary).expect("builds");
    let run = |engine: &dyn QueryEngine<u64>| -> (f64, u64) {
        let t = Instant::now();
        let mut sum = 0u64;
        for &k in &lookups {
            sum = sum.wrapping_add(engine.get(k).expect("present key"));
        }
        (lookups.len() as f64 / t.elapsed().as_secs_f64() / 1e6, sum)
    };
    run(uncached.as_ref()); // warm
    let (base_mops, base_sum) = run(uncached.as_ref());
    run(&cached); // warm pass fills the cache
    cached.reset_stats();
    let (cached_mops, cached_sum) = run(&cached);
    assert_eq!(cached_sum, base_sum, "the cache must be invisible to results");
    println!(
        "\nthroughput: uncached {base_mops:.2} M/s | cached {cached_mops:.2} M/s \
         ({:.2}x, {:.1}% hits)",
        cached_mops / base_mops,
        cached.hit_rate() * 100.0,
    );

    // 4. Composition over the write tier: the cached write path forwards
    //    the insert first and invalidates second, so a read after a write
    //    can never resurrect the old payload — even while a background
    //    merge rebuilds the base underneath.
    let wb_spec = EngineSpec::WriteBehind {
        shards: 1,
        inner: Family::Rmi.default_spec::<u64>(),
        delta: DeltaKind::BTree,
        merge_threshold: 4_096,
        policy: sosd::core::MergePolicy::Flat,
    };
    let wb = wb_spec
        .writebehind_engine(&data, SearchStrategy::Binary, MergeMode::Background)
        .expect("builds");
    let cached_wb = CachedEngine::new(wb, 32_768, 8).expect("cache builds");
    let hot = lookups[0];
    let before = cached_wb.get(hot).expect("present");
    cached_wb.insert(hot, before ^ 0xDEAD_BEEF); // overwrite a cached key
    assert_eq!(cached_wb.get(hot), Some(before ^ 0xDEAD_BEEF), "no stale hit");
    for i in 0..8_192u64 {
        let filler = i * 2 + 1;
        if filler != hot {
            cached_wb.insert(filler, i); // cross the merge threshold
        }
    }
    cached_wb.inner().wait_for_merges();
    assert_eq!(cached_wb.get(hot), Some(before ^ 0xDEAD_BEEF), "exact across merges");
    println!(
        "write-behind composition: {} ({} merges, overwrite visible immediately)",
        cached_wb.name(),
        cached_wb.inner().merges_completed(),
    );
}
