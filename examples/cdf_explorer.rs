//! Scenario: explore why a dataset is easy or hard to learn.
//!
//! Renders an ASCII CDF of each dataset (the Figure 6 view), measures local
//! non-linearity, and relates it to the segment counts a PGM needs and the
//! knots a RadixSpline needs — osm's Hilbert-curve erraticness shows up
//! directly as an order-of-magnitude jump in model complexity.
//!
//! Run with: `cargo run --release --example cdf_explorer`

use sosd::core::SortedData;
use sosd::datasets::{registry::generate_u64, DatasetId};
use sosd::pgm::fit_pla;
use sosd::radix_spline::fit_spline;

/// Mean relative deviation of window midpoints from local linearity.
fn local_nonlinearity(keys: &[u64], window: usize) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for chunk in keys.chunks_exact(window) {
        let lo = chunk[0] as f64;
        let hi = chunk[window - 1] as f64;
        if hi <= lo {
            continue;
        }
        let mid = chunk[window / 2] as f64;
        total += ((mid - (lo + hi) / 2.0) / (hi - lo)).abs();
        count += 1;
    }
    total / count.max(1) as f64
}

fn ascii_cdf(data: &SortedData<u64>, width: usize, height: usize) -> Vec<String> {
    let samples = data.cdf_samples(width);
    let min = data.min_key() as f64;
    let max = data.max_key() as f64;
    let mut grid = vec![vec![' '; width]; height];
    for &(key, pos) in &samples {
        let kx = (key as f64 - min) / (max - min).max(1.0);
        let col = ((kx * (width - 1) as f64) as usize).min(width - 1);
        let row = height - 1 - ((pos * (height - 1) as f64) as usize).min(height - 1);
        grid[row][col] = '*';
    }
    grid.into_iter().map(|r| r.into_iter().collect()).collect()
}

fn main() {
    let n = 200_000;
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>14}",
        "dataset", "nonlinearity", "PGM segs", "RS knots", "distinct keys"
    );
    for id in DatasetId::REAL_WORLD {
        let data = generate_u64(id, n, 42);
        // Distinct (key, rank) pairs, as the learned indexes see them.
        let mut xs: Vec<u64> = Vec::new();
        let mut ys: Vec<u64> = Vec::new();
        for (i, &k) in data.keys().iter().enumerate() {
            if xs.last() != Some(&k) {
                xs.push(k);
                ys.push(i as u64);
            }
        }
        let eps = 64;
        let segments = fit_pla(&xs, &ys, eps).len();
        let knots = fit_spline(&xs, &ys, eps).len();
        println!(
            "{:<8} {:>14.5} {:>12} {:>12} {:>14}",
            id.name(),
            local_nonlinearity(data.keys(), 64),
            segments,
            knots,
            xs.len()
        );
    }

    println!("\namzn CDF (keys left-to-right, CDF bottom-to-top):");
    let data = generate_u64(DatasetId::Amzn, 50_000, 42);
    for line in ascii_cdf(&data, 72, 16) {
        println!("  {line}");
    }
    println!(
        "\n(erratic local structure — high nonlinearity — is what makes osm need \
         far more segments/knots at the same error bound; Section 4.2 of the paper)"
    );
}
