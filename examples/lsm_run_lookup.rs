//! Scenario: learned indexes inside an LSM-style storage engine.
//!
//! The paper motivates read-only learned indexes with write-heavy systems
//! that serve reads from immutable sorted runs (RocksDB-style LSM trees).
//! This example builds a miniature engine: several immutable sorted runs of
//! (timestamp, event-id) pairs, each indexed by a RadixSpline (chosen for
//! its single-pass, constant-cost-per-element build — exactly the property
//! an ingest pipeline needs), plus point and range reads across runs.
//!
//! Run with: `cargo run --release --example lsm_run_lookup`

use sosd::core::{Index, IndexBuilder, SearchStrategy, SortedData};
use sosd::datasets::{registry::generate_u64, DatasetId};
use sosd::radix_spline::{RsBuilder, RsIndex};
use std::time::Instant;

/// An immutable sorted run with its learned index.
struct Run {
    data: SortedData<u64>,
    index: RsIndex<u64>,
}

impl Run {
    fn new(keys: Vec<u64>) -> Run {
        let data = SortedData::new(keys).expect("sorted run");
        let start = Instant::now();
        let index = RsBuilder { eps: 32, radix_bits: 16 }.build(&data).expect("rs builds");
        println!(
            "  built run: {} keys, index {:.1} KB in {:.1} ms (single pass)",
            data.len(),
            Index::<u64>::size_bytes(&index) as f64 / 1024.0,
            start.elapsed().as_secs_f64() * 1e3
        );
        Run { data, index }
    }

    /// Point read: payload of the newest record equal to `key`.
    fn get(&self, key: u64) -> Option<u64> {
        let bound = self.index.search_bound(key);
        let pos = SearchStrategy::Binary.find(self.data.keys(), key, bound);
        (pos < self.data.len() && self.data.key(pos) == key).then(|| self.data.payload(pos))
    }

    /// Range read: sum of payloads for keys in `[lo, hi)` (e.g. an
    /// analytics window over event timestamps).
    fn range_sum(&self, lo: u64, hi: u64) -> (u64, usize) {
        let b = self.index.search_bound(lo);
        let mut pos = SearchStrategy::Binary.find(self.data.keys(), lo, b);
        let mut sum = 0u64;
        let mut count = 0usize;
        while pos < self.data.len() && self.data.key(pos) < hi {
            sum = sum.wrapping_add(self.data.payload(pos));
            count += 1;
            pos += 1;
        }
        (sum, count)
    }
}

/// The engine: newest run first, reads check runs in order (no tombstones
/// in this toy).
struct Engine {
    runs: Vec<Run>,
}

impl Engine {
    fn get(&self, key: u64) -> Option<u64> {
        self.runs.iter().find_map(|r| r.get(key))
    }
}

fn main() {
    // Three flushed memtables' worth of wiki-style edit timestamps, as an
    // append-mostly workload would produce them.
    println!("flushing three immutable runs:");
    let runs: Vec<Run> = (0..3)
        .map(|gen| Run::new(generate_u64(DatasetId::Wiki, 200_000, 7 + gen).keys().to_vec()))
        .collect();
    let engine = Engine { runs };

    // Point reads across generations.
    let newest = &engine.runs[0];
    let probe = newest.data.key(123_456);
    let hit = engine.get(probe);
    assert!(hit.is_some());
    println!("\npoint read {probe}: payload {:?}", hit.unwrap());

    // A time-window scan on the oldest run.
    let old = &engine.runs[2];
    let lo = old.data.key(old.data.len() / 4);
    let hi = old.data.key(old.data.len() / 2);
    let start = Instant::now();
    let (sum, count) = old.range_sum(lo, hi);
    println!(
        "range [{lo}, {hi}): {count} events, payload sum {sum:#x} in {:.1} us",
        start.elapsed().as_secs_f64() * 1e6
    );

    // Throughput check: a read-mostly phase over the newest run.
    let lookups: Vec<u64> =
        (0..200_000).map(|i| newest.data.key((i * 37) % newest.data.len())).collect();
    let start = Instant::now();
    let mut checksum = 0u64;
    for &k in &lookups {
        checksum = checksum.wrapping_add(engine.get(k).unwrap_or(0));
    }
    let ns = start.elapsed().as_nanos() as f64 / lookups.len() as f64;
    assert_ne!(checksum, 0);
    println!("\nread phase: {:.0} ns/read across the run stack", ns);
}
