//! Scenario: a learned index serving an LSM-style write-behind engine.
//!
//! The paper motivates read-only learned indexes with write-heavy systems
//! that serve reads from immutable sorted runs (RocksDB-style LSM trees).
//! Earlier revisions of this example hand-rolled that engine out of raw
//! runs; the workspace now ships it as `sosd_core::WriteBehindEngine`:
//! an immutable base indexed by a RadixSpline (chosen for its single-pass,
//! constant-cost-per-element build — exactly the property a merge pipeline
//! needs), a mutable B+Tree delta absorbing the write stream, and
//! threshold-triggered background merges that rebuild the base while
//! readers keep serving from the previous generation.
//!
//! Run with: `cargo run --release --example lsm_run_lookup`

use sosd::bench::registry::{DeltaKind, EngineSpec, IndexParams, IndexSpec};
use sosd::core::{MergeMode, MergePolicy, QueryEngine, SearchStrategy, SortedData};
use sosd::datasets::{registry::generate_u64, DatasetId};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // The first flushed run: wiki-style edit timestamps, as an append-mostly
    // ingest pipeline would produce them.
    let base = generate_u64(DatasetId::Wiki, 400_000, 7);
    let data = Arc::new(SortedData::new(base.keys().to_vec()).expect("sorted run"));

    // Engine config — serializable, like every registry spec:
    //   {"family":"writebehind","params":{"inner":{"family":"RS",...},
    //    "delta":"btree","merge_threshold":8000,
    //    "policy":"leveled","fanout":4,"max_levels":2}}
    // (Leveled specs may also carry "filter", "rewrite_live_pct", and
    // "read_amp_watermark"; the defaults — bloom filters, triggers off —
    // are omitted from the JSON.)
    // The leveled policy is the true LSM shape: each frozen delta becomes
    // an immutable run with its own RadixSpline and a per-run Bloom
    // filter, and compaction folds level-locally instead of rebuilding
    // the whole base per cycle.
    let spec = EngineSpec::WriteBehind {
        shards: 1,
        inner: IndexSpec::new(IndexParams::Rs { eps: 32, radix_bits: 16 }),
        delta: DeltaKind::BTree,
        merge_threshold: 8_000,
        policy: MergePolicy::leveled(4, 2),
    };
    println!("spec: {}", serde_json::to_string(&spec).expect("spec serializes"));

    let t = Instant::now();
    let engine = spec
        .writebehind_engine(&data, SearchStrategy::Binary, MergeMode::Background)
        .expect("engine builds");
    println!(
        "built base generation: {} keys, {:.1} KB of index+delta in {:.1} ms (single pass)\n",
        engine.len(),
        engine.size_bytes() as f64 / 1024.0,
        t.elapsed().as_secs_f64() * 1e3
    );

    // Ingest phase: two memtables' worth of new events stream into the
    // delta; each threshold crossing freezes the delta and rebuilds the
    // base on a background thread while reads continue.
    let incoming = generate_u64(DatasetId::Wiki, 120_000, 99);
    let t = Instant::now();
    for (i, &key) in incoming.keys().iter().enumerate() {
        engine.insert(key, 0xE0000000 + i as u64);
    }
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
    engine.wait_for_merges();
    println!(
        "ingest: {} writes in {ingest_ms:.1} ms ({:.0} ns/write), \
         {} background merges + {} compactions, {} runs stacked, epoch {} \
         (delta holds {} entries)",
        incoming.len(),
        ingest_ms * 1e6 / incoming.len() as f64,
        engine.merges_completed(),
        engine.compactions(),
        engine.run_count(),
        engine.epoch(),
        engine.delta_len(),
    );
    // Churn: tombstoned deletes shadow their keys until a compaction folds
    // them onto the records they hide.
    let victim = data.key(99);
    let removed = engine.remove(victim);
    assert!(removed.is_some() && engine.get(victim).is_none());
    println!("tombstoned delete of {victim}: payload was {removed:?}, reads now miss");
    // A final explicit compaction (an operator "flush"), draining what the
    // threshold has not yet claimed.
    engine.force_merge();
    engine.wait_for_merges();
    println!(
        "after final compaction: epoch {}, base generation {} records, {} visible \
         (merges collapse overwritten duplicate groups), delta empty: {}\n",
        engine.epoch(),
        engine.base_len(),
        engine.len(),
        engine.delta_len() == 0,
    );

    // Point reads across both tiers.
    let probe_base = data.key(123_456);
    let probe_delta = incoming.key(60_000);
    assert!(engine.get(probe_base).is_some());
    assert!(engine.get(probe_delta).is_some());
    println!("point read {probe_base} (base tier):  payload {:?}", engine.get(probe_base));
    println!("point read {probe_delta} (ingested):   payload {:?}", engine.get(probe_delta));

    // A time-window scan stitching delta entries over the base.
    let lo = data.key(data.len() / 4);
    let hi = data.key(data.len() / 2);
    let t = Instant::now();
    let window = engine.range(lo, hi);
    println!(
        "range [{lo}, {hi}): {} events, payload sum {:#x} in {:.1} us\n",
        window.len(),
        window.iter().fold(0u64, |a, e| a.wrapping_add(e.1)),
        t.elapsed().as_secs_f64() * 1e6
    );

    // Read phase: batched lookups keep the base's interleaved-prefetch
    // path hot for the non-deltaed majority.
    let lookups: Vec<u64> = (0..200_000).map(|i| data.key((i * 37) % data.len())).collect();
    let t = Instant::now();
    let hits = engine.lookup_batch(&lookups);
    let ns = t.elapsed().as_nanos() as f64 / lookups.len() as f64;
    let checksum = hits.iter().fold(0u64, |a, r| a.wrapping_add(r.unwrap_or(0)));
    assert_ne!(checksum, 0);
    println!("read phase: {ns:.0} ns/read batched across the write-behind tiers");
}
