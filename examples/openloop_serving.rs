//! Open-loop serving: push a Poisson+burst request schedule through the
//! wave-batching `RequestScheduler`, compare it against a naive
//! one-request-per-dispatch front end, and watch the negative-caching fast
//! path answer hot keys at submit time.
//!
//! Run with: `cargo run --release --example openloop_serving`

use sosd::bench::registry::{EngineSpec, Family, SchedulerSpec};
use sosd::core::serve::oracle_checksum;
use sosd::core::{RequestScheduler, SearchStrategy};
use sosd::datasets::{
    generate_openloop, generate_u64, DatasetId, OpenLoopConfig, OpenLoopSchedule,
};
use std::sync::Arc;
use std::time::Instant;

/// Submit every request back-to-back (saturation mode) and report
/// sustained kreq/s, shed %, fast-path %, and tail latency. Pair it with
/// a queue sized to the schedule for a shed-free drain measurement, or a
/// small bounded queue to watch admission control work.
fn drive(sched: &RequestScheduler<u64>, schedule: &OpenLoopSchedule<u64>) -> f64 {
    let t = Instant::now();
    for &k in &schedule.keys {
        let _ = sched.submit(k); // a shed is admission control, not an error
    }
    sched.wait_idle();
    let elapsed = t.elapsed().as_secs_f64();
    let stats = sched.stats();
    let lat = sched.latency();
    let sustained = stats.completed as f64 / elapsed / 1e3;
    println!(
        "  sustained {sustained:>5.0} kreq/s | shed {:>4.1}% | fast-path {:>4.1}% | \
         avg wave {:>4.1} | p50 {:>4}µs p99 {:>4}µs p999 {:>4}µs",
        stats.shed as f64 / stats.submitted as f64 * 100.0,
        stats.fast_hits as f64 / stats.completed.max(1) as f64 * 100.0,
        stats.avg_wave(),
        lat.p50() / 1_000,
        lat.p99() / 1_000,
        lat.p999() / 1_000,
    );
    sustained
}

fn main() {
    // 1. An amzn-shaped dataset and a deterministic open-loop schedule:
    //    Poisson arrivals with ×4 burst phases, Zipf(1.1) key skew, and 5%
    //    guaranteed-miss keys (the traffic shape closed-loop benchmarks
    //    cannot represent).
    let data = Arc::new(generate_u64(DatasetId::Amzn, 400_000, 42));
    let misses: Vec<u64> =
        data.keys().windows(2).filter(|w| w[0] + 1 < w[1]).map(|w| w[0] + 1).take(256).collect();
    let schedule = generate_openloop(data.keys(), &misses, 200_000, OpenLoopConfig::default(), 42);
    println!(
        "dataset: {} keys | schedule: {} requests, {} ({:.0} kreq/s offered)\n",
        data.len(),
        schedule.len(),
        schedule.label,
        schedule.offered_rate_per_s() / 1e3,
    );

    // 2. Wave batching vs naive dispatch over a plain RMI, drain mode:
    //    the whole schedule is submitted into a queue roomy enough to
    //    never shed, so the measured rate is the serving machinery's
    //    saturation service rate (ext09's gated comparison). The naive
    //    config hands every request to a worker alone (`get_batch` of
    //    one); 32-request waves amortize the queue handoff and let the
    //    engine's interleaved-prefetch batch path work across independent
    //    requests.
    let rmi_spec = EngineSpec::Single(Family::Rmi.default_spec::<u64>());
    let naive_spec = SchedulerSpec::naive(2, schedule.len());
    let wave_spec =
        SchedulerSpec { wave_size: 32, linger_us: 200, workers: 2, queue_cap: schedule.len() };
    println!("single RMI, naive {}", naive_spec.label());
    let naive_rate = drive(
        &naive_spec.scheduler(&rmi_spec, &data, SearchStrategy::Binary).expect("builds"),
        &schedule,
    );
    println!("single RMI, wave  {}", wave_spec.label());
    let wave_rate = drive(
        &wave_spec.scheduler(&rmi_spec, &data, SearchStrategy::Binary).expect("builds"),
        &schedule,
    );
    println!("  → waves sustain {:.2}x the naive rate\n", wave_rate / naive_rate);

    // 3. The negative-mode cache tier in front, this time behind a small
    //    bounded queue so overload is visible: the cache's `peek` becomes
    //    the scheduler's fast path, so hot keys — and hot *misses*, which
    //    negative mode caches — are answered at submit time without ever
    //    riding a wave (or risking a shed), while the queue sheds the
    //    cold-key overflow instead of buffering it without bound.
    let cached_spec = EngineSpec::Cached {
        capacity: 100_000,
        stripes: 8,
        negative: true,
        inner: Box::new(rmi_spec.clone()),
    };
    let bounded_spec = SchedulerSpec { queue_cap: 1024, ..wave_spec };
    println!("cached(negative) RMI, wave {}", bounded_spec.label());
    drive(
        &bounded_spec.scheduler(&cached_spec, &data, SearchStrategy::Binary).expect("builds"),
        &schedule,
    );

    // 4. Correctness spot-check: with a queue big enough to never shed,
    //    the scheduler's commutative result checksum must equal direct
    //    engine reads over the same keys.
    let roomy = SchedulerSpec { queue_cap: schedule.len(), ..wave_spec };
    let sched = roomy.scheduler(&cached_spec, &data, SearchStrategy::Binary).expect("builds");
    for &k in &schedule.keys {
        sched.submit(k).expect("roomy queue never sheds");
    }
    sched.wait_idle();
    assert_eq!(
        sched.stats().checksum,
        oracle_checksum(sched.engine().as_ref(), &schedule.keys),
        "scheduler answers must match direct gets"
    );
    println!(
        "\nchecksum validated: scheduler ≡ direct engine reads over {} requests",
        schedule.len()
    );
}
