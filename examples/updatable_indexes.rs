//! Scenario: a key-value store's in-memory index under live traffic.
//!
//! The paper benchmarks read-only structures and closes by pointing at the
//! next frontier: "as more learned index structures begin to support updates
//! [11, 13, 14], a benchmark against traditional indexes could be fruitful."
//! This example runs exactly that comparison end to end:
//!
//! 1. Bulk-load four updatable structures — ALEX (ref. \[11\]), the dynamic
//!    PGM (ref. \[13\]), the dynamic FITing-Tree (ref. \[14\]), and an
//!    insertable B+Tree — with half of a realistic dataset.
//! 2. Replay identical mixed read/write streams at increasing write
//!    intensity, checking all four structures return identical results.
//! 3. Print the throughput crossover: where model-based structures stop
//!    winning and pointer-based inserts take over.
//!
//! Finally, every structure is lifted into the unified `QueryEngine`
//! facade — the same serving interface the static indexes use — and probed
//! through `get`/`lower_bound`/`range`/`lookup_batch`, showing one API over
//! both index worlds.
//!
//! Run with: `cargo run --release --example updatable_indexes [dataset]`

use sosd::bench::dynamic::{run_mixed, DynFamily};
use sosd::core::QueryEngine;
use sosd::datasets::{generate_mixed, DatasetId, MixedConfig, ReadSkew};

fn main() {
    let dataset =
        std::env::args().nth(1).and_then(|s| DatasetId::parse(&s)).unwrap_or(DatasetId::Amzn);
    let n = 300_000;
    let num_ops = 200_000;
    println!(
        "live-traffic comparison on '{}' ({} seed keys, {} ops per stream)\n",
        dataset.name(),
        n,
        num_ops
    );

    println!("{:<22} {:>10} {:>10} {:>10} {:>10}", "", "0% writes", "10%", "50%", "90%");
    let mut lines: Vec<(String, Vec<f64>)> =
        DynFamily::ALL.iter().map(|f| (f.name().to_string(), Vec::new())).collect();

    for &insert_fraction in &[0.0, 0.1, 0.5, 0.9] {
        let cfg = MixedConfig {
            bulk_fraction: 0.5,
            insert_fraction,
            delete_fraction: 0.0,
            range_fraction: 0.05,
            range_span_keys: 50,
            read_skew: ReadSkew::Zipf(0.99),
        };
        let w = generate_mixed(dataset, n, num_ops, cfg, 42);
        let mut checksum = None;
        for (fi, &family) in DynFamily::ALL.iter().enumerate() {
            let r = run_mixed(family, &w.label, &w.bulk_keys, &w.bulk_payloads, &w.ops);
            match checksum {
                None => checksum = Some(r.checksum),
                Some(c) => assert_eq!(c, r.checksum, "{} diverged", r.family),
            }
            lines[fi].1.push(r.mops_per_s);
        }
    }

    for (name, mops) in &lines {
        print!("{name:<22}");
        for m in mops {
            print!(" {m:>9.2}M");
        }
        println!();
    }

    // Identify the read-heavy and write-heavy winners.
    let winner = |col: usize| -> &str {
        lines
            .iter()
            .max_by(|a, b| a.1[col].total_cmp(&b.1[col]))
            .map(|(n, _)| n.as_str())
            .unwrap_or("?")
    };
    println!("\nread-heavy winner: {}   write-heavy winner: {}", winner(0), winner(3));
    println!(
        "(all four structures returned byte-identical answers on every stream — \
         the dynamic analogue of the paper's payload-checksum validation)"
    );

    // The unified serving facade: the same QueryEngine interface the static
    // indexes expose, now over each updatable structure.
    let keys: Vec<u64> = (0..100_000u64).map(|i| i * 3).collect();
    let payloads: Vec<u64> = keys.iter().map(|&k| k ^ 0x5EED).collect();
    println!("\nQueryEngine facade over each dynamic structure ({} keys):", keys.len());
    for family in DynFamily::ALL {
        let engine = family.engine(&keys, &payloads);
        let hit = engine.get(300).expect("present key");
        assert_eq!(hit, 300 ^ 0x5EED);
        assert_eq!(engine.get(301), None, "absent key misses");
        let (next, _) = engine.lower_bound(301).expect("in range");
        let window = engine.range(300, 330);
        let batch = engine.lookup_batch(&[0, 1, 3, 299_997]);
        let hits = batch.iter().flatten().count();
        println!(
            "  {:<12} get(300)={hit:#06x}  lower_bound(301)={next}  \
             range[300,330)={} entries  batch hits {hits}/4  ({:.1} MB)",
            engine.name(),
            window.len(),
            engine.size_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
}
