//! Quickstart: build each learned index over a realistic dataset, run
//! lookups through the search-bound + last-mile pipeline, and compare
//! size / accuracy / latency.
//!
//! Run with: `cargo run --release --example quickstart`

use sosd::core::stats::log2_error_stats;
use sosd::core::{Index, IndexBuilder, SearchStrategy};
use sosd::datasets::{make_workload, DatasetId};
use sosd::pgm::PgmBuilder;
use sosd::radix_spline::RsBuilder;
use sosd::rmi::RmiBuilder;
use std::time::Instant;

fn main() {
    // 1. A dataset: 500k keys shaped like Amazon book-popularity data, with
    //    100k lookups drawn from the keys (the paper's workload design).
    let workload = make_workload(DatasetId::Amzn, 500_000, 100_000, 42);
    let data = &workload.data;
    println!(
        "dataset: {} keys in [{}, {}], {} lookups\n",
        data.len(),
        data.min_key(),
        data.max_key(),
        workload.lookups.len()
    );

    // 2. Build one index of each learned family.
    let rmi = RmiBuilder::default().build(data).expect("rmi builds");
    let pgm = PgmBuilder::default().build(data).expect("pgm builds");
    let rs = RsBuilder::default().build(data).expect("rs builds");

    // 3. Run the full lookup pipeline for each and report.
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "index", "size (KB)", "log2 error", "ns/lookup"
    );
    for index in [&rmi as &dyn Index<u64>, &pgm, &rs] {
        let stats = log2_error_stats(index, data, &workload.lookups[..10_000]);
        let start = Instant::now();
        let mut checksum = 0u64;
        for &key in &workload.lookups {
            let bound = index.search_bound(key);
            let pos = SearchStrategy::Binary.find(data.keys(), key, bound);
            checksum = checksum.wrapping_add(data.payload(pos));
        }
        let ns = start.elapsed().as_nanos() as f64 / workload.lookups.len() as f64;
        assert!(checksum != 0);
        println!(
            "{:<6} {:>10.1} {:>12.2} {:>12.1}",
            index.name(),
            index.size_bytes() as f64 / 1024.0,
            stats.mean_log2,
            ns
        );
    }

    // 4. The validity contract: bounds are correct even for absent keys.
    let absent = data.max_key() - 1;
    let bound = rmi.search_bound(absent);
    let lb = data.lower_bound(absent);
    assert!(bound.contains(lb));
    println!("\nabsent-key probe {absent}: bound [{}, {}] contains LB {lb}", bound.lo, bound.hi);
}
