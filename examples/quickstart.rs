//! Quickstart: serve lookups over each learned index through the unified
//! `QueryEngine` facade — point lookups, ordered queries, and the batched
//! path — with engines constructed from serializable `IndexSpec`s.
//!
//! Run with: `cargo run --release --example quickstart`

use sosd::bench::registry::Family;
use sosd::bench::timing::time_lookups_batched;
use sosd::core::{QueryEngine, SearchStrategy};
use sosd::datasets::{make_workload, DatasetId};
use std::sync::Arc;

fn main() {
    // 1. A dataset: 500k keys shaped like Amazon book-popularity data, with
    //    100k lookups drawn from the keys (the paper's workload design).
    let workload = make_workload(DatasetId::Amzn, 500_000, 100_000, 42);
    let (lookups, expected_checksum) = (workload.lookups, workload.expected_checksum);
    let data = Arc::new(workload.data);
    println!(
        "dataset: {} keys in [{}, {}], {} lookups\n",
        data.len(),
        data.min_key(),
        data.max_key(),
        lookups.len()
    );

    // 2. One engine per learned family, each built from a config-driven
    //    spec (print the spec JSON — this is what an experiment config or a
    //    serving deployment would store).
    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>9}",
        "index", "size (KB)", "ns/lookup", "ns/lookup b=16", "speedup"
    );
    for family in Family::LEARNED {
        let spec = family.default_spec::<u64>();
        let engine = spec.engine(&data, SearchStrategy::Binary).expect("spec builds");

        // One-at-a-time and batched timings through the same facade; both
        // must reproduce the workload's expected checksum.
        let scalar = time_lookups_batched(engine.as_ref(), &lookups, 1, 3);
        let batched = time_lookups_batched(engine.as_ref(), &lookups, 16, 3);
        assert_eq!(scalar.checksum, expected_checksum);
        assert_eq!(batched.checksum, expected_checksum);

        println!(
            "{:<6} {:>10.1} {:>12.1} {:>14.1} {:>8.2}x",
            family.name(),
            engine.size_bytes() as f64 / 1024.0,
            scalar.ns_per_lookup,
            batched.ns_per_lookup,
            scalar.ns_per_lookup / batched.ns_per_lookup,
        );
    }

    // 3. The ordered-map facade: point gets, lower bounds, and ranges with
    //    payloads — no search bounds or positions in sight.
    let engine = Family::Rmi
        .default_spec::<u64>()
        .engine(&data, SearchStrategy::Binary)
        .expect("rmi builds");
    let present = lookups[0];
    assert!(engine.get(present).is_some());

    let probe = data.max_key() - 1;
    match engine.lower_bound(probe) {
        Some((k, _)) => println!("\nlower_bound({probe}) = {k}"),
        None => println!("\nlower_bound({probe}) is past the last key"),
    }
    let lo = data.key(data.len() / 2);
    let hi = data.key(data.len() / 2 + 8);
    let window = engine.range(lo, hi);
    println!(
        "range [{lo}, {hi}) holds {} entries, payload sum {:#x}",
        window.len(),
        engine.range_sum(lo, hi)
    );

    // 4. Specs serialize — the config that built this engine:
    let spec_json = serde_json::to_string(&Family::Rmi.default_spec::<u64>()).expect("serializes");
    println!("\nengine spec: {spec_json}");
}
