//! Scenario: an "index advisor" that picks the right structure for *your*
//! data and memory budget.
//!
//! The paper's headline result is a Pareto analysis: which index gives the
//! fastest lookups at each size budget depends on the dataset. This example
//! runs the same analysis programmatically — auto-tuning an RMI (CDFShop
//! style), sweeping PGM/RS/BTree, and printing the Pareto-optimal choice
//! for a handful of memory budgets.
//!
//! Run with: `cargo run --release --example index_advisor [dataset]`

use sosd::bench::registry::Family;
use sosd::bench::runner::{pareto_rows, run_family_sweep, sweep_with_builders};
use sosd::bench::timing::TimingOptions;
use sosd::core::IndexBuilder;
use sosd::datasets::{make_workload, DatasetId};
use sosd::rmi::{auto_tune, TunerConfig};

fn main() {
    let dataset =
        std::env::args().nth(1).and_then(|s| DatasetId::parse(&s)).unwrap_or(DatasetId::Osm);
    let workload = make_workload(dataset, 300_000, 50_000, 1);
    println!("advising for dataset '{}' ({} keys)\n", dataset.name(), workload.data.len());

    // 1. CDFShop-style auto-tuning for the RMI: Pareto set over model types
    //    and branching factors.
    let tuner = TunerConfig {
        branches: vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16],
        probes: 5_000,
        max_configs: 5,
        ..TunerConfig::default()
    };
    let rmi_configs = auto_tune(&workload.data, &tuner);
    println!("auto-tuner picked {} RMI configurations:", rmi_configs.len());
    for c in &rmi_configs {
        println!("  {}", IndexBuilder::<u64>::describe(c));
    }

    // 2. Measure everything: tuned RMIs plus the standard sweeps.
    let opts = TimingOptions { repeats: 1, ..Default::default() };
    let mut rows = sweep_with_builders(
        dataset.name(),
        "RMI",
        rmi_configs
            .into_iter()
            .map(|b| Box::new(b) as Box<dyn sosd::bench::registry::DynBuilder<u64>>)
            .collect(),
        &workload,
        opts,
    );
    for family in [Family::Pgm, Family::Rs, Family::BTree, Family::Rbs] {
        rows.extend(run_family_sweep(dataset.name(), family, &workload, opts));
    }

    // 3. Report the Pareto front and answer budget queries.
    let front = pareto_rows(&rows);
    println!("\nPareto-optimal configurations (size -> latency):");
    for &i in &front {
        let r = &rows[i];
        println!(
            "  {:>10.1} KB -> {:>7.1} ns  {}",
            r.size_bytes as f64 / 1024.0,
            r.ns_per_lookup,
            r.config
        );
    }

    for budget_kb in [16.0, 128.0, 1024.0, 8192.0] {
        let best = front
            .iter()
            .map(|&i| &rows[i])
            .filter(|r| r.size_bytes as f64 / 1024.0 <= budget_kb)
            .min_by(|a, b| a.ns_per_lookup.total_cmp(&b.ns_per_lookup));
        match best {
            Some(r) => println!(
                "budget {budget_kb:>7.0} KB: use {} ({:.1} ns, {:.1} KB)",
                r.config,
                r.ns_per_lookup,
                r.size_bytes as f64 / 1024.0
            ),
            None => println!("budget {budget_kb:>7.0} KB: nothing fits — use binary search"),
        }
    }
}
