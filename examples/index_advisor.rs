//! Scenario: a self-tuning "index advisor" that picks the right structure
//! per key-range shard — and re-picks it as the workload drifts.
//!
//! The paper's headline result is that no single index family wins
//! everywhere: the right choice depends on the key distribution and the
//! workload. This example builds a deliberately mixed dataset (a linear
//! ramp, a duplicate-heavy run, and a uniform-random segment stitched into
//! one sorted array), trains a [`sosd::core::Advisor`] over a candidate
//! pool, and shows it picking *different* families for different shards.
//! It then wires the full self-tuning serving stack — advisor-driven
//! write-behind base under a hot-key cache — drives skewed traffic at it,
//! and retunes: the rebuild re-advises from the observed access mix and
//! hot-key histogram while the visible mapping stays untouched.
//!
//! Run with: `cargo run --release --example index_advisor`

use sosd::bench::registry::{DeltaKind, EngineSpec, Family};
use sosd::core::advisor::ObservabilityHub;
use sosd::core::util::splitmix64;
use sosd::core::{CachedEngine, MergeMode, QueryEngine, SortedData};
use std::sync::Arc;
use std::time::Instant;

/// One sorted array with three very different local shapes.
fn mixed_dataset(n: usize) -> Arc<SortedData<u64>> {
    let seg = n / 3;
    let mut keys: Vec<u64> = Vec::with_capacity(seg * 3);
    keys.extend((0..seg).map(|i| (1u64 << 40) + 3 * i as u64)); // linear ramp
    keys.extend((0..seg).map(|i| (2u64 << 40) + (i as u64 / 64) * 97)); // duplicate runs
    let mut random: Vec<u64> =
        (0..seg).map(|i| (3u64 << 40) + splitmix64(i as u64) % (16 * seg as u64)).collect();
    random.sort_unstable();
    keys.extend(random);
    Arc::new(SortedData::new(keys).expect("sorted non-empty keys"))
}

fn main() {
    let data = mixed_dataset(240_000);
    println!("advising over a mixed dataset of {} keys\n", data.len());

    // 1. Train the advisor once over a candidate pool. Training builds and
    //    times every candidate on a small synthetic grid, then fits one
    //    linear cost model per candidate; it never sees our dataset.
    let spec = EngineSpec::AutoTuned {
        shards: 6,
        candidates: [Family::Rmi, Family::Pgm, Family::Rbs, Family::Bs]
            .iter()
            .map(|f| f.default_spec::<u64>())
            .collect(),
    };
    let t = Instant::now();
    let advisor = Arc::new(spec.advisor::<u64>().expect("pool trains"));
    println!("trained 4-candidate cost model in {:.0}ms", t.elapsed().as_secs_f64() * 1e3);

    // 2. Advise: score every candidate per key-range shard, serve each
    //    shard from its winner.
    let plan = advisor.advise(&data, 6, &Default::default()).expect("advisor plans");
    println!("\nper-shard picks (cold — no traffic observed yet):");
    for (i, pick) in plan.picks.iter().enumerate() {
        let runner_up = pick.scores.get(1).map(|s| s.label.as_str()).unwrap_or("-");
        println!(
            "  shard {i}: {:<28} predicted {:>6.1} ns/lookup ({} keys; runner-up {})",
            pick.label, pick.predicted_ns, pick.shard_len, runner_up
        );
    }
    let probe = data.key(1_234);
    assert_eq!(plan.engine.get(probe), Some(data.payload_sum_at(probe)));

    // 3. The self-tuning serving stack: the same advisor drives the
    //    write-behind base factory (re-advising at every rebuild), with a
    //    hot-key cache in front publishing its histogram into the hub.
    let hub = Arc::new(ObservabilityHub::<u64>::new());
    let wb = spec
        .advised_writebehind_engine(&data, DeltaKind::BTree, 1 << 20, MergeMode::Sync, &hub)
        .expect("stack builds");
    let cached = CachedEngine::new(wb, 4_096, 8).expect("cache wraps");

    // Drive write-heavy churn plus a skewed read mix concentrated on the
    // duplicate-heavy segment.
    for i in 0..20_000u64 {
        cached.insert((2u64 << 40) + 7 * i + 1, i);
    }
    for i in 0..60_000usize {
        let hot = (2u64 << 40) + (splitmix64(i as u64) % 512 / 64) * 97;
        cached.get(hot);
    }
    println!(
        "\nobserved traffic: {:?}, cache hit rate {:.0}%",
        cached.inner().access_mix(),
        cached.hit_rate() * 100.0
    );

    // 4. Retune: publish the hot-key histogram and operation mix, rebuild
    //    the base, re-advise per shard of the *merged* data.
    let before = cached.get((2u64 << 40) + 8);
    cached.retune(&hub);
    assert_eq!(cached.get((2u64 << 40) + 8), before, "retune never changes the mapping");
    println!("\nper-shard picks after retune #{} (merged data + observed mix):", hub.retunes());
    for (i, label) in hub.last_picks().iter().enumerate() {
        println!("  shard {i}: {label}");
    }
    println!("\nretune done; the generation swap kept every visible key identical.");
}
