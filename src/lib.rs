//! # sosd
//!
//! A benchmark suite and library for learned index structures — a
//! from-scratch Rust reproduction of *Benchmarking Learned Indexes*
//! (Marcus, Kipf, van Renen, Stoian, Misra, Kemper, Neumann, Kraska;
//! VLDB 2020) and its SOSD benchmark.
//!
//! ## What's inside
//!
//! * Three learned indexes: [`rmi`] (recursive model index with a
//!   CDFShop-style auto-tuner), [`pgm`] (piecewise geometric model index
//!   over an optimal one-pass ε-PLA), and [`radix_spline`].
//! * Traditional baselines: [`btree`] (STX-style B+Tree and interpolating
//!   IBTree), [`art`], [`fast`], [`tries`] (FST + Wormhole), [`hash`]
//!   (RobinHood + cuckoo), and [`baselines`] (binary search + RBS).
//! * The updatable structures of the paper's future-work section: [`alex`]
//!   (gapped model arrays, ref. \[11\]), [`fiting`] (FITing-Tree with
//!   shrinking-cone segmentation and delta buffers, ref. \[14\]), the dynamic
//!   PGM ([`pgm::DynamicPgm`], ref. \[13\]), and an insertable B+Tree
//!   baseline ([`btree::DynamicBTree`]) — all behind
//!   [`core::DynamicOrderedIndex`].
//! * The dataset repository ([`datasets`]): synthetic generators
//!   reproducing the amzn/face/osm/wiki distributions (including a real
//!   Hilbert-curve projection for osm), workload generation, and the SOSD
//!   binary format.
//! * A hardware-counter simulator ([`perfsim`]) standing in for `perf`.
//! * The experiment harness ([`mod@bench`]) that regenerates every table
//!   and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use sosd::core::{Index, IndexBuilder, SearchStrategy};
//! use sosd::datasets::{make_workload, DatasetId};
//! use sosd::rmi::RmiBuilder;
//!
//! let workload = make_workload(DatasetId::Amzn, 50_000, 1_000, 42);
//! let rmi = RmiBuilder::default().build(&workload.data).unwrap();
//! for &key in &workload.lookups[..10] {
//!     let bound = rmi.search_bound(key);
//!     let pos = SearchStrategy::Binary.find(workload.data.keys(), key, bound);
//!     assert_eq!(workload.data.key(pos), key);
//! }
//! ```

pub use sosd_alex as alex;
pub use sosd_art as art;
pub use sosd_baselines as baselines;
pub use sosd_bench as bench;
pub use sosd_btree as btree;
pub use sosd_core as core;
pub use sosd_datasets as datasets;
pub use sosd_fast as fast;
pub use sosd_fiting as fiting;
pub use sosd_hash as hash;
pub use sosd_perfsim as perfsim;
pub use sosd_pgm as pgm;
pub use sosd_radix_spline as radix_spline;
pub use sosd_rmi as rmi;
pub use sosd_succinct as succinct;
pub use sosd_tries as tries;
